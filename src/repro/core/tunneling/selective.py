"""Selective redirection (Fig. 1(c), §4).

"PVNs can provide flexible tunneling options, e.g., to selectively
tunnel traffic needing TLS interception to trusted cloud-based VMs,
without tunneling all of a device's traffic."

A :class:`SelectiveRedirector` holds an ordered list of
(predicate, endpoint) rules.  Packets matching a rule are redirected to
that endpoint; everything else stays on the in-network fast path.  The
E2/ablation benches compare this against full tunneling: the mean
latency penalty scales with the *fraction* of traffic that actually
needs the trusted environment, not with all of it.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.errors import TunnelError
from repro.netsim.packet import Packet

Predicate = Callable[[Packet], bool]


@dataclasses.dataclass(frozen=True)
class RedirectRule:
    """One selective-redirection rule."""

    name: str
    predicate: Predicate
    endpoint: str


def needs_tls_interception(packet: Packet) -> bool:
    """The canonical Fig. 1(c) predicate: HTTPS flows whose policy
    requires payload inspection."""
    return (
        packet.dst_port == 443
        and bool(packet.metadata.get("needs_inspection"))
    )


def is_sensitive_destination(sensitive_cidrs: list[str]) -> Predicate:
    """Factory: redirect traffic to user-designated sensitive prefixes."""
    from repro.netproto.addresses import ip_in_subnet

    def predicate(packet: Packet) -> bool:
        return any(ip_in_subnet(packet.dst, cidr) for cidr in sensitive_cidrs)

    return predicate


class SelectiveRedirector:
    """Ordered-rule packet redirection with traffic accounting."""

    def __init__(self, rules: list[RedirectRule]) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise TunnelError("redirect rule names must be unique")
        self.rules = list(rules)
        self.redirected = 0
        self.kept_local = 0
        self.redirected_bytes = 0
        self.local_bytes = 0
        self.per_rule_counts: dict[str, int] = {r.name: 0 for r in rules}

    def route(self, packet: Packet) -> str | None:
        """The tunnel endpoint for ``packet``, or None for the local path."""
        for rule in self.rules:
            if rule.predicate(packet):
                self.redirected += 1
                self.redirected_bytes += packet.size
                self.per_rule_counts[rule.name] += 1
                packet.metadata["redirected_via"] = rule.name
                return rule.endpoint
        self.kept_local += 1
        self.local_bytes += packet.size
        return None

    @property
    def redirect_fraction(self) -> float:
        total = self.redirected + self.kept_local
        return self.redirected / total if total else 0.0

    def as_pipeline_step(self, name: str = "selective_redirect"):
        """This redirector as one compiled pipeline step.

        Packets matching a redirect rule yield a TUNNEL verdict toward
        the rule's endpoint (short-circuiting the pipeline exactly like
        a middlebox tunnel verdict); everything else passes and stays
        on the in-network fast path.  Traffic accounting
        (``redirected`` / ``kept_local`` / per-rule counts) is charged
        by :meth:`route` as usual.
        """
        from repro.nfv.middlebox import Verdict
        from repro.nfv.pipeline import PipelineStep

        def runner(packet: Packet, context) -> Verdict:
            endpoint = self.route(packet)
            if endpoint is None:
                return Verdict.passed()
            return Verdict.tunneled(
                endpoint, reason=packet.metadata.get("redirected_via", ""),
            )

        return PipelineStep(name=name, runner=runner)
