"""Measurement-driven tunnel-endpoint selection (§3.3 "Coping with
unavailability").

"To efficiently identify and select good PVN deployment locations
outside of the access network, we propose using active measurements to
inform the costs of alternative locations."  Candidates are probed for
RTT; the winner minimises a latency + price utility, skipping
unreachable endpoints.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Callable

from repro.errors import TunnelError

#: A probe returns the measured RTT in seconds, or raises on failure.
RttProbe = Callable[[], float]


@dataclasses.dataclass(frozen=True)
class EndpointCandidate:
    """One remote PVN location a device could tunnel to."""

    name: str
    probe: RttProbe
    price: float = 0.0           # per-session cost of this location
    supports_pvn: bool = True


@dataclasses.dataclass(frozen=True)
class EndpointScore:
    """Measurement summary for one candidate."""

    name: str
    median_rtt: float
    price: float
    reachable: bool
    cost: float


@dataclasses.dataclass(frozen=True)
class SelectionResult:
    """The chosen endpoint plus every candidate's score."""

    chosen: str
    scores: tuple[EndpointScore, ...]

    def score_for(self, name: str) -> EndpointScore:
        for score in self.scores:
            if score.name == name:
                return score
        raise TunnelError(f"no score for endpoint {name!r}")


def select_endpoint(
    candidates: list[EndpointCandidate],
    trials: int = 3,
    latency_weight: float = 1000.0,     # cost units per second of RTT
    price_weight: float = 1.0,
) -> SelectionResult:
    """Probe every candidate and pick the lowest-cost reachable one.

    ``cost = latency_weight * median_rtt + price_weight * price``.
    Raises :class:`TunnelError` if nothing is reachable.
    """
    if not candidates:
        raise TunnelError("no candidate endpoints to select among")
    if trials < 1:
        raise TunnelError("selection needs at least one probe trial")

    scores: list[EndpointScore] = []
    for candidate in candidates:
        if not candidate.supports_pvn:
            scores.append(EndpointScore(candidate.name, float("inf"),
                                        candidate.price, False, float("inf")))
            continue
        samples = []
        for _ in range(trials):
            try:
                samples.append(candidate.probe())
            except TunnelError:
                continue
        if not samples:
            scores.append(EndpointScore(candidate.name, float("inf"),
                                        candidate.price, False, float("inf")))
            continue
        median_rtt = statistics.median(samples)
        cost = latency_weight * median_rtt + price_weight * candidate.price
        scores.append(EndpointScore(candidate.name, median_rtt,
                                    candidate.price, True, cost))

    reachable = [s for s in scores if s.reachable]
    if not reachable:
        raise TunnelError("no PVN-supporting endpoint is reachable")
    best = min(reachable, key=lambda s: (s.cost, s.name))
    return SelectionResult(chosen=best.name, scores=tuple(scores))
