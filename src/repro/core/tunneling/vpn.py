"""Full-tunnel VPN baseline (§2, §3.2).

"There are tunneling overheads in terms of additional interdomain
traffic and its associated latency; e.g., 10s of ms for well connected
networks, but potentially 100s of ms for poorly connected networks.
Second, the tunneled traffic may be subject to policies (e.g.,
shaping) that do not apply to untunneled traffic.  Last, port blocking
and service unavailability can also impact the effectiveness of such
solutions."

:class:`FullTunnel` models all three costs so the E2 experiment can
compare in-network PVNs against tunneling to cloud/home deployments.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import TunnelError
from repro.netsim.tcp import PathCharacteristics
from repro.netsim.topology import PhysicalTopology

#: IPsec-ish per-packet encapsulation overhead.
ENCAP_OVERHEAD_BYTES = 73


@dataclasses.dataclass(frozen=True)
class TunnelCosts:
    """The §3.2 cost model for one tunnel."""

    added_rtt: float                 # detour latency, round trip
    encap_overhead_bytes: int = ENCAP_OVERHEAD_BYTES
    shaped_to_bps: float = 0.0       # 0 = no shaping of tunneled traffic
    port_blocked: bool = False       # VPN port blocked on this network


class FullTunnel:
    """A device-to-remote-network tunnel over a physical topology."""

    def __init__(
        self,
        topo: PhysicalTopology,
        device_node: str,
        endpoint_node: str,
        gateway_node: str = "gw",
        shaped_to_bps: float = 0.0,
        port_blocked: bool = False,
    ) -> None:
        for node in (device_node, endpoint_node, gateway_node):
            if node not in topo.graph:
                raise TunnelError(f"unknown topology node {node!r}")
        self.topo = topo
        self.device_node = device_node
        self.endpoint_node = endpoint_node
        self.gateway_node = gateway_node
        self.shaped_to_bps = shaped_to_bps
        self.port_blocked = port_blocked

    def costs(self) -> TunnelCosts:
        """Detour RTT vs the direct device->gateway path."""
        direct = self.topo.rtt(self.device_node, self.gateway_node)
        via = (
            self.topo.rtt(self.device_node, self.endpoint_node)
            + self.topo.rtt(self.endpoint_node, self.gateway_node)
        )
        return TunnelCosts(
            added_rtt=max(0.0, via - direct),
            shaped_to_bps=self.shaped_to_bps,
            port_blocked=self.port_blocked,
        )

    def effective_path(
        self, destination_node: str, loss_rate: float = 0.0
    ) -> PathCharacteristics:
        """The path the device actually experiences to ``destination``
        when all traffic hairpins through the tunnel endpoint."""
        if self.port_blocked:
            raise TunnelError(
                f"tunnel to {self.endpoint_node} blocked by the access "
                "network (VPN port filtered)"
            )
        rtt = (
            self.topo.rtt(self.device_node, self.endpoint_node)
            + self.topo.rtt(self.endpoint_node, destination_node)
        )
        leg1 = self.topo.shortest_path(self.device_node, self.endpoint_node)
        leg2 = self.topo.shortest_path(self.endpoint_node, destination_node)
        bandwidth = min(
            self.topo.path_bottleneck_bps(leg1),
            self.topo.path_bottleneck_bps(leg2),
        )
        if self.shaped_to_bps > 0:
            bandwidth = min(bandwidth, self.shaped_to_bps)
        path_loss = 1.0 - (
            (1.0 - self.topo.path_loss_rate(leg1))
            * (1.0 - self.topo.path_loss_rate(leg2))
            * (1.0 - loss_rate)
        )
        return PathCharacteristics(
            rtt=rtt, loss_rate=path_loss, bandwidth_bps=bandwidth
        )

    def goodput_fraction(self, mtu: int = 1500) -> float:
        """Payload fraction after encapsulation overhead."""
        return (mtu - ENCAP_OVERHEAD_BYTES) / mtu

    def as_pipeline(self, label: str = "vpn:encap"):
        """This tunnel as a terminal redirect Pipeline.

        Lets the encap path run through the same
        :class:`~repro.nfv.pipeline.Pipeline` abstraction as chains and
        the PVN datapath: every packet yields a TUNNEL verdict toward
        the tunnel's endpoint node, and the pipeline's throughput
        counters publish through a Tracer like any other layer.
        A blocked VPN port fails at build time, same as
        :meth:`effective_path`.
        """
        if self.port_blocked:
            raise TunnelError(
                f"tunnel to {self.endpoint_node} blocked by the access "
                "network (VPN port filtered)"
            )
        from repro.nfv.pipeline import Pipeline

        return Pipeline.tunnel(
            f"tunnel/{self.device_node}->{self.endpoint_node}",
            self.endpoint_node, label,
        )


def direct_path(
    topo: PhysicalTopology,
    device_node: str,
    destination_node: str,
    loss_rate: float = 0.0,
) -> PathCharacteristics:
    """The untunneled baseline path for the same topology."""
    route = topo.shortest_path(device_node, destination_node)
    return PathCharacteristics(
        rtt=topo.rtt(device_node, destination_node),
        loss_rate=1.0 - (1.0 - topo.path_loss_rate(route)) * (1.0 - loss_rate),
        bandwidth_bps=topo.path_bottleneck_bps(route),
    )
