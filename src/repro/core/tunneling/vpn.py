"""Full-tunnel VPN baseline (§2, §3.2).

"There are tunneling overheads in terms of additional interdomain
traffic and its associated latency; e.g., 10s of ms for well connected
networks, but potentially 100s of ms for poorly connected networks.
Second, the tunneled traffic may be subject to policies (e.g.,
shaping) that do not apply to untunneled traffic.  Last, port blocking
and service unavailability can also impact the effectiveness of such
solutions."

:class:`FullTunnel` models all three costs so the E2 experiment can
compare in-network PVNs against tunneling to cloud/home deployments.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import TunnelError
from repro.netsim.tcp import PathCharacteristics
from repro.netsim.topology import PhysicalTopology

#: IPsec-ish per-packet encapsulation overhead.
ENCAP_OVERHEAD_BYTES = 73


@dataclasses.dataclass(frozen=True)
class EncapSpec:
    """One calibrated encapsulation variant (cipher x compression).

    ``overhead_bytes`` is per-packet wire overhead from protocol
    arithmetic (outer IP/UDP plus the cipher's framing: IV/nonce,
    auth tag or HMAC, packet counter, CBC padding where applicable).
    CPU costs split the way VPN profiles do: ``cpu_us_per_packet``
    is the size-independent cost (tun read/write, context switch,
    framing) and ``cpu_us_per_kib`` the cipher+auth throughput term.
    ``compression_ratio`` is the expected payload multiplier on mixed
    traffic (1.0 = off; modern flows are mostly already-compressed,
    so even LZO only shaves ~10%).  Constants are documented estimates
    — protocol maths plus published OpenSSL ``speed`` / single-core
    OpenVPN throughput figures — see DESIGN.md §13 for provenance.
    """

    name: str
    overhead_bytes: int
    cpu_us_per_packet: float = 0.0
    cpu_us_per_kib: float = 0.0
    compression_ratio: float = 1.0

    def wire_bytes(self, payload_bytes: int) -> float:
        """On-the-wire size of one encapsulated payload."""
        return payload_bytes * self.compression_ratio + self.overhead_bytes

    def cpu_seconds(self, payload_bytes: int) -> float:
        """Single-core CPU time to encapsulate one payload."""
        return (self.cpu_us_per_packet
                + self.cpu_us_per_kib * (payload_bytes / 1024.0)) * 1e-6

    def crypto_bps(self, mtu: int = 1500) -> float:
        """Payload throughput one encap core sustains at ``mtu``-sized
        packets (the CPU-side bandwidth cap on tunneled traffic)."""
        seconds = self.cpu_seconds(mtu)
        if seconds <= 0.0:
            return float("inf")
        return mtu * 8.0 / seconds

    def goodput_fraction(self, mtu: int = 1500) -> float:
        """Payload fraction of wire bytes at ``mtu``-sized packets."""
        payload = mtu - self.overhead_bytes
        return payload / self.wire_bytes(payload)


#: Legacy-constant variant: ESP-style AES-128-CBC + HMAC-SHA1 framing
#: (the seed's 73-byte overhead), modest AES-NI-era CPU cost.  The
#: default so existing cost models are unchanged.
ESP_AES_CBC_SHA1 = EncapSpec(
    name="esp-aes-cbc-sha1", overhead_bytes=ENCAP_OVERHEAD_BYTES,
    cpu_us_per_packet=20.0, cpu_us_per_kib=1.3,
)

#: Calibrated cipher/compression menu (OpenVPN UDP data-channel
#: framing: outer IP 20 + UDP 8 + opcode/peer-id 4 = 32 bytes before
#: the cipher's contribution).  See DESIGN.md §13 for the arithmetic
#: and the published figures behind each CPU constant.
ENCAP_VARIANTS: dict[str, EncapSpec] = {
    spec.name: spec
    for spec in (
        ESP_AES_CBC_SHA1,
        # 32 + packet-id 4 + GCM tag 16 = 52
        EncapSpec("aes-128-gcm", 52, 15.0, 0.40),
        EncapSpec("aes-256-gcm", 52, 15.0, 0.55),
        # Same AEAD framing; no AES-NI advantage
        EncapSpec("chacha20-poly1305", 52, 15.0, 0.70),
        # 32 + IV 8 + HMAC-SHA1 20 + packet-id 4 + ~4 CBC padding = 68;
        # Blowfish is dog-slow per byte (no hardware support)
        EncapSpec("bf-cbc-sha1", 68, 20.0, 15.0),
        # AEAD + LZO: ~2.5 us/KiB compressor, ~10% shave on mixed
        # traffic, +1 framing byte
        EncapSpec("aes-128-gcm-lzo", 53, 17.0, 2.90,
                  compression_ratio=0.9),
        # Framing only (--cipher none): the floor any variant pays
        EncapSpec("null", 36, 12.0, 0.0),
    )
}

#: Backwards-compatible default for every existing call site.
DEFAULT_ENCAP = ESP_AES_CBC_SHA1


@dataclasses.dataclass(frozen=True)
class TunnelCosts:
    """The §3.2 cost model for one tunnel."""

    added_rtt: float                 # detour latency, round trip
    encap_overhead_bytes: int = ENCAP_OVERHEAD_BYTES
    shaped_to_bps: float = 0.0       # 0 = no shaping of tunneled traffic
    port_blocked: bool = False       # VPN port blocked on this network
    cpu_us_per_packet: float = 0.0   # single-core encap cost at MTU
    encap_name: str = DEFAULT_ENCAP.name


class FullTunnel:
    """A device-to-remote-network tunnel over a physical topology."""

    def __init__(
        self,
        topo: PhysicalTopology,
        device_node: str,
        endpoint_node: str,
        gateway_node: str = "gw",
        shaped_to_bps: float = 0.0,
        port_blocked: bool = False,
        encap: EncapSpec | str = DEFAULT_ENCAP,
    ) -> None:
        for node in (device_node, endpoint_node, gateway_node):
            if node not in topo.graph:
                raise TunnelError(f"unknown topology node {node!r}")
        self.topo = topo
        self.device_node = device_node
        self.endpoint_node = endpoint_node
        self.gateway_node = gateway_node
        self.shaped_to_bps = shaped_to_bps
        self.port_blocked = port_blocked
        if isinstance(encap, str):
            try:
                encap = ENCAP_VARIANTS[encap]
            except KeyError:
                raise TunnelError(
                    f"unknown encap variant {encap!r} "
                    f"(have {sorted(ENCAP_VARIANTS)})"
                ) from None
        self.encap = encap

    def costs(self, mtu: int = 1500) -> TunnelCosts:
        """Detour RTT vs the direct device->gateway path, plus the
        encap variant's per-packet size and CPU costs."""
        direct = self.topo.rtt(self.device_node, self.gateway_node)
        via = (
            self.topo.rtt(self.device_node, self.endpoint_node)
            + self.topo.rtt(self.endpoint_node, self.gateway_node)
        )
        return TunnelCosts(
            added_rtt=max(0.0, via - direct),
            encap_overhead_bytes=self.encap.overhead_bytes,
            shaped_to_bps=self.shaped_to_bps,
            port_blocked=self.port_blocked,
            cpu_us_per_packet=self.encap.cpu_seconds(mtu) * 1e6,
            encap_name=self.encap.name,
        )

    def effective_path(
        self, destination_node: str, loss_rate: float = 0.0
    ) -> PathCharacteristics:
        """The path the device actually experiences to ``destination``
        when all traffic hairpins through the tunnel endpoint."""
        if self.port_blocked:
            raise TunnelError(
                f"tunnel to {self.endpoint_node} blocked by the access "
                "network (VPN port filtered)"
            )
        rtt = (
            self.topo.rtt(self.device_node, self.endpoint_node)
            + self.topo.rtt(self.endpoint_node, destination_node)
        )
        leg1 = self.topo.shortest_path(self.device_node, self.endpoint_node)
        leg2 = self.topo.shortest_path(self.endpoint_node, destination_node)
        bandwidth = min(
            self.topo.path_bottleneck_bps(leg1),
            self.topo.path_bottleneck_bps(leg2),
        )
        if self.shaped_to_bps > 0:
            bandwidth = min(bandwidth, self.shaped_to_bps)
        # A single encap core also caps tunneled throughput: at MTU-
        # sized packets the cipher's per-packet + per-byte CPU cost
        # bounds packets/sec regardless of link capacity.
        bandwidth = min(bandwidth, self.encap.crypto_bps())
        path_loss = 1.0 - (
            (1.0 - self.topo.path_loss_rate(leg1))
            * (1.0 - self.topo.path_loss_rate(leg2))
            * (1.0 - loss_rate)
        )
        return PathCharacteristics(
            rtt=rtt, loss_rate=path_loss, bandwidth_bps=bandwidth
        )

    def goodput_fraction(self, mtu: int = 1500) -> float:
        """Payload fraction after encapsulation (and compression)."""
        return self.encap.goodput_fraction(mtu)

    def as_pipeline(self, label: str = "vpn:encap", mtu: int = 1500):
        """This tunnel as a terminal redirect Pipeline.

        Lets the encap path run through the same
        :class:`~repro.nfv.pipeline.Pipeline` abstraction as chains and
        the PVN datapath: every packet yields a TUNNEL verdict toward
        the tunnel's endpoint node, and the pipeline's throughput
        counters publish through a Tracer like any other layer.  The
        single step charges the encap variant's per-packet CPU cost as
        its delay.  A blocked VPN port fails at build time, same as
        :meth:`effective_path`.
        """
        if self.port_blocked:
            raise TunnelError(
                f"tunnel to {self.endpoint_node} blocked by the access "
                "network (VPN port filtered)"
            )
        from repro.nfv.pipeline import Pipeline

        return Pipeline.tunnel(
            f"tunnel/{self.device_node}->{self.endpoint_node}",
            self.endpoint_node, label,
            delay=self.encap.cpu_seconds(mtu),
        )


def direct_path(
    topo: PhysicalTopology,
    device_node: str,
    destination_node: str,
    loss_rate: float = 0.0,
) -> PathCharacteristics:
    """The untunneled baseline path for the same topology."""
    route = topo.shortest_path(device_node, destination_node)
    return PathCharacteristics(
        rtt=topo.rtt(device_node, destination_node),
        loss_rate=1.0 - (1.0 - topo.path_loss_rate(route)) * (1.0 - loss_rate),
        bandwidth_bps=topo.path_bottleneck_bps(route),
    )
