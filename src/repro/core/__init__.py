"""The paper's contribution: PVNC, discovery, deployment, auditing,
tunneling, the PVN Store, and device/provider/session orchestration."""

from repro.core.device import Device, PvnConnection
from repro.core.provider import AccessProvider, DishonestyProfile, HONEST
from repro.core.session import (
    DEFAULT_PVNC_TEXT,
    PvnSession,
    SessionOutcome,
    default_pvnc,
)

__all__ = [
    "AccessProvider",
    "DEFAULT_PVNC_TEXT",
    "Device",
    "DishonestyProfile",
    "HONEST",
    "PvnConnection",
    "PvnSession",
    "SessionOutcome",
    "default_pvnc",
]
