"""One-call PVN session orchestration.

:class:`PvnSession` wires a complete world — a PVN-supporting access
provider, a device with trust material, a web PKI, DNS zones, origin
content — and exposes the library's quickstart surface:

>>> from repro import PvnSession, default_pvnc
>>> session = PvnSession.build(seed=1)
>>> outcome = session.connect(default_pvnc())
>>> outcome.deployed
True
"""

from __future__ import annotations

import contextlib
import dataclasses

from repro.core.device import Device, PvnConnection
from repro.core.discovery.retry import RetryPolicy
from repro.core.provider import AccessProvider, DishonestyProfile, HONEST
from repro.core.pvnc.compiler import UserEnvironment
from repro.core.pvnc.dsl import parse_pvnc
from repro.core.pvnc.model import Pvnc
from repro.errors import NegotiationError
from repro.netproto.dns import Resolver, TrustAnchor, Zone, ZoneSigner
from repro.netproto.tls import make_web_pki
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator
from repro.obs import runtime as obs_runtime
from repro.obs import spans as obs_spans

DEFAULT_PVNC_TEXT = '''
pvnc "secure-roaming" for {user}
module tls_validator mode=block
module dns_validator
module pii_detector mode=scrub
module transcoder quality=medium
module tcp_proxy reuse=yes
class https: tls_validator -> forward
class dns: dns_validator -> forward
class web_text: pii_detector -> forward
class video_image: transcoder -> tcp_proxy -> forward
default: forward
require tls_validator pii_detector
prefer transcoder tcp_proxy
budget 10.0
max-latency 1 ms
'''


def default_pvnc(user: str = "alice") -> Pvnc:
    """The canonical Fig. 1(a)-shaped configuration."""
    return parse_pvnc(DEFAULT_PVNC_TEXT.format(user=user))


@dataclasses.dataclass
class SessionOutcome:
    """Everything `connect` produced."""

    deployed: bool
    connection: PvnConnection | None = None
    reason: str = ""

    @property
    def deployment_id(self) -> str:
        return self.connection.deployment_id if self.connection else ""

    @property
    def price_paid(self) -> float:
        return self.connection.price_paid if self.connection else 0.0


class PvnSession:
    """A ready-to-use PVN world."""

    def __init__(
        self,
        provider: AccessProvider,
        device: Device,
        sim: Simulator,
    ) -> None:
        self.provider = provider
        self.device = device
        self.sim = sim
        self.extra_providers: list[AccessProvider] = []
        self.supervisor = None      # RobustnessSupervisor, via enable_robustness
        self.injector = None        # FaultInjector, via inject_faults

    @classmethod
    def build(
        cls,
        seed: int = 0,
        user: str = "alice",
        dishonesty: DishonestyProfile = HONEST,
        supports_pvn: bool = True,
    ) -> "PvnSession":
        """Construct the canonical single-provider world."""
        sim = Simulator()
        provider = AccessProvider(
            "isp-a", sim=sim, dishonesty=dishonesty,
            supports_pvn=supports_pvn, seed=seed,
        )

        now = sim.now
        _, trust_store, servers = make_web_pki(
            now, ["bank.example.com", "news.example.com"]
        )
        signer = ZoneSigner("example.com", key=b"zone:example.com")
        zone = Zone("example.com", signer=signer)
        zone.add("bank.example.com", "A", "198.51.100.5")
        zone.add("news.example.com", "A", "198.51.100.6")
        anchor = TrustAnchor()
        anchor.add_zone("example.com", b"zone:example.com")
        open_resolvers = [Resolver(f"open{i}", [zone]) for i in range(3)]

        env = UserEnvironment(
            trust_store=trust_store,
            trust_anchor=anchor,
            open_resolvers=open_resolvers,
        )
        device = Device(user=user, mac="aa:bb:cc:00:00:01", env=env)
        provider.serve_content(
            "http://news.example.com/front", b"<html>front page</html>"
        )
        session = cls(provider=provider, device=device, sim=sim)
        session.tls_servers = servers
        return session

    def add_provider(self, provider: AccessProvider) -> None:
        """Add a second provider to the discovery zone."""
        self.extra_providers.append(provider)

    # -- lifecycle ---------------------------------------------------------

    def connect(self, pvnc: Pvnc,
                strategy: str = "best_of_zone",
                retry_policy: RetryPolicy | None = None) -> SessionOutcome:
        """Attach, discover, negotiate, deploy, verify.

        Passing a ``retry_policy`` makes discovery retry unanswered
        floods with capped exponential backoff before giving up.

        With observability enabled the whole request runs inside a
        ``session.connect`` root span whose children cover DHCP attach,
        negotiation, deployment, attestation, and the address refresh —
        the paper's one-device-request trace tree.
        """
        providers = [self.provider, *self.extra_providers]
        obs = obs_runtime.current()
        clock = lambda: self.sim.now  # noqa: E731
        scope = (obs.span("session.connect", clock, user=self.device.user)
                 if obs is not None else contextlib.nullcontext())
        with scope as root:
            with (obs.span("dhcp.attach", clock)
                  if obs is not None else contextlib.nullcontext()) as att:
                supported = self.device.attach(self.provider)
                if att is not None:
                    att.set(supports_pvn=supported)
            if not supported and not self.extra_providers:
                if root is not None:
                    root.set(deployed=False, reason="no_pvn_support")
                return SessionOutcome(
                    deployed=False,
                    reason="access network does not support PVNs; "
                           "use tunneling fallback (repro.core.tunneling)",
                )
            try:
                connection = self.device.establish_pvn(
                    providers, pvnc, strategy=strategy,
                    retry_policy=retry_policy,
                )
            except NegotiationError as exc:
                if root is not None:
                    root.set(deployed=False, reason=str(exc))
                return SessionOutcome(deployed=False, reason=str(exc))
            if root is not None:
                root.set(deployed=True,
                         deployment_id=connection.deployment_id)
            return SessionOutcome(deployed=True, connection=connection,
                                  reason="deployed")

    # -- robustness --------------------------------------------------------

    def enable_robustness(self, policy=None):
        """Start the detect->repair->degrade supervisor on this
        session's simulator clock, wired to the device's evidence
        ledger.  Idempotent; returns the supervisor."""
        from repro.core.deployment.recovery import RobustnessSupervisor

        if self.supervisor is None:
            self.supervisor = RobustnessSupervisor(
                self.provider.manager, self.sim, policy=policy,
                ledger=self.device.ledger,
            )
        self.supervisor.start()
        return self.supervisor

    def inject_faults(self, plan):
        """Schedule a :class:`~repro.faults.FaultPlan` (or DSL text)
        against this session's provider; returns the injector."""
        from repro.faults import FaultInjector

        if self.injector is None:
            self.injector = FaultInjector(
                self.sim, self.provider, ledger=self.device.ledger,
            )
        self.injector.schedule_plan(plan)
        return self.injector

    def migrate(self, new_device_node: str, ap: str = "ap1",
                leases=None, **wireless):
        """Roam the device to another AP with a stateful handoff.

        Wires the new attachment point into the topology, then runs a
        full make-before-break migration transaction
        (:mod:`repro.core.deployment.migration`): target containers
        instantiated at the new AP, middlebox state checkpointed and
        restored, epoch-fenced atomic cutover.  On commit the device's
        connection follows the surviving deployment id; on rollback it
        keeps the intact source.  Returns the
        :class:`~repro.core.deployment.migration.MigrationResult`.
        """
        from repro.core.deployment.lifecycle import migrate_device

        if self.device.connection is None:
            raise NegotiationError("connect() first")
        if new_device_node not in self.provider.topo.graph:
            self.provider.attach_device(new_device_node, ap=ap, **wireless)
        obs = obs_runtime.current()
        clock = lambda: self.sim.now  # noqa: E731
        scope = (obs.span("session.migrate", clock,
                          source=self.device.connection.deployment_id,
                          target_node=new_device_node)
                 if obs is not None else contextlib.nullcontext())
        with scope as span:
            result = migrate_device(
                self.provider.manager,
                self.device.connection.deployment_id,
                new_device_node,
                now=self.sim.now,
                leases=leases,
                ledger=self.device.ledger,
            )
            if span is not None:
                span.set(committed=result.committed,
                         deployment_id=result.deployment_id)
        if result.committed:
            self.device.connection.deployment_id = result.deployment_id
            self.device.node_name = new_device_node
        return result

    def send(self, packet: Packet, traced: bool = False):
        """Run one packet through the device's live PVN data path.

        With ``traced=True`` (and observability enabled) the packet
        carries a span context — parented to the innermost active span
        if any — so the datapath synthesizes per-hop middlebox spans
        for it.  Untraced packets cost nothing extra.
        """
        if self.device.connection is None:
            raise NegotiationError("connect() first")
        deployment = self.device.connection.deployment
        if traced:
            obs = obs_runtime.current()
            if obs is not None and obs.trace_spans:
                clock = lambda: self.sim.now  # noqa: E731
                with obs.span("session.send", clock,
                              packet_id=packet.packet_id) as span:
                    obs_spans.inject(packet.metadata, span)
                    outcome = deployment.datapath.process(
                        packet, now=self.sim.now)
                    span.set(action=outcome.action)
                return outcome
        return deployment.datapath.process(packet, now=self.sim.now)

    def audit(self, trials: int = 3) -> list[str]:
        """Run the device's audit battery; returns violated test names."""
        return self.device.audit(trials=trials)

    def fallback_tunnel(self, endpoint: str = "cloud"):
        """The §3.3 unavailability fallback: a full tunnel from this
        device through the access network to a remote PVN location.

        Returns a :class:`~repro.core.tunneling.vpn.FullTunnel` over
        the provider's topology; callers use its ``effective_path`` to
        run traffic models against the tunneled deployment.
        """
        from repro.core.tunneling import FullTunnel

        if self.device.node_name not in self.provider.topo.graph:
            self.provider.attach_device(self.device.node_name)
        return FullTunnel(
            self.provider.topo, self.device.node_name, endpoint
        )

    def teardown(self) -> None:
        if self.device.connection is not None:
            self.provider.manager.teardown(
                self.device.connection.deployment_id
            )
            self.device.connection = None
