"""Declarative self-healing: desired state, diffed continuously.

The :class:`~repro.core.deployment.recovery.RobustnessSupervisor`
(PR 1) is *imperative*: it watches live deployments and repairs the
ones that break.  That leaves two failure classes uncovered: a
deployment that disappears entirely (its host crashed and took the
containers, their reservations, and the record's usefulness with it),
and a control plane that cannot tell a crashed host from a partitioned
one.  This module adds the declarative half:

* :class:`DesiredState` — the source of truth: one
  :class:`DeploymentSpec` per user saying what *should* be running,
  independent of what currently is;
* :class:`Reconciler` — a converge loop on the simulator clock that
  every tick (a) classifies hosts through the phi-accrual detector
  (:mod:`repro.health`), (b) evacuates deployments off confirmed-dead
  hosts through journaled
  :meth:`~repro.core.deployment.migration.MigrationCoordinator
  .evacuate` transactions, restoring middlebox state from the
  replicator's snapshots, (c) re-diffs desired against observed state
  and redeploys anything missing (or degrades to the VPN fallback when
  the substrate can't take it), and (d) prunes actual state no spec
  wants anymore;
* :class:`StateReplicator` — periodic checkpoints of every dedicated
  container, so host death loses at most one replication interval of
  middlebox state instead of all of it.

The partition/crash distinction is load-bearing: a host the detector
declares DEAD while a declared partition window is open is *deferred*
(the beats will return when the partition heals; evacuating would be a
false positive and double-run the user's chain), up to a grace budget
after which the reconciler evacuates anyway — a partition long enough
is operationally a crash.
"""

from __future__ import annotations

import dataclasses

from repro.core.deployment.lifecycle import degrade_to_tunnel
from repro.core.deployment.manager import (
    Deployment,
    DeploymentManager,
    DeploymentState,
)
from repro.core.deployment.migration import ensure_coordinator
from repro.core.discovery.messages import DeploymentAck, DeploymentRequest
from repro.core.pvnc.compiler import UserEnvironment
from repro.core.tunneling.vpn import FullTunnel
from repro.errors import ConfigurationError, ReproError
from repro.health import HealthService, HostState, PRIORITY_CRITICAL
from repro.netsim.simulator import Simulator
from repro.nfv.container import ContainerCheckpoint, ContainerState
from repro.obs import runtime as obs_runtime

if False:  # pragma: no cover - typing only
    from repro.core.auditor.violations import EvidenceLedger


# -- desired state ----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DeploymentSpec:
    """What one user's PVN *should* look like, attachment included."""

    user: str
    request: DeploymentRequest
    device_node: str
    env: UserEnvironment
    priority: int = PRIORITY_CRITICAL   # reconciler traffic is critical


class DesiredState:
    """The declarative store the reconciler converges the world to."""

    def __init__(self) -> None:
        self.specs: dict[str, DeploymentSpec] = {}
        self.generation = 0

    def declare(self, spec: DeploymentSpec) -> None:
        self.specs[spec.user] = spec
        self.generation += 1

    def forget(self, user: str) -> bool:
        if self.specs.pop(user, None) is not None:
            self.generation += 1
            return True
        return False

    def __len__(self) -> int:
        return len(self.specs)

    @classmethod
    def capture(cls, manager: DeploymentManager) -> "DesiredState":
        """Adopt every currently-ACTIVE deployment as desired state —
        the migration path from imperative to declarative operation."""
        desired = cls()
        for deployment_id in sorted(manager.deployments):
            deployment = manager.deployments[deployment_id]
            if deployment.state is not DeploymentState.ACTIVE:
                continue
            if deployment.env is None:
                continue
            pvnc = deployment.compiled.pvnc
            desired.declare(DeploymentSpec(
                user=deployment.user,
                request=DeploymentRequest(
                    device_id=f"{deployment.user}:reconciler",
                    offer_id=0,
                    pvnc=pvnc,
                    accepted_services=pvnc.used_services(),
                    payment=deployment.price_paid,
                ),
                device_node=deployment.embedding.device_node,
                env=deployment.env,
            ))
        return desired


# -- policy and events ------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ReconcilePolicy:
    """Cadence, budgets, and fallbacks for the converge loop."""

    interval: float = 0.25
    #: How long a DEAD-but-partitioned host is granted before the
    #: reconciler stops believing the partition will heal.
    partition_grace: float = 5.0
    #: Evacuations driven per tick (the rest stay queued) — bounds the
    #: control-plane burst a multi-host failure can cause.
    max_evacuations_per_tick: int = 8
    #: Evacuation attempts per deployment before degrading to tunnel.
    max_evacuation_attempts: int = 3
    fallback_endpoint: str = "cloud"
    #: Replication cadence for :class:`StateReplicator` (0 disables).
    replica_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError("reconcile interval must be positive")
        if self.partition_grace < 0:
            raise ConfigurationError("partition_grace must be >= 0")
        if self.max_evacuations_per_tick < 1:
            raise ConfigurationError("max_evacuations_per_tick must be >= 1")
        if self.max_evacuation_attempts < 1:
            raise ConfigurationError("max_evacuation_attempts must be >= 1")


@dataclasses.dataclass(frozen=True)
class ReconcileEvent:
    """One reconciler action (the audit-facing trace)."""

    time: float
    kind: str       # host_dead | deferred | evacuated | degraded | ...
    subject: str    # host or deployment id
    detail: str


@dataclasses.dataclass(frozen=True)
class RepairRecord:
    """One completed recovery, for repair-time distributions."""

    deployment_id: str
    host: str
    detected_at: float
    resolved_at: float
    action: str     # evacuated | degraded | redeployed

    @property
    def repair_time(self) -> float:
        return self.resolved_at - self.detected_at


# -- state replication ------------------------------------------------------


class StateReplicator:
    """Rolling checkpoints of dedicated containers.

    Host death destroys the live state of every container on the host;
    the replicator bounds the loss to one replication interval by
    keeping the last consistent
    :class:`~repro.nfv.container.ContainerCheckpoint` per (deployment,
    service) — exactly what
    :meth:`~repro.core.deployment.migration.MigrationCoordinator
    .evacuate` restores from when the live container is gone.
    """

    def __init__(self) -> None:
        self._replicas: dict[str, dict[str, ContainerCheckpoint]] = {}
        self.snapshots = 0

    def snapshot(self, manager: DeploymentManager, now: float) -> int:
        """Checkpoint every live dedicated container of every ACTIVE
        deployment; prunes replicas of deployments no longer active."""
        captured = 0
        active: set[str] = set()
        for deployment_id in sorted(manager.deployments):
            deployment = manager.deployments[deployment_id]
            if deployment.state is not DeploymentState.ACTIVE:
                continue
            active.add(deployment_id)
            store = self._replicas.setdefault(deployment_id, {})
            for service, container in sorted(deployment.containers.items()):
                if container.state not in (ContainerState.RUNNING,
                                           ContainerState.INSTANTIATING):
                    continue
                store[service] = ContainerCheckpoint.capture(
                    container, now, service
                )
                captured += 1
        for deployment_id in list(self._replicas):
            if deployment_id not in active:
                del self._replicas[deployment_id]
        self.snapshots += 1
        return captured

    def replicas_for(self, deployment_id: str
                     ) -> dict[str, ContainerCheckpoint]:
        return dict(self._replicas.get(deployment_id, {}))

    def drop(self, deployment_id: str) -> None:
        self._replicas.pop(deployment_id, None)

    @property
    def total_bytes(self) -> int:
        return sum(
            checkpoint.size_bytes
            for store in self._replicas.values()
            for checkpoint in store.values()
        )


# -- the reconciler ---------------------------------------------------------


class Reconciler:
    """The converge loop: observe, diff, repair, repeat."""

    def __init__(
        self,
        manager: DeploymentManager,
        sim: Simulator,
        health: HealthService,
        desired: DesiredState | None = None,
        policy: ReconcilePolicy | None = None,
        ledger: "EvidenceLedger | None" = None,
    ) -> None:
        self.manager = manager
        self.sim = sim
        self.health = health
        self.desired = desired or DesiredState()
        self.policy = policy or ReconcilePolicy()
        self.ledger = ledger
        self.coordinator = ensure_coordinator(manager, ledger=ledger)
        self.replicator = StateReplicator()
        self.events: list[ReconcileEvent] = []
        self.repairs: list[RepairRecord] = []
        self.tunnels: dict[str, FullTunnel] = {}
        self.ticks = 0
        self._running = False
        self._last_replica = float("-inf")
        self._evacuated_hosts: set[str] = set()     # already handled
        self._deferred: dict[str, float] = {}       # host -> first DEAD time
        self._heal_wait: set[str] = set()           # post-heal beat pending
        self._queue: list[tuple[str, str]] = []     # (deployment, host)
        self._attempts: dict[str, int] = {}
        self._outage_started: dict[str, float] = {}

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Begin converging (idempotent)."""
        if self._running:
            return
        self._running = True
        self.health.start()
        self.sim.schedule(self.policy.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    # -- the loop ---------------------------------------------------------

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        now = self.sim.now
        self._replay_migrations(now)
        self._classify_hosts(now)
        self._drain_evacuations(now)
        self._replicate(now)
        self._converge_desired(now)
        self.sim.schedule(self.policy.interval, self._tick)

    def _replay_migrations(self, now: float) -> None:
        for txn_id, action, detail in self.coordinator.recover(now):
            self._emit(now, f"migration_{action}", txn_id, detail)

    # -- host classification ----------------------------------------------

    def _classify_hosts(self, now: float) -> None:
        for name in sorted(self.manager.hosts):
            host = self.manager.hosts[name]
            state = self.health.state_of(name, now)
            if state is HostState.DEAD and name not in self._evacuated_hosts:
                if self.health.partitioned(name, now):
                    self._heal_wait.discard(name)
                    first = self._deferred.setdefault(name, now)
                    if now - first < self.policy.partition_grace:
                        if first == now:
                            self._emit(
                                now, "deferred", name,
                                "DEAD but partitioned; deferring "
                                f"evacuation up to "
                                f"{self.policy.partition_grace:g}s",
                            )
                        continue
                    self._emit(now, "partition_expired", name,
                               "partition outlived the grace budget; "
                               "treating the host as dead")
                elif name in self._deferred and name not in self._heal_wait:
                    # The window just healed and the first post-heal
                    # beat may still be in flight (heal time can align
                    # exactly with a tick).  One tick of patience
                    # before declaring death avoids evacuating a host
                    # that is about to report in.
                    self._heal_wait.add(name)
                    self._emit(now, "heal_wait", name,
                               "partition healed; awaiting first beat")
                    continue
                self._deferred.pop(name, None)
                self._heal_wait.discard(name)
                self._evacuated_hosts.add(name)
                self._emit(now, "host_dead", name,
                           f"phi={self.health.phi(name, now):.2f} "
                           f"alive={host.alive}")
                self._queue_evacuations(name, now)
            elif state is not HostState.DEAD:
                self._deferred.pop(name, None)
                self._heal_wait.discard(name)
                if name in self._evacuated_hosts and host.alive:
                    # Back from the dead (HOST_UP + resumed beats):
                    # eligible for placement and future failures again.
                    self._evacuated_hosts.discard(name)
                    self._emit(now, "host_recovered", name, "beats resumed")

    def _queue_evacuations(self, host_name: str, now: float) -> None:
        affected: set[str] = set()
        if self.manager.optimizer is not None:
            affected.update(
                self.manager.optimizer.pool.fail_node(host_name)
            )
        for deployment_id in sorted(self.manager.deployments):
            deployment = self.manager.deployments[deployment_id]
            if deployment.state is not DeploymentState.ACTIVE:
                continue
            if any(d.node == host_name
                   for d in deployment.embedding.plan.decisions):
                affected.add(deployment_id)
        queued = [
            deployment_id for deployment_id in sorted(affected)
            if (deployment_id in self.manager.deployments
                and self.manager.deployments[deployment_id].state
                is DeploymentState.ACTIVE)
        ]
        for deployment_id in queued:
            self._queue.append((deployment_id, host_name))
            self._outage_started.setdefault(deployment_id, now)
        self._emit(now, "evacuation_queued", host_name,
                   f"{len(queued)} deployment(s) to move")

    # -- evacuation -------------------------------------------------------

    def _drain_evacuations(self, now: float) -> None:
        budget = self.policy.max_evacuations_per_tick
        retry: list[tuple[str, str]] = []
        obs = obs_runtime.current()
        while self._queue and budget > 0:
            deployment_id, host_name = self._queue.pop(0)
            deployment = self.manager.deployments.get(deployment_id)
            if (deployment is None
                    or deployment.state is not DeploymentState.ACTIVE):
                self._outage_started.pop(deployment_id, None)
                continue
            budget -= 1
            replicas = self.replicator.replicas_for(deployment_id)
            try:
                result = self.coordinator.evacuate(
                    deployment_id, now, replicas=replicas,
                )
            except ReproError as exc:
                result = None
                reason = str(exc)
            else:
                reason = result.reason
            if result is not None and result.committed:
                detected = self._outage_started.pop(deployment_id, now)
                self.repairs.append(RepairRecord(
                    deployment_id=deployment_id, host=host_name,
                    detected_at=detected, resolved_at=self.sim.now,
                    action="evacuated",
                ))
                self._attempts.pop(deployment_id, None)
                self.replicator.drop(deployment_id)
                self._emit(
                    now, "evacuated", deployment_id,
                    f"-> {result.deployment_id} off {host_name}; "
                    f"restored {len(result.restored_services)} service(s)"
                    + (f", {len(result.replica_services)} from replica"
                       if result.replica_services else ""),
                )
                if obs is not None:
                    obs.metrics.counter(
                        "repro_evacuations",
                        "Crash evacuations by outcome",
                        ("provider", "outcome"),
                    ).labels(provider=self.manager.provider,
                             outcome="committed").inc()
                continue
            attempts = self._attempts.get(deployment_id, 0) + 1
            self._attempts[deployment_id] = attempts
            self._emit(
                now, "evacuation_failed", deployment_id,
                f"attempt {attempts}/"
                f"{self.policy.max_evacuation_attempts}: {reason}",
            )
            if attempts >= self.policy.max_evacuation_attempts:
                self._degrade(deployment_id, host_name, now)
            else:
                retry.append((deployment_id, host_name))
        self._queue.extend(retry)

    def _degrade(self, deployment_id: str, host_name: str,
                 now: float) -> None:
        """Evacuation budget exhausted: protect via the VPN fallback —
        stale-state service beats policy bypass, and policy bypass
        beats nothing, but a tunnel we can always have."""
        try:
            tunnel = degrade_to_tunnel(
                self.manager, deployment_id,
                self.policy.fallback_endpoint, now,
            )
        except ReproError as exc:
            self._emit(now, "degrade_failed", deployment_id, str(exc))
            return
        self.tunnels[deployment_id] = tunnel
        detected = self._outage_started.pop(deployment_id, now)
        self.repairs.append(RepairRecord(
            deployment_id=deployment_id, host=host_name,
            detected_at=detected, resolved_at=self.sim.now,
            action="degraded",
        ))
        self._attempts.pop(deployment_id, None)
        self._emit(now, "degraded", deployment_id,
                   f"VPN fallback via {self.policy.fallback_endpoint}")
        obs = obs_runtime.current()
        if obs is not None:
            obs.metrics.counter(
                "repro_evacuations",
                "Crash evacuations by outcome",
                ("provider", "outcome"),
            ).labels(provider=self.manager.provider,
                     outcome="degraded").inc()

    # -- replication ------------------------------------------------------

    def _replicate(self, now: float) -> None:
        if self.policy.replica_interval <= 0:
            return
        if now - self._last_replica < self.policy.replica_interval:
            return
        self._last_replica = now
        self.replicator.snapshot(self.manager, now)
        obs = obs_runtime.current()
        if obs is not None:
            obs.metrics.gauge(
                "repro_replica_bytes",
                "Bytes held by the state replicator",
                ("provider",),
            ).labels(provider=self.manager.provider).set(
                float(self.replicator.total_bytes)
            )

    # -- the declarative diff ---------------------------------------------

    def _converge_desired(self, now: float) -> None:
        if not self.desired.specs:
            return   # nothing declared; nothing to converge or prune
        observed: dict[str, Deployment] = {}
        for deployment_id in sorted(self.manager.deployments):
            deployment = self.manager.deployments[deployment_id]
            if deployment.state is DeploymentState.ACTIVE:
                observed.setdefault(deployment.user, deployment)
        for user in sorted(self.desired.specs):
            if user in observed:
                continue
            if any(did for did, host in self._queue
                   if self.manager.deployments.get(did) is not None
                   and self.manager.deployments[did].user == user):
                continue   # an evacuation is already in flight for them
            self._redeploy(self.desired.specs[user], now)
        for user in sorted(observed):
            if user not in self.desired.specs:
                deployment = observed[user]
                self.manager.teardown(deployment.deployment_id)
                self.replicator.drop(deployment.deployment_id)
                self._emit(now, "pruned", deployment.deployment_id,
                           f"no desired spec for {user}")

    def _redeploy(self, spec: DeploymentSpec, now: float) -> None:
        """Bring a missing user back: fresh deploy, then retire any
        degraded remnant *surgically* (its rules and containers are
        already gone — a full ``teardown`` would ``terminate_owner``
        the replacement's fresh containers too)."""
        degraded = [
            d for d in self.manager.deployments_for(spec.user)
            if d.state is DeploymentState.DEGRADED
        ]
        ack = self.manager.deploy(
            spec.request, spec.env, spec.device_node, now,
        )
        if not isinstance(ack, DeploymentAck):
            self._emit(now, "redeploy_nacked", spec.user,
                       getattr(ack, "reason", "no ack"))
            return
        for remnant in degraded:
            if self.manager.optimizer is not None:
                self.manager.optimizer.release(
                    remnant.deployment_id, now=now
                )
            remnant.state = DeploymentState.TORN_DOWN
            self.tunnels.pop(remnant.deployment_id, None)
        self.repairs.append(RepairRecord(
            deployment_id=ack.deployment_id, host="",
            detected_at=now, resolved_at=self.sim.now,
            action="redeployed",
        ))
        self._emit(now, "redeployed", spec.user,
                   f"-> {ack.deployment_id}"
                   + (f" (retired {len(degraded)} degraded remnant(s))"
                      if degraded else ""))

    # -- accounting -------------------------------------------------------

    def _emit(self, time: float, kind: str, subject: str,
              detail: str) -> None:
        self.events.append(ReconcileEvent(
            time=time, kind=kind, subject=subject, detail=detail,
        ))
        if self.ledger is not None:
            self.ledger.record_fault(
                time, self.manager.provider, subject,
                kind=f"reconcile_{kind}", detail=detail,
            )

    def events_of(self, kind: str) -> list[ReconcileEvent]:
        return [e for e in self.events if e.kind == kind]

    def repair_times(self, action: str | None = None) -> list[float]:
        return [
            r.repair_time for r in self.repairs
            if action is None or r.action == action
        ]

    def converged(self) -> bool:
        """Every desired user has an ACTIVE deployment and no
        evacuations are pending."""
        if self._queue:
            return False
        active_users = {
            d.user for d in self.manager.deployments.values()
            if d.state is DeploymentState.ACTIVE
        }
        return all(user in active_users for user in self.desired.specs)
