"""Virtual-network embedding and admission control.

Maps a compiled PVNC onto the provider's physical topology: picks NFV
hosts (or reusable physical middleboxes) for every chain element via
:func:`repro.nfv.placement.place_chain`, checks aggregate admission,
and reports the latency stretch the embedding implies — the number the
auditor's path-inflation test later compares against.
"""

from __future__ import annotations

import dataclasses

from repro.core.pvnc.compiler import CompiledPvnc
from repro.errors import AdmissionError, EmbeddingError
from repro.netsim.topology import PhysicalTopology
from repro.nfv.hypervisor import NfvHost
from repro.nfv.placement import PlacementPlan, place_chain


@dataclasses.dataclass(frozen=True)
class EmbeddingResult:
    """A feasible embedding of one PVN."""

    plan: PlacementPlan
    device_node: str
    gateway_node: str
    expected_rtt: float          # device->gateway RTT along the PVN path

    @property
    def stretch(self) -> float:
        return self.plan.stretch


def embed_pvn(
    compiled: CompiledPvnc,
    topo: PhysicalTopology,
    hosts: dict[str, NfvHost],
    device_node: str,
    gateway_node: str = "gw",
    prefer_reuse: bool = True,
    max_stretch: float = 4.0,
) -> EmbeddingResult:
    """Embed ``compiled`` or raise.

    Raises :class:`EmbeddingError` when no placement exists and
    :class:`AdmissionError` when a placement exists but its stretch
    exceeds ``max_stretch`` (the provider refuses service that bad).
    """
    plan = place_chain(
        topo,
        list(compiled.placement_requests),
        src=device_node,
        dst=gateway_node,
        hosts=hosts,
        prefer_reuse=prefer_reuse,
    )
    if plan.stretch > max_stretch:
        raise AdmissionError(
            f"embedding stretch x{plan.stretch:.2f} exceeds the "
            f"provider's limit x{max_stretch}"
        )
    expected_rtt = 2.0 * topo.path_latency(list(plan.path))
    return EmbeddingResult(
        plan=plan,
        device_node=device_node,
        gateway_node=gateway_node,
        expected_rtt=expected_rtt,
    )


def admission_headroom(hosts: dict[str, NfvHost]) -> dict[str, float]:
    """Fractional memory headroom per host (capacity planning)."""
    return {
        name: 1.0 - host.memory_in_use / host.capacity.memory_bytes
        for name, host in sorted(hosts.items())
    }


def estimate_max_subscribers(
    hosts: dict[str, NfvHost],
    per_user_memory: int,
    per_user_cpu: float,
) -> int:
    """How many more identical PVNs the NFV tier could admit."""
    if per_user_memory <= 0 or per_user_cpu <= 0:
        raise EmbeddingError("per-user resources must be positive")
    total = 0
    for host in hosts.values():
        by_memory = (host.capacity.memory_bytes - host.memory_in_use) // (
            per_user_memory
        )
        by_cpu = int((host.capacity.cpu_cores - host.cpu_in_use) / per_user_cpu)
        total += max(0, min(by_memory, by_cpu))
    return total
