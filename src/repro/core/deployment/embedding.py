"""Virtual-network embedding and admission control.

Maps a compiled PVNC onto the provider's physical topology: picks NFV
hosts (or reusable physical middleboxes) for every chain element via
:func:`repro.nfv.placement.place_chain`, checks aggregate admission,
and reports the latency stretch the embedding implies — the number the
auditor's path-inflation test later compares against.

At scale the placement search dominates attach cost, so embeddings are
memoized through an :class:`EmbeddingIndex`: a cached plan is reused
only while a snapshot of everything :func:`place_chain` reads — the
topology version and the exact per-requirement feasible host sets —
still matches, which makes a hit *provably* identical to a from-scratch
recompute.  Host feasibility itself is O(1) per host thanks to the
incremental residual-capacity counters on
:class:`~repro.nfv.hypervisor.NfvHost`.
"""

from __future__ import annotations

import dataclasses

from repro.core.pvnc.compiler import CompiledPvnc
from repro.errors import AdmissionError, EmbeddingError
from repro.netsim.topology import PhysicalTopology
from repro.nfv.hypervisor import NfvHost
from repro.nfv.placement import (
    PlacementPlan,
    PlacementRequest,
    _host_capacity_ok,
    place_chain,
)


@dataclasses.dataclass(frozen=True)
class EmbeddingResult:
    """A feasible embedding of one PVN."""

    plan: PlacementPlan
    device_node: str
    gateway_node: str
    expected_rtt: float          # device->gateway RTT along the PVN path

    @property
    def stretch(self) -> float:
        return self.plan.stretch


class EmbeddingIndex:
    """Memoized placements, validated against a feasibility snapshot.

    :func:`place_chain` is a pure function of (a) the topology — node
    set, links, link up/down state — and (b) which hosts can fit each
    distinct resource requirement (its candidate list is the *sorted*
    NFV nodes filtered by feasibility, so the feasible **set** fully
    determines it).  A memo entry therefore stores the plan together
    with a snapshot of ``topo.version`` and one
    ``frozenset``-of-feasible-hosts per distinct ``(memory, cpu)``
    requirement; a lookup replays the snapshot check and falls back to
    a full recompute on any difference.  Equivalence with the uncached
    path is exact, not heuristic — the hypothesis property in
    ``tests/core/test_incremental_embedding.py`` drives arbitrary
    attach/detach/migrate/link-flap sequences against both.

    With an ``optimizer`` (:class:`~repro.core.deployment.orchestrator
    .PlacementOptimizer`) attached, placement additionally reads the
    shared-middlebox pool (which instances are joinable, at what load)
    and the powered-host set, so the snapshot must cover those too —
    ``optimizer.share_snapshot`` — or a memo hit could replay a stale
    "join" decision into an instance that has since filled to its
    isolation cap (regression: ``tests/core/test_orchestrator.py``).
    """

    def __init__(self, topo: PhysicalTopology,
                 hosts: dict[str, NfvHost],
                 optimizer=None) -> None:
        self.topo = topo
        self.hosts = hosts
        self.optimizer = optimizer
        self.hits = 0
        self.misses = 0
        self._memo: dict[tuple, tuple[tuple, PlacementPlan]] = {}

    def _feasible(self, memory_bytes: int, cpu_share: float) -> frozenset[str]:
        probe = PlacementRequest(
            service="_probe", memory_bytes=memory_bytes, cpu_share=cpu_share
        )
        return frozenset(
            node for node in self.topo.nodes_of_kind("nfv")
            if node in self.hosts
            and _host_capacity_ok(self.hosts, node, probe)
        )

    def _snapshot(self, requests: tuple[PlacementRequest, ...]) -> tuple:
        requirements = sorted(
            {(r.memory_bytes, r.cpu_share) for r in requests}
        )
        base = (
            self.topo.version,
            tuple(self._feasible(memory, cpu) for memory, cpu in requirements),
        )
        if self.optimizer is None:
            return base
        # The sharing state (joinable instances + loads + powered
        # hosts) is a placement input too — leaving it out of the
        # snapshot lets a memo hit violate a later request's isolation
        # cap (see the class docstring).
        return base + (self.optimizer.share_snapshot(requests),)

    def place(
        self,
        requests: tuple[PlacementRequest, ...],
        src: str,
        dst: str,
        prefer_reuse: bool,
    ) -> PlacementPlan:
        key = (src, dst, prefer_reuse, requests)
        snapshot = self._snapshot(requests)
        entry = self._memo.get(key)
        if entry is not None and entry[0] == snapshot:
            self.hits += 1
            return entry[1]
        self.misses += 1
        if self.optimizer is not None:
            plan = self.optimizer.place(
                requests, src=src, dst=dst, prefer_reuse=prefer_reuse,
            )
        else:
            plan = place_chain(
                self.topo, list(requests), src=src, dst=dst,
                hosts=self.hosts, prefer_reuse=prefer_reuse,
            )
        self._memo[key] = (snapshot, plan)
        return plan

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._memo),
        }


def embed_pvn(
    compiled: CompiledPvnc,
    topo: PhysicalTopology,
    hosts: dict[str, NfvHost],
    device_node: str,
    gateway_node: str = "gw",
    prefer_reuse: bool = True,
    max_stretch: float = 4.0,
    index: EmbeddingIndex | None = None,
    optimizer=None,
) -> EmbeddingResult:
    """Embed ``compiled`` or raise.

    With ``index``, the placement search is memoized (see
    :class:`EmbeddingIndex`); results are identical either way.  With
    ``optimizer`` (and no index — an index carries its own), the
    multi-objective heuristic replaces first-fit.

    Raises :class:`EmbeddingError` when no placement exists and
    :class:`AdmissionError` when a placement exists but its stretch
    exceeds ``max_stretch`` (the provider refuses service that bad).
    """
    if index is not None:
        plan = index.place(
            compiled.placement_requests,
            src=device_node,
            dst=gateway_node,
            prefer_reuse=prefer_reuse,
        )
    elif optimizer is not None:
        plan = optimizer.place(
            compiled.placement_requests,
            src=device_node,
            dst=gateway_node,
            prefer_reuse=prefer_reuse,
        )
    else:
        plan = place_chain(
            topo,
            list(compiled.placement_requests),
            src=device_node,
            dst=gateway_node,
            hosts=hosts,
            prefer_reuse=prefer_reuse,
        )
    if plan.stretch > max_stretch:
        raise AdmissionError(
            f"embedding stretch x{plan.stretch:.2f} exceeds the "
            f"provider's limit x{max_stretch}"
        )
    expected_rtt = 2.0 * topo.path_latency(list(plan.path))
    return EmbeddingResult(
        plan=plan,
        device_node=device_node,
        gateway_node=gateway_node,
        expected_rtt=expected_rtt,
    )


def admission_headroom(hosts: dict[str, NfvHost]) -> dict[str, float]:
    """Fractional memory headroom per host (capacity planning)."""
    return {
        name: 1.0 - host.memory_in_use / host.capacity.memory_bytes
        for name, host in sorted(hosts.items())
    }


def estimate_max_subscribers(
    hosts: dict[str, NfvHost],
    per_user_memory: int,
    per_user_cpu: float,
) -> int:
    """How many more identical PVNs the NFV tier could admit."""
    if per_user_memory <= 0 or per_user_cpu <= 0:
        raise EmbeddingError("per-user resources must be positive")
    total = 0
    for host in hosts.values():
        by_memory = (host.capacity.memory_bytes - host.memory_in_use) // (
            per_user_memory
        )
        by_cpu = int((host.capacity.cpu_cores - host.cpu_in_use) / per_user_cpu)
        total += max(0, min(by_memory, by_cpu))
    return total
