"""PVN deployment: embedding, installation, isolation, lifecycle."""

from repro.core.deployment.embedding import (
    EmbeddingResult,
    admission_headroom,
    embed_pvn,
    estimate_max_subscribers,
)
from repro.core.deployment.isolation import (
    IsolationReport,
    probe_cross_user,
    sweep_deployments,
)
from repro.core.deployment.lifecycle import (
    HealthReport,
    LeaseTable,
    MigrationResult,
    RepairResult,
    degrade_to_tunnel,
    health_check,
    migrate_device,
    refresh_address,
    repair_deployment,
    sweep_expired,
)
from repro.core.deployment.migration import (
    EpochRegistry,
    MigrationCoordinator,
    MigrationJournal,
    MigrationSpec,
    MigrationTransaction,
    ensure_coordinator,
)
from repro.core.deployment.manager import (
    ACTION_DROP,
    ACTION_FORWARD,
    ACTION_TUNNEL,
    DataPathOutcome,
    Deployment,
    DeploymentManager,
    DeploymentState,
    PvnDataPath,
)
from repro.core.deployment.recovery import (
    RecoveryEvent,
    RecoveryPolicy,
    RobustnessSupervisor,
)
from repro.core.deployment.telemetry import TelemetryFeed

__all__ = [
    "ACTION_DROP",
    "ACTION_FORWARD",
    "ACTION_TUNNEL",
    "DataPathOutcome",
    "Deployment",
    "DeploymentManager",
    "DeploymentState",
    "EmbeddingResult",
    "EpochRegistry",
    "HealthReport",
    "IsolationReport",
    "LeaseTable",
    "MigrationCoordinator",
    "MigrationJournal",
    "MigrationResult",
    "MigrationSpec",
    "MigrationTransaction",
    "PvnDataPath",
    "RecoveryEvent",
    "RecoveryPolicy",
    "RepairResult",
    "RobustnessSupervisor",
    "TelemetryFeed",
    "admission_headroom",
    "degrade_to_tunnel",
    "embed_pvn",
    "ensure_coordinator",
    "estimate_max_subscribers",
    "health_check",
    "migrate_device",
    "probe_cross_user",
    "refresh_address",
    "repair_deployment",
    "sweep_deployments",
    "sweep_expired",
]
