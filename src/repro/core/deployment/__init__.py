"""PVN deployment: embedding, installation, isolation, lifecycle."""

from repro.core.deployment.embedding import (
    EmbeddingResult,
    admission_headroom,
    embed_pvn,
    estimate_max_subscribers,
)
from repro.core.deployment.isolation import (
    IsolationReport,
    probe_cross_user,
    sweep_deployments,
)
from repro.core.deployment.lifecycle import (
    LeaseTable,
    MigrationResult,
    migrate_device,
    refresh_address,
    sweep_expired,
)
from repro.core.deployment.manager import (
    ACTION_DROP,
    ACTION_FORWARD,
    ACTION_TUNNEL,
    DataPathOutcome,
    Deployment,
    DeploymentManager,
    DeploymentState,
    PvnDataPath,
)

__all__ = [
    "ACTION_DROP",
    "ACTION_FORWARD",
    "ACTION_TUNNEL",
    "DataPathOutcome",
    "Deployment",
    "DeploymentManager",
    "DeploymentState",
    "EmbeddingResult",
    "IsolationReport",
    "LeaseTable",
    "MigrationResult",
    "PvnDataPath",
    "admission_headroom",
    "embed_pvn",
    "estimate_max_subscribers",
    "migrate_device",
    "probe_cross_user",
    "refresh_address",
    "sweep_deployments",
    "sweep_expired",
]
