"""Deployment lifecycle operations beyond install/teardown.

* **DHCP refresh** — the §3.1 post-ACK address move into the PVN's
  block.
* **Migration** — when a device roams to another AP inside the same
  provider, run a stateful make-before-break handoff
  (:mod:`repro.core.deployment.migration`): instantiate the chain at
  the new attachment point, checkpoint and ship middlebox state,
  atomically cut over — or roll back completely.
* **Expiry sweeps** — deployments are leased; unfunded leases are torn
  down, freeing NFV capacity.
* **Health & repair** — crashed middlebox containers are restarted in
  place, or re-embedded onto live hosts when their original host died.
* **Degradation** — a deployment that cannot be repaired within budget
  falls back to :mod:`repro.core.tunneling` VPN mode (the paper's
  incremental-deployment story run in reverse: when the in-network PVN
  breaks, the tunnel keeps the user's policies alive end-to-end).
"""

from __future__ import annotations

import dataclasses

from repro.core.deployment.embedding import embed_pvn
from repro.core.deployment.manager import (
    Deployment,
    DeploymentManager,
    DeploymentState,
)
from repro.core.deployment.migration import (
    MigrationResult,
    MigrationSpec,
    ensure_coordinator,
)
from repro.core.tunneling.vpn import FullTunnel
from repro.errors import DeploymentError, ReproError
from repro.netproto.dhcp import DhcpServer, Lease
from repro.nfv.container import Container, ContainerState


def refresh_address(
    manager: DeploymentManager,
    dhcp: DhcpServer,
    deployment_id: str,
    client_mac: str,
    now: float,
) -> Lease:
    """Move the device's lease into its deployment's subnet."""
    deployment = manager.deployment(deployment_id)
    if deployment.state is not DeploymentState.ACTIVE:
        raise DeploymentError(
            f"cannot refresh into inactive deployment {deployment_id}"
        )
    return dhcp.refresh_into_pvn(client_mac, deployment_id, now)


def migrate_device(
    manager: DeploymentManager,
    deployment_id: str,
    new_device_node: str,
    now: float = 0.0,
    leases: "LeaseTable | None" = None,
    ledger=None,
    spec: MigrationSpec | None = None,
) -> MigrationResult:
    """Stateful make-before-break migration after the device moved APs.

    Runs a full two-phase transaction through the manager's
    :class:`~repro.core.deployment.migration.MigrationCoordinator`:
    target containers are instantiated at the new attachment point
    (charging full instantiation latency for every moved middlebox),
    middlebox state is checkpointed and shipped, and the cutover
    commits atomically — SDN rules, the DHCP subnet binding, and the
    funding lease all follow the surviving deployment id.  Any failure
    rolls back to the untouched source deployment.
    """
    coordinator = ensure_coordinator(manager, spec=spec, ledger=ledger,
                                     leases=leases)
    return coordinator.migrate(deployment_id, new_device_node, now)


@dataclasses.dataclass
class LeaseTable:
    """Funding leases: deployment id -> paid-until time."""

    leases: dict[str, float] = dataclasses.field(default_factory=dict)

    def fund(self, deployment_id: str, until: float) -> None:
        self.leases[deployment_id] = max(
            self.leases.get(deployment_id, 0.0), until
        )

    def transfer(self, old_id: str, new_id: str) -> None:
        """Move a funding entry to the deployment that superseded it.

        Migration commits call this so the paid-until time follows the
        surviving deployment instead of stranding on the fenced source
        (which the next expiry sweep would otherwise tear down while
        the live target ran unfunded).
        """
        if old_id in self.leases:
            until = self.leases.pop(old_id)
            self.leases[new_id] = max(self.leases.get(new_id, 0.0), until)

    def expired(self, now: float) -> list[str]:
        return sorted(
            deployment_id for deployment_id, until in self.leases.items()
            if until < now
        )


@dataclasses.dataclass(frozen=True)
class HealthReport:
    """One deployment's health at a point in time."""

    deployment_id: str
    healthy: bool
    crashed_services: tuple[str, ...]
    dead_hosts: tuple[str, ...]


def health_check(
    manager: DeploymentManager, deployment_id: str
) -> HealthReport:
    """Inspect one deployment's containers and their hosts."""
    deployment = manager.deployment(deployment_id)
    crashed = deployment.crashed_services()
    embedding_hosts = {
        d.node for d in deployment.embedding.plan.decisions
        if not d.reused_physical
    }
    dead = tuple(sorted(
        node for node in embedding_hosts
        if node in manager.hosts and not manager.hosts[node].alive
    ))
    return HealthReport(
        deployment_id=deployment_id,
        healthy=(deployment.state is DeploymentState.ACTIVE
                 and not crashed and not dead),
        crashed_services=crashed,
        dead_hosts=dead,
    )


@dataclasses.dataclass(frozen=True)
class RepairResult:
    """What one repair attempt achieved."""

    repaired: bool
    restarted: tuple[str, ...] = ()   # rebooted on their original host
    moved: tuple[str, ...] = ()       # re-embedded onto a live host
    reason: str = ""


def repair_deployment(
    manager: DeploymentManager, deployment_id: str, now: float
) -> RepairResult:
    """Bring a damaged deployment back to full health, if possible.

    Crashed containers whose host is still alive are restarted in
    place (one instantiation time).  Containers stranded on a dead
    host are re-embedded: :func:`embed_pvn` re-places the chain over
    the surviving hosts and down-link-free paths, and fresh containers
    are launched at the new locations.  Failure to re-embed (capacity
    exhausted, network partitioned) is reported, not raised — the
    caller's repair budget decides when to degrade to tunneling.
    """
    deployment = manager.deployment(deployment_id)
    if deployment.state is not DeploymentState.ACTIVE:
        return RepairResult(
            repaired=False,
            reason=f"deployment is {deployment.state.value}, not repairable",
        )
    crashed = deployment.crashed_services()
    if not crashed:
        return RepairResult(repaired=True, reason="already healthy")

    host_by_service = {
        d.service: d.node for d in deployment.embedding.plan.decisions
    }
    restarted: list[str] = []
    stranded: list[str] = []
    for service in crashed:
        node = host_by_service.get(service, "")
        host = manager.hosts.get(node)
        if host is not None and host.alive:
            container = deployment.containers[service]
            if manager.sim is not None:
                container.start(manager.sim)
            else:
                container.start_immediately(now)
            restarted.append(service)
        else:
            stranded.append(service)

    moved: list[str] = []
    if stranded:
        live_hosts = {
            name: host for name, host in manager.hosts.items() if host.alive
        }
        try:
            new_embedding = embed_pvn(
                deployment.compiled, manager.topo, live_hosts,
                device_node=deployment.embedding.device_node,
                gateway_node=deployment.embedding.gateway_node,
            )
        except ReproError as exc:
            return RepairResult(
                repaired=False, restarted=tuple(restarted),
                reason=f"re-embedding failed: {exc}",
            )
        new_nodes = {
            d.service: d.node for d in new_embedding.plan.decisions
        }
        for service in stranded:
            old = deployment.containers[service]
            replacement = Container(
                old.middlebox, spec=manager.container_spec,
                owner=deployment.user,
            )
            target = live_hosts.get(new_nodes.get(service, ""))
            try:
                if target is not None:
                    target.launch(replacement, sim=manager.sim, now=now)
                else:
                    replacement.start_immediately(now)
            except ReproError as exc:
                return RepairResult(
                    repaired=False, restarted=tuple(restarted),
                    moved=tuple(moved),
                    reason=f"relaunch of {service} failed: {exc}",
                )
            deployment.containers[service] = replacement
            moved.append(service)
        deployment.embedding = new_embedding

    deployment.repairs += 1
    if manager.tracer is not None:
        manager.tracer.emit(
            now, "recovery", manager.provider, event="repaired",
            deployment_id=deployment_id,
            restarted=",".join(restarted), moved=",".join(moved),
        )
    return RepairResult(
        repaired=True, restarted=tuple(restarted), moved=tuple(moved),
        reason="repaired",
    )


def degrade_to_tunnel(
    manager: DeploymentManager,
    deployment_id: str,
    endpoint: str,
    now: float,
) -> FullTunnel:
    """Give up on the in-network chain and fall back to VPN mode.

    The deployment's flow rules and containers are released, its data
    path redirects every packet to ``endpoint``, and the deployment
    enters :attr:`DeploymentState.DEGRADED` — still billed, still
    auditable, but no longer running middleboxes in the access
    network.  Returns the :class:`FullTunnel` modelling the fallback.
    """
    deployment = manager.deployment(deployment_id)
    if deployment.state is DeploymentState.TORN_DOWN:
        raise DeploymentError(
            f"cannot degrade torn-down deployment {deployment_id}"
        )
    tunnel = FullTunnel(
        manager.topo,
        device_node=deployment.embedding.device_node,
        endpoint_node=endpoint,
        gateway_node=deployment.embedding.gateway_node,
    )
    if manager.controller is not None:
        manager.controller.remove_pvn(deployment_id)
    for host in manager.hosts.values():
        host.terminate_owner(deployment.user)
    for container in deployment.containers.values():
        if container.state is not ContainerState.STOPPED:
            container.stop()
    deployment.datapath.degraded_to = endpoint
    deployment.state = DeploymentState.DEGRADED
    deployment.degraded_to = endpoint
    if manager.tracer is not None:
        manager.tracer.emit(
            now, "recovery", manager.provider, event="degraded",
            deployment_id=deployment_id, endpoint=endpoint,
        )
    return tunnel


def sweep_expired(
    manager: DeploymentManager, leases: LeaseTable, now: float
) -> list[str]:
    """Tear down every deployment whose lease lapsed; returns their ids."""
    torn_down = []
    for deployment_id in leases.expired(now):
        deployment = manager.deployments.get(deployment_id)
        if deployment is None or deployment.state is not DeploymentState.ACTIVE:
            continue
        manager.teardown(deployment_id)
        torn_down.append(deployment_id)
    for deployment_id in torn_down:
        del leases.leases[deployment_id]
    return torn_down
