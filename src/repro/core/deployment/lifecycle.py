"""Deployment lifecycle operations beyond install/teardown.

* **DHCP refresh** — the §3.1 post-ACK address move into the PVN's
  block.
* **Migration** — when a device roams to another AP inside the same
  provider, re-embed the chain and move state without a full
  renegotiation.
* **Expiry sweeps** — deployments are leased; unfunded leases are torn
  down, freeing NFV capacity.
"""

from __future__ import annotations

import dataclasses

from repro.core.deployment.embedding import embed_pvn
from repro.core.deployment.manager import (
    Deployment,
    DeploymentManager,
    DeploymentState,
)
from repro.errors import DeploymentError
from repro.netproto.dhcp import DhcpServer, Lease


def refresh_address(
    manager: DeploymentManager,
    dhcp: DhcpServer,
    deployment_id: str,
    client_mac: str,
    now: float,
) -> Lease:
    """Move the device's lease into its deployment's subnet."""
    deployment = manager.deployment(deployment_id)
    if deployment.state is not DeploymentState.ACTIVE:
        raise DeploymentError(
            f"cannot refresh into inactive deployment {deployment_id}"
        )
    return dhcp.refresh_into_pvn(client_mac, deployment_id, now)


@dataclasses.dataclass(frozen=True)
class MigrationResult:
    """Outcome of an intra-provider AP migration."""

    deployment_id: str
    old_stretch: float
    new_stretch: float
    moved_services: tuple[str, ...]


def migrate_device(
    manager: DeploymentManager,
    deployment_id: str,
    new_device_node: str,
) -> MigrationResult:
    """Re-embed an active deployment after the device moved APs."""
    deployment = manager.deployment(deployment_id)
    if deployment.state is not DeploymentState.ACTIVE:
        raise DeploymentError(f"deployment {deployment_id} is not active")
    old = deployment.embedding
    new_embedding = embed_pvn(
        deployment.compiled, manager.topo, manager.hosts,
        device_node=new_device_node, gateway_node=manager.gateway_node,
    )
    old_nodes = {d.service: d.node for d in old.plan.decisions}
    moved = tuple(
        d.service for d in new_embedding.plan.decisions
        if old_nodes.get(d.service) != d.node
    )
    deployment.embedding = new_embedding
    return MigrationResult(
        deployment_id=deployment_id,
        old_stretch=old.stretch,
        new_stretch=new_embedding.stretch,
        moved_services=moved,
    )


@dataclasses.dataclass
class LeaseTable:
    """Funding leases: deployment id -> paid-until time."""

    leases: dict[str, float] = dataclasses.field(default_factory=dict)

    def fund(self, deployment_id: str, until: float) -> None:
        self.leases[deployment_id] = max(
            self.leases.get(deployment_id, 0.0), until
        )

    def expired(self, now: float) -> list[str]:
        return sorted(
            deployment_id for deployment_id, until in self.leases.items()
            if until < now
        )


def sweep_expired(
    manager: DeploymentManager, leases: LeaseTable, now: float
) -> list[str]:
    """Tear down every deployment whose lease lapsed; returns their ids."""
    torn_down = []
    for deployment_id in leases.expired(now):
        deployment = manager.deployments.get(deployment_id)
        if deployment is None or deployment.state is not DeploymentState.ACTIVE:
            continue
        manager.teardown(deployment_id)
        torn_down.append(deployment_id)
    for deployment_id in torn_down:
        del leases.leases[deployment_id]
    return torn_down
