"""Orchestration as optimization: multi-objective placement, middlebox
sharing, and load-driven autoscaling.

The paper's economics only close if a provider can pack many users'
chains onto shared infrastructure cheaply while honoring per-user
policy (§3.3).  First-fit placement (:func:`repro.nfv.placement
.place_chain`) gets *a* feasible embedding; this module makes placement
an explicit optimization problem in the style of Bari et al., *On
Orchestrating Virtual Network Functions in NFV*:

* **Cost model** (:class:`CostModel`) — one objective with three terms:

  - *operational*: per-host resource cost of every container placed
    (hosts may carry a ``cost_rate`` topology attribute; wide-area
    sites are typically dearer),
  - *latency*: the one-way latency of the waypointed device->gateway
    path (the knob behind the user's latency SLO),
  - *energy/consolidation*: a fixed charge per host the plan powers
    on, so packing prefers already-active hosts.

* **Middlebox sharing as a packing decision** — a chain element whose
  PVNC allows provider-operated boxes (``allow_physical_reuse``) may
  *join* an existing shared container of the same service instead of
  launching its own.  Shared instances live in a
  :class:`SharedMiddleboxPool`, are capped at ``max_members`` users
  (the isolation constraint), and hold one container's reservation on
  their :class:`~repro.nfv.hypervisor.NfvHost` via the ordinary
  residual-capacity counters.

* **An online heuristic** (:class:`PlacementOptimizer`) — greedy
  best-candidate selection in chain order with depth-first
  backtracking on capacity dead-ends (so it finds a feasible plan
  whenever one exists in the candidate space) followed by bounded
  single-element improvement passes.

* **A reference solver** (:func:`reference_solve`) — exhaustive branch
  and bound over the same candidate space, usable on small (<=
  ``max_hosts``-host) topologies.  It is the correctness oracle: the
  differential suite asserts the heuristic is feasible whenever the
  reference is, and lands within :data:`HEURISTIC_COST_BOUND` of the
  optimal objective.

* **A load-driven autoscaler** (:class:`Autoscaler`) — watches
  per-instance load gauges published through :mod:`repro.obs`, spawns
  new shared instances when utilization crosses the high watermark,
  drains and retires cold ones, and rebalances members make-before-
  break by driving full PR-2 migration transactions
  (:class:`~repro.core.deployment.migration.MigrationCoordinator`), so
  every rebalance inherits the epoch-fence and rollback guarantees.

Everything here is **opt-in**: a :class:`~repro.core.deployment
.manager.DeploymentManager` without an ``optimizer`` behaves byte-for-
byte like the first-fit seed (pinned by the E18 digest regression
test).
"""

from __future__ import annotations

import dataclasses
import enum
import itertools

from repro.errors import EmbeddingError, ReproError
from repro.netsim.topology import PhysicalTopology
from repro.nfv.container import Container, ContainerSpec, ContainerState
from repro.nfv.hypervisor import NfvHost
from repro.nfv.middlebox import Middlebox
from repro.nfv.placement import (
    PlacementDecision,
    PlacementPlan,
    PlacementRequest,
    _physical_box_for,
)
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.sdn.routing import path_stretch, waypointed_path

#: Multiplicative optimality bound the online heuristic is held to by
#: the differential suite: ``heuristic_cost <= HEURISTIC_COST_BOUND *
#: reference_cost`` on every instance the reference solver can close.
#: The backtracking-greedy + improvement-pass construction lands well
#: inside this on the test distribution (see the gap histogram the
#: suite logs); the bound is the regression fence, not the expectation.
HEURISTIC_COST_BOUND = 1.5

#: Gauge family the pool publishes per-instance load through; the
#: autoscaler reads the same family back (via :mod:`repro.obs` when
#: enabled, else the optimizer's private registry).
LOAD_GAUGE = "repro_orchestrator_instance_load"
MEMBER_GAUGE = "repro_orchestrator_instance_members"


# -- the cost model ----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CostWeights:
    """Relative weights of the objective's terms.

    Defaults are tuned so the terms are commensurate on the canonical
    access networks: a fresh container ~0.25, powering on an idle host
    0.5, and each millisecond of one-way path latency 0.04.
    """

    operational: float = 2.0      # per resource unit placed
    latency: float = 40.0         # per second of one-way chain latency
    energy: float = 0.5           # per host the plan newly powers on
    balance: float = 0.2          # per unit utilization of a joined instance
    share_join_fraction: float = 0.15   # marginal cost of one more member


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Evaluates the multi-objective placement cost.

    The same model scores the online heuristic, the reference solver,
    and the E19 sweep, so "optimal" means one thing everywhere.
    """

    weights: CostWeights = CostWeights()
    #: Load units (e.g. packets/s) one shared instance absorbs before
    #: its contention delay diverges; the autoscaler's utilization
    #: denominator.
    instance_capacity: float = 1000.0
    #: Base service time the contention model scales (seconds).
    contention_base: float = 0.002

    def host_rate(self, topo: PhysicalTopology, node: str) -> float:
        """Operational cost multiplier of one host (topology attribute
        ``cost_rate``; wide-area sites default 4x)."""
        data = topo.graph.nodes.get(node, {})
        default = 4.0 if data.get("wide_area") else 1.0
        return float(data.get("cost_rate", default))

    def resource_units(self, request: PlacementRequest) -> float:
        """Normalize one request's footprint (100 MB ~ 1.6 cores ~ 1)."""
        return request.memory_bytes / 1e8 + request.cpu_share / 1.6

    def fresh_cost(self, topo: PhysicalTopology, node: str,
                   request: PlacementRequest) -> float:
        return (self.weights.operational * self.host_rate(topo, node)
                * self.resource_units(request))

    def join_cost(self, topo: PhysicalTopology, node: str,
                  request: PlacementRequest, load: float) -> float:
        """Marginal cost of one more member on an existing instance:
        a fraction of the dedicated cost plus a load-balancing term
        that steers joins toward cold instances."""
        return (self.weights.share_join_fraction
                * self.fresh_cost(topo, node, request)
                + self.weights.balance * load / self.instance_capacity)

    def latency_cost(self, latency: float) -> float:
        return self.weights.latency * latency

    def utilization(self, load: float) -> float:
        return load / self.instance_capacity

    def contention_delay(self, load: float) -> float:
        """Deterministic M/M/1-shaped queueing penalty of one instance
        at ``load`` (seconds, one way); saturates at rho = 0.98."""
        rho = min(self.utilization(load), 0.98)
        return self.contention_base * rho / (1.0 - rho)

    def world_cost(self, topo: PhysicalTopology,
                   hosts: dict[str, NfvHost]) -> float:
        """Operational + energy cost of the world as deployed (the E19
        "provider bill"): every live container reservation, on every
        powered host, at its host rate."""
        total = 0.0
        for name, host in sorted(hosts.items()):
            if host.container_count <= 0:
                continue
            rate = self.host_rate(topo, name)
            units = (host.memory_in_use / 1e8 + host.cpu_in_use / 1.6)
            total += self.weights.operational * rate * units
            total += self.weights.energy
        return total


# -- the shared-middlebox pool -----------------------------------------------


class InstanceState(enum.Enum):
    ACTIVE = "active"
    DRAINING = "draining"    # excluded from joins; autoscaler empties it
    RETIRED = "retired"


@dataclasses.dataclass
class SharedInstance:
    """One provider-operated shared middlebox container."""

    instance_id: str
    service: str
    node: str
    container: Container | None = None
    state: InstanceState = InstanceState.ACTIVE
    members: dict[str, float] = dataclasses.field(default_factory=dict)
    created_at: float = 0.0

    @property
    def load(self) -> float:
        return sum(self.members.values())

    @property
    def member_count(self) -> int:
        return len(self.members)


class SharedMiddleboxPool:
    """All shared instances one provider operates.

    Membership is keyed by deployment id, so make-before-break
    rebalancing works naturally: the migration target joins while the
    source is still a member, and the source's membership is released
    only at COMMIT (or the target's at ABORT).
    """

    def __init__(self, max_members: int = 16) -> None:
        if max_members < 1:
            raise EmbeddingError("shared instances need max_members >= 1")
        self.max_members = max_members
        self.instances: dict[str, SharedInstance] = {}
        self._counter = itertools.count(1)
        self.spawns = 0
        self.retires = 0

    def joinable(self, service: str) -> list[SharedInstance]:
        """ACTIVE instances of ``service`` with member headroom, in a
        deterministic order."""
        return [
            inst for _, inst in sorted(self.instances.items())
            if inst.service == service
            and inst.state is InstanceState.ACTIVE
            and inst.member_count < self.max_members
        ]

    def of_service(self, service: str) -> list[SharedInstance]:
        return [
            inst for _, inst in sorted(self.instances.items())
            if inst.service == service
            and inst.state is not InstanceState.RETIRED
        ]

    def spawn(self, service: str, node: str, hosts: dict[str, NfvHost],
              spec: ContainerSpec, sim=None, now: float = 0.0
              ) -> SharedInstance:
        """Launch a new shared container on ``node`` and register it."""
        instance_id = f"shared/{service}#{next(self._counter)}"
        container = Container(Middlebox(service), spec=spec,
                              owner=instance_id)
        host = hosts.get(node)
        if host is not None:
            host.launch(container, sim=sim, now=now)
        else:
            container.start_immediately(now)
        instance = SharedInstance(instance_id, service, node,
                                  container=container, created_at=now)
        self.instances[instance_id] = instance
        self.spawns += 1
        return instance

    def join(self, instance_id: str, deployment_id: str) -> SharedInstance:
        instance = self.instances.get(instance_id)
        if instance is None or instance.state is not InstanceState.ACTIVE:
            raise EmbeddingError(
                f"shared instance {instance_id!r} is not joinable"
            )
        if (deployment_id not in instance.members
                and instance.member_count >= self.max_members):
            raise EmbeddingError(
                f"shared instance {instance_id} is full "
                f"({instance.member_count}/{self.max_members} members)"
            )
        instance.members.setdefault(deployment_id, 0.0)
        return instance

    def release(self, deployment_id: str) -> int:
        """Drop ``deployment_id``'s membership everywhere (idempotent)."""
        dropped = 0
        for instance in self.instances.values():
            if deployment_id in instance.members:
                del instance.members[deployment_id]
                dropped += 1
        return dropped

    def memberships(self, deployment_id: str) -> list[SharedInstance]:
        return [
            inst for _, inst in sorted(self.instances.items())
            if deployment_id in inst.members
        ]

    def retire(self, instance_id: str, hosts: dict[str, NfvHost]) -> bool:
        """Stop an empty instance's container and free its reservation."""
        instance = self.instances.get(instance_id)
        if instance is None or instance.state is InstanceState.RETIRED:
            return False
        if instance.members:
            raise EmbeddingError(
                f"cannot retire {instance_id}: "
                f"{instance.member_count} members still attached"
            )
        if instance.container is not None:
            host = hosts.get(instance.node)
            if host is not None:
                host.terminate(instance.container.container_id)
            elif instance.container.state is not ContainerState.STOPPED:
                instance.container.stop()
        instance.state = InstanceState.RETIRED
        self.retires += 1
        return True

    def fail_node(self, node: str) -> list[str]:
        """A host died: retire every instance on ``node`` in place.

        Unlike :meth:`retire` this takes no care of the container (it
        crashed with the host) and does not require emptiness — the
        members lost their instance, which is precisely the point.
        Returns the sorted deployment ids that were members of any
        failed instance, so the reconciler knows who to re-place; the
        optimizer will never re-join a retired instance
        (:meth:`joinable` filters on ACTIVE).
        """
        affected: set[str] = set()
        for _, instance in sorted(self.instances.items()):
            if instance.node != node:
                continue
            if instance.state is InstanceState.RETIRED:
                continue
            affected.update(instance.members)
            instance.members.clear()
            instance.state = InstanceState.RETIRED
            self.retires += 1
        return sorted(affected)

    def stats(self) -> dict[str, int]:
        active = [i for i in self.instances.values()
                  if i.state is not InstanceState.RETIRED]
        return {
            "instances": len(active),
            "members": sum(i.member_count for i in active),
            "spawns": self.spawns,
            "retires": self.retires,
        }


# -- candidates (shared by the heuristic and the reference solver) -----------


@dataclasses.dataclass(frozen=True)
class _Candidate:
    """One way to realise one chain element."""

    kind: str                 # "physical" | "join" | "fresh"
    node: str
    instance_id: str = ""     # set for kind == "join"
    load: float = 0.0         # joined instance's current load

    def decision(self, service: str) -> PlacementDecision:
        if self.kind == "physical":
            return PlacementDecision(service, self.node,
                                     reused_physical=True)
        if self.kind == "join":
            return PlacementDecision(service, self.node,
                                     reused_physical=False,
                                     shared=True, instance=self.instance_id)
        return PlacementDecision(service, self.node, reused_physical=False,
                                 shared=self.kind == "fresh_shared")


class _Residuals:
    """Tentative capacity charges while a plan is being searched."""

    def __init__(self, hosts: dict[str, NfvHost]) -> None:
        self.hosts = hosts
        self.memory: dict[str, int] = {}
        self.cpu: dict[str, float] = {}

    def fits(self, node: str, request: PlacementRequest) -> bool:
        host = self.hosts.get(node)
        if host is None or not host.alive:
            return False
        return (
            host.memory_in_use + self.memory.get(node, 0)
            + request.memory_bytes <= host.capacity.memory_bytes
            and host.cpu_in_use + self.cpu.get(node, 0.0)
            + request.cpu_share <= host.capacity.cpu_cores
        )

    def charge(self, node: str, request: PlacementRequest) -> None:
        self.memory[node] = (self.memory.get(node, 0)
                             + request.memory_bytes)
        self.cpu[node] = self.cpu.get(node, 0.0) + request.cpu_share

    # Backtracking must restore the exact prior floats: reversing a
    # charge arithmetically (+x then -x) leaves ~1e-17 cpu residue that
    # makes a later boundary-exact fit (sum == capacity) read as over.
    def snapshot(self, node: str) -> tuple[int, float]:
        return (self.memory.get(node, 0), self.cpu.get(node, 0.0))

    def restore(self, node: str, saved: tuple[int, float]) -> None:
        self.memory[node], self.cpu[node] = saved


def _sharing_allowed(request: PlacementRequest) -> bool:
    """A PVNC that tolerates the provider's physical middleboxes also
    tolerates a provider-operated shared container (same trust
    boundary: the box is outside the user's sandbox)."""
    return request.allow_physical_reuse


class _PlacementProblem:
    """One chain-placement instance: candidate space + objective.

    The heuristic and the reference solver are both defined over this
    object, so "the same candidate space" is true by construction.
    """

    def __init__(
        self,
        topo: PhysicalTopology,
        hosts: dict[str, NfvHost],
        requests: tuple[PlacementRequest, ...],
        src: str,
        dst: str,
        model: CostModel,
        pool: SharedMiddleboxPool | None,
        prefer_reuse: bool = True,
        allow_sharing: bool = True,
    ) -> None:
        self.topo = topo
        self.hosts = hosts
        self.requests = tuple(requests)
        self.src = src
        self.dst = dst
        self.model = model
        self.pool = pool
        self.prefer_reuse = prefer_reuse
        self.allow_sharing = allow_sharing
        self.nfv_nodes = [
            node for node in topo.nodes_of_kind("nfv") if node in hosts
        ]
        # Hosts already powered before this plan (energy baseline).
        self.active_hosts = frozenset(
            name for name, host in hosts.items() if host.container_count > 0
        )

    def candidates(self, request: PlacementRequest,
                   residuals: _Residuals,
                   powered: frozenset[str]) -> list[_Candidate]:
        """Every way to realise ``request`` given tentative charges."""
        found: list[_Candidate] = []
        if self.prefer_reuse and request.allow_physical_reuse:
            physical = _physical_box_for(self.topo, request.service)
            if physical is not None:
                found.append(_Candidate("physical", physical))
        if (self.pool is not None and self.allow_sharing
                and _sharing_allowed(request)):
            for instance in self.pool.joinable(request.service):
                host = self.hosts.get(instance.node)
                if host is None or not host.alive:
                    continue
                found.append(_Candidate("join", instance.node,
                                        instance.instance_id,
                                        load=instance.load))
        for node in self.nfv_nodes:
            if residuals.fits(node, request):
                kind = ("fresh_shared"
                        if (self.pool is not None and self.allow_sharing
                            and _sharing_allowed(request))
                        else "fresh")
                found.append(_Candidate(kind, node))
        return found

    # -- objective ---------------------------------------------------------

    def pick_cost(self, request: PlacementRequest, candidate: _Candidate,
                  powered: frozenset[str]) -> tuple[float, frozenset[str]]:
        """Non-latency cost of one pick, and the updated powered set."""
        if candidate.kind == "physical":
            return 0.0, powered
        if candidate.kind == "join":
            return (self.model.join_cost(self.topo, candidate.node, request,
                                         candidate.load), powered)
        cost = self.model.fresh_cost(self.topo, candidate.node, request)
        if candidate.node not in powered:
            cost += self.model.weights.energy
            powered = powered | {candidate.node}
        return cost, powered

    def latency(self, waypoints: list[str]) -> float:
        return self.topo.path_latency(
            waypointed_path(self.topo, self.src, self.dst, waypoints)
        )

    def total_cost(self, picks: list[_Candidate]) -> float:
        powered = self.active_hosts
        cost = 0.0
        for request, candidate in zip(self.requests, picks):
            pick, powered = self.pick_cost(request, candidate, powered)
            cost += pick
        cost += self.model.latency_cost(
            self.latency([c.node for c in picks])
        )
        return cost

    def feasible(self, picks: list[_Candidate]) -> bool:
        residuals = _Residuals(self.hosts)
        joins: dict[str, int] = {}
        for request, candidate in zip(self.requests, picks):
            if candidate.kind in ("fresh", "fresh_shared"):
                if not residuals.fits(candidate.node, request):
                    return False
                residuals.charge(candidate.node, request)
            elif candidate.kind == "join":
                joins[candidate.instance_id] = (
                    joins.get(candidate.instance_id, 0) + 1
                )
        if self.pool is not None:
            for instance_id, extra in joins.items():
                instance = self.pool.instances.get(instance_id)
                if (instance is None
                        or instance.state is not InstanceState.ACTIVE
                        or instance.member_count + extra
                        > self.pool.max_members):
                    return False
        return True

    def plan(self, picks: list[_Candidate]) -> PlacementPlan:
        decisions = tuple(
            candidate.decision(request.service)
            for request, candidate in zip(self.requests, picks)
        )
        waypoints = [d.node for d in decisions]
        path = waypointed_path(self.topo, self.src, self.dst, waypoints)
        stretch = (path_stretch(self.topo, self.src, self.dst, waypoints)
                   if waypoints else 1.0)
        return PlacementPlan(decisions=decisions, path=tuple(path),
                             stretch=stretch)


# -- the reference solver ----------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ReferenceSolution:
    """The exhaustive solver's answer for one instance."""

    plan: PlacementPlan
    cost: float
    explored: int       # search-tree nodes visited


def reference_solve(
    topo: PhysicalTopology,
    hosts: dict[str, NfvHost],
    requests: list[PlacementRequest] | tuple[PlacementRequest, ...],
    src: str,
    dst: str,
    model: CostModel | None = None,
    pool: SharedMiddleboxPool | None = None,
    prefer_reuse: bool = True,
    max_hosts: int = 6,
    max_nodes: int = 250_000,
) -> ReferenceSolution | None:
    """Branch-and-bound optimal placement, or None when infeasible.

    The oracle for the differential suite: exhaustive over the exact
    candidate space the online heuristic searches, pruned by the
    running best (every objective term is non-negative and the latency
    of a waypointed prefix is monotone in its extensions, so the
    partial cost is a valid lower bound).  Guarded to ``max_hosts``
    NFV hosts and ``max_nodes`` search nodes — this is a correctness
    tool for small topologies, not a production path.
    """
    model = model or CostModel()
    problem = _PlacementProblem(topo, hosts, tuple(requests), src, dst,
                                model, pool, prefer_reuse=prefer_reuse)
    if len(problem.nfv_nodes) > max_hosts:
        raise EmbeddingError(
            f"reference_solve is exhaustive; {len(problem.nfv_nodes)} NFV "
            f"hosts exceeds the max_hosts={max_hosts} guard"
        )
    best_cost = float("inf")
    best_picks: list[_Candidate] | None = None
    explored = 0

    def lower_bound(picks: list[_Candidate], spent: float) -> float:
        # Latency through the chosen prefix straight to the gateway
        # can only grow when more waypoints are appended (shortest-path
        # metrics obey the triangle inequality).
        return spent + model.latency_cost(
            problem.latency([c.node for c in picks])
        )

    def dfs(index: int, picks: list[_Candidate], spent: float,
            powered: frozenset[str], residuals: _Residuals,
            joins: dict[str, int]) -> None:
        nonlocal best_cost, best_picks, explored
        explored += 1
        if explored > max_nodes:
            raise EmbeddingError(
                f"reference_solve exceeded max_nodes={max_nodes}; "
                "shrink the instance"
            )
        if lower_bound(picks, spent) >= best_cost:
            return
        if index == len(problem.requests):
            cost = problem.total_cost(picks)
            if cost < best_cost:
                best_cost = cost
                best_picks = list(picks)
            return
        request = problem.requests[index]
        for candidate in problem.candidates(request, residuals, powered):
            if candidate.kind == "join":
                instance = pool.instances[candidate.instance_id]
                extra = joins.get(candidate.instance_id, 0)
                if instance.member_count + extra >= pool.max_members:
                    continue
                joins[candidate.instance_id] = extra + 1
                pick, new_powered = problem.pick_cost(request, candidate,
                                                      powered)
                picks.append(candidate)
                dfs(index + 1, picks, spent + pick, new_powered,
                    residuals, joins)
                picks.pop()
                joins[candidate.instance_id] = extra
            else:
                pick, new_powered = problem.pick_cost(request, candidate,
                                                      powered)
                if candidate.kind != "physical":
                    saved = residuals.snapshot(candidate.node)
                    residuals.charge(candidate.node, request)
                picks.append(candidate)
                dfs(index + 1, picks, spent + pick, new_powered,
                    residuals, joins)
                picks.pop()
                if candidate.kind != "physical":
                    residuals.restore(candidate.node, saved)

    dfs(0, [], 0.0, problem.active_hosts, _Residuals(hosts), {})
    if best_picks is None:
        return None
    return ReferenceSolution(plan=problem.plan(best_picks),
                             cost=best_cost, explored=explored)


# -- the online optimizer ----------------------------------------------------


class PlacementOptimizer:
    """Multi-objective online placement with middlebox sharing.

    ``place`` is pure (no pool or host mutation); the deployment
    manager calls :meth:`commit_plan` only once the install succeeds,
    and :meth:`release` on teardown/supersession, so aborted installs
    and rolled-back migrations leave no membership residue.
    """

    #: Improvement sweeps after the greedy construction.  Two passes
    #: close almost all of the greedy/optimal gap on small instances
    #: while keeping the online cost at O(passes * elements * candidates).
    improvement_passes = 2

    def __init__(
        self,
        topo: PhysicalTopology,
        hosts: dict[str, NfvHost],
        model: CostModel | None = None,
        pool: SharedMiddleboxPool | None = None,
        container_spec: ContainerSpec | None = None,
    ) -> None:
        self.topo = topo
        self.hosts = hosts
        self.model = model or CostModel()
        self.pool = pool or SharedMiddleboxPool()
        self.container_spec = container_spec or ContainerSpec()
        self.placements = 0
        self.backtracks = 0
        self._local_metrics = MetricsRegistry()

    # -- placement ---------------------------------------------------------

    def place(
        self,
        requests: tuple[PlacementRequest, ...],
        src: str,
        dst: str,
        prefer_reuse: bool = True,
    ) -> PlacementPlan:
        """One chain placement minimising the multi-objective cost.

        Greedy in chain order with DFS backtracking on capacity dead
        ends — the search visits candidates in marginal-cost order and
        returns the first feasible completion, so it finds a plan
        whenever :func:`reference_solve` does — then up to
        ``improvement_passes`` single-element improvement sweeps.
        Raises :class:`~repro.errors.EmbeddingError` when no feasible
        plan exists.
        """
        problem = _PlacementProblem(
            self.topo, self.hosts, tuple(requests), src, dst,
            self.model, self.pool, prefer_reuse=prefer_reuse,
        )
        picks = self._greedy(problem)
        if picks is None:
            raise EmbeddingError(
                "no feasible placement for chain "
                + ",".join(r.service for r in requests)
            )
        picks = self._improve(problem, picks)
        self.placements += 1
        return problem.plan(picks)

    def _greedy(self, problem: _PlacementProblem
                ) -> list[_Candidate] | None:
        """First feasible completion in greedy marginal-cost order."""
        requests = problem.requests

        def extend(index: int, picks: list[_Candidate], spent: float,
                   powered: frozenset[str], residuals: _Residuals,
                   joins: dict[str, int]) -> list[_Candidate] | None:
            if index == len(requests):
                return list(picks)
            request = requests[index]
            scored = []
            for candidate in problem.candidates(request, residuals, powered):
                if candidate.kind == "join":
                    instance = problem.pool.instances[candidate.instance_id]
                    if (instance.member_count
                            + joins.get(candidate.instance_id, 0)
                            >= problem.pool.max_members):
                        continue
                pick, new_powered = problem.pick_cost(request, candidate,
                                                      powered)
                marginal = spent + pick + problem.model.latency_cost(
                    problem.latency([c.node for c in picks]
                                    + [candidate.node])
                )
                scored.append((marginal, candidate.kind, candidate.node,
                               candidate.instance_id, candidate, pick,
                               new_powered))
            for _, _, _, _, candidate, pick, new_powered in sorted(
                    scored, key=lambda item: item[:4]):
                if candidate.kind in ("fresh", "fresh_shared"):
                    saved = residuals.snapshot(candidate.node)
                    residuals.charge(candidate.node, request)
                if candidate.kind == "join":
                    joins[candidate.instance_id] = (
                        joins.get(candidate.instance_id, 0) + 1)
                picks.append(candidate)
                done = extend(index + 1, picks, spent + pick, new_powered,
                              residuals, joins)
                if done is not None:
                    return done
                self.backtracks += 1
                picks.pop()
                if candidate.kind in ("fresh", "fresh_shared"):
                    residuals.restore(candidate.node, saved)
                if candidate.kind == "join":
                    joins[candidate.instance_id] -= 1
            return None

        return extend(0, [], 0.0, problem.active_hosts,
                      _Residuals(problem.hosts), {})

    def _improve(self, problem: _PlacementProblem,
                 picks: list[_Candidate]) -> list[_Candidate]:
        """Single-element improvement sweeps (strict descent only)."""
        best_cost = problem.total_cost(picks)
        for _ in range(self.improvement_passes):
            improved = False
            for index, request in enumerate(problem.requests):
                residuals = _Residuals(problem.hosts)
                for other_index, other in enumerate(picks):
                    if (other_index != index
                            and other.kind in ("fresh", "fresh_shared")):
                        residuals.charge(other.node,
                                         problem.requests[other_index])
                current = picks[index]
                for candidate in problem.candidates(request, residuals,
                                                    problem.active_hosts):
                    if candidate == current:
                        continue
                    trial = list(picks)
                    trial[index] = candidate
                    if not problem.feasible(trial):
                        continue
                    cost = problem.total_cost(trial)
                    if cost < best_cost - 1e-12:
                        picks, best_cost, improved = trial, cost, True
            if not improved:
                break
        return picks

    def plan_cost(
        self,
        requests: tuple[PlacementRequest, ...],
        src: str,
        dst: str,
        plan: PlacementPlan,
    ) -> float:
        """Evaluate an existing plan under the current objective (the
        number the differential suite compares against
        :func:`reference_solve`)."""
        problem = _PlacementProblem(
            self.topo, self.hosts, tuple(requests), src, dst,
            self.model, self.pool,
        )
        picks = []
        for decision in plan.decisions:
            if decision.reused_physical:
                picks.append(_Candidate("physical", decision.node))
            elif decision.shared and decision.instance:
                instance = self.pool.instances.get(decision.instance)
                picks.append(_Candidate(
                    "join", decision.node, decision.instance,
                    load=instance.load if instance is not None else 0.0,
                ))
            elif decision.shared:
                picks.append(_Candidate("fresh_shared", decision.node))
            else:
                picks.append(_Candidate("fresh", decision.node))
        return problem.total_cost(picks)

    # -- memoization support ------------------------------------------------

    def share_snapshot(
        self, requests: tuple[PlacementRequest, ...]
    ) -> tuple:
        """Everything :meth:`place` reads beyond topology + host
        feasibility: which instances each service could join (and at
        what load, which the balance term prices), and which hosts are
        currently powered (the energy term's baseline).  An
        :class:`~repro.core.deployment.embedding.EmbeddingIndex` must
        include this in its validation snapshot — a memo hit that
        ignored the sharing state could return a stale "join" plan
        that violates a later request's isolation cap (regression
        test: ``tests/core/test_orchestrator.py``)."""
        services = sorted({
            r.service for r in requests if _sharing_allowed(r)
        })
        return (
            tuple(
                (service, tuple(
                    (inst.instance_id, inst.member_count, inst.load)
                    for inst in self.pool.joinable(service)
                ))
                for service in services
            ),
            frozenset(
                name for name, host in self.hosts.items()
                if host.container_count > 0
            ),
        )

    # -- world mutation (install/teardown/migration hooks) ------------------

    def commit_plan(self, deployment_id: str, plan: PlacementPlan,
                    sim=None, now: float = 0.0) -> dict[str, str]:
        """Apply a plan's sharing decisions: join existing instances,
        spawn new shared containers for ``shared`` decisions that
        targeted no instance.  Returns service -> instance id."""
        joined: dict[str, str] = {}
        for decision in plan.decisions:
            if not decision.shared:
                continue
            if decision.instance:
                instance = self.pool.join(decision.instance, deployment_id)
            else:
                instance = self.pool.spawn(
                    decision.service, decision.node, self.hosts,
                    self.container_spec, sim=sim, now=now,
                )
                self.pool.join(instance.instance_id, deployment_id)
            joined[decision.service] = instance.instance_id
        if joined:
            self.publish_loads(now)
        return joined

    def release(self, deployment_id: str, now: float = 0.0) -> int:
        """Forget a deployment's memberships (teardown/supersession)."""
        dropped = self.pool.release(deployment_id)
        if dropped:
            self.publish_loads(now)
        return dropped

    # -- load telemetry ------------------------------------------------------

    def _registry(self) -> MetricsRegistry:
        obs = obs_runtime.current()
        return obs.metrics if obs is not None else self._local_metrics

    def report_load(self, deployment_id: str, rate: float,
                    now: float = 0.0) -> None:
        """Attribute ``rate`` load units to every instance the
        deployment shares (the per-member contribution the autoscaler
        aggregates)."""
        for instance in self.pool.memberships(deployment_id):
            instance.members[deployment_id] = rate
        self.publish_loads(now)

    def publish_loads(self, now: float = 0.0) -> None:
        """Fold per-instance load/membership into the metrics registry
        (:mod:`repro.obs` when enabled, else a private registry the
        autoscaler reads)."""
        registry = self._registry()
        load = registry.gauge(LOAD_GAUGE, "Shared-instance load units",
                              ("service", "instance"))
        members = registry.gauge(MEMBER_GAUGE, "Shared-instance members",
                                 ("service", "instance"))
        for instance_id, instance in sorted(self.pool.instances.items()):
            if instance.state is InstanceState.RETIRED:
                continue
            load.labels(service=instance.service,
                        instance=instance_id).set(instance.load)
            members.labels(service=instance.service,
                           instance=instance_id).set(instance.member_count)

    def instance_load(self, instance: SharedInstance) -> float:
        """One instance's load as the metrics registry last saw it —
        the autoscaler's view goes through :mod:`repro.obs`, not the
        pool's internal state."""
        return self._registry().value(
            LOAD_GAUGE, service=instance.service,
            instance=instance.instance_id,
        )


# -- the autoscaler ----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AutoscalePolicy:
    """Watermarks and budgets for load-driven horizontal scaling."""

    high_watermark: float = 0.8    # utilization that triggers scale-up
    low_watermark: float = 0.2     # utilization that triggers drain
    target_utilization: float = 0.6
    max_instances_per_service: int = 16
    max_migrations_per_tick: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.low_watermark < self.target_utilization \
                < self.high_watermark <= 1.0:
            raise EmbeddingError(
                "autoscale watermarks must satisfy 0 < low < target "
                "< high <= 1"
            )


@dataclasses.dataclass(frozen=True)
class AutoscaleEvent:
    """One autoscaler action, for the audit trail and E19's table."""

    now: float
    service: str
    action: str        # scale_up | drain | retire | rebalance
    instance: str
    detail: str = ""


class Autoscaler:
    """Load-driven horizontal scaling of shared middlebox instances.

    State machine per instance::

        ACTIVE --(util < low, members fit elsewhere)--> DRAINING
        DRAINING --(last member migrated off)--> RETIRED
        ACTIVE --(util > high, service under instance cap)--> ACTIVE
                 \\-> a sibling instance is spawned and members are
                     rebalanced onto it make-before-break

    Rebalancing is never a bare membership swap: each moved member is
    a full :class:`~repro.core.deployment.migration.MigrationCoordinator`
    transaction (PREPARE/TRANSFER/COMMIT-or-ABORT), so the epoch
    fence, the WAL journal, and the bridge-tunnel window all apply.
    An aborted migration leaves the member exactly where it was.
    """

    def __init__(
        self,
        manager,                           # DeploymentManager (duck-typed)
        optimizer: PlacementOptimizer,
        policy: AutoscalePolicy | None = None,
    ) -> None:
        self.manager = manager
        self.optimizer = optimizer
        self.policy = policy or AutoscalePolicy()
        self.events: list[AutoscaleEvent] = []
        self.migrations = 0
        self.failed_migrations = 0

    # -- helpers -----------------------------------------------------------

    def _utilization(self, instance: SharedInstance) -> float:
        return self.optimizer.model.utilization(
            self.optimizer.instance_load(instance)
        )

    def _coordinator(self):
        from repro.core.deployment.migration import ensure_coordinator

        return ensure_coordinator(self.manager)

    def _emit(self, now: float, service: str, action: str, instance: str,
              detail: str = "") -> None:
        self.events.append(
            AutoscaleEvent(now, service, action, instance, detail)
        )
        obs = obs_runtime.current()
        if obs is not None:
            obs.metrics.counter(
                "repro_autoscale_actions",
                "Autoscaler actions by kind",
                ("service", "action"),
            ).labels(service=service, action=action).inc()

    def _spawn_node(self, service: str) -> str | None:
        """The cheapest feasible host for a new shared instance."""
        request = PlacementRequest(
            service=service,
            memory_bytes=self.optimizer.container_spec.memory_bytes,
            cpu_share=self.optimizer.container_spec.cpu_share,
        )
        residuals = _Residuals(self.optimizer.hosts)
        best: tuple[float, str] | None = None
        for node in sorted(self.optimizer.hosts):
            if node not in self.optimizer.topo.graph.nodes:
                continue
            if self.optimizer.topo.kind_of(node) != "nfv":
                continue
            if not residuals.fits(node, request):
                continue
            cost = self.optimizer.model.fresh_cost(
                self.optimizer.topo, node, request
            )
            host = self.optimizer.hosts[node]
            if host.container_count == 0:
                cost += self.optimizer.model.weights.energy
            if best is None or (cost, node) < best:
                best = (cost, node)
        return best[1] if best else None

    def _migrate_member(self, deployment_id: str, rate: float,
                        now: float) -> str | None:
        """Re-place one member's whole chain make-before-break; with
        the optimizer active the re-embedding lands on the coldest
        joinable instance.  Returns the surviving deployment id on
        COMMIT (the member's load rate follows it), None on ABORT."""
        try:
            deployment = self.manager.deployment(deployment_id)
        except ReproError:
            return None
        result = self._coordinator().migrate(
            deployment_id, deployment.embedding.device_node, now,
        )
        if result.committed:
            self.migrations += 1
            self.optimizer.report_load(result.deployment_id, rate, now)
            return result.deployment_id
        self.failed_migrations += 1
        return None

    # -- the control loop --------------------------------------------------

    def tick(self, now: float) -> list[AutoscaleEvent]:
        """One autoscaling pass; returns the actions taken."""
        before = len(self.events)
        budget = self.policy.max_migrations_per_tick
        services = sorted({
            inst.service for inst in self.optimizer.pool.instances.values()
            if inst.state is not InstanceState.RETIRED
        })
        for service in services:
            budget = self._scale_service(service, now, budget)
        self._retire_empty(now)
        return self.events[before:]

    def _scale_service(self, service: str, now: float, budget: int) -> int:
        pool = self.optimizer.pool
        active = [i for i in pool.of_service(service)
                  if i.state is InstanceState.ACTIVE]
        if not active:
            return budget
        hot = [i for i in active
               if self._utilization(i) > self.policy.high_watermark]
        if hot and len(active) < self.policy.max_instances_per_service:
            node = self._spawn_node(service)
            if node is not None:
                instance = pool.spawn(
                    service, node, self.optimizer.hosts,
                    self.optimizer.container_spec,
                    sim=getattr(self.manager, "sim", None), now=now,
                )
                self._emit(now, service, "scale_up", instance.instance_id,
                           f"on {node}; {len(hot)} hot instance(s)")
                self.optimizer.publish_loads(now)
        # Rebalance the hottest instances down toward the target.
        for instance in sorted(
                hot, key=lambda i: (-self._utilization(i), i.instance_id)):
            budget = self._rebalance(instance, now, budget)
        # Drain cold instances whose members fit in the others' headroom.
        if len(active) > 1:
            cold = sorted(
                (i for i in active
                 if self._utilization(i) < self.policy.low_watermark
                 and i.state is InstanceState.ACTIVE),
                key=lambda i: (self._utilization(i), i.instance_id),
            )
            for instance in cold[:1]:    # at most one drain per tick
                headroom = sum(
                    pool.max_members - other.member_count
                    for other in pool.joinable(service)
                    if other.instance_id != instance.instance_id
                )
                if headroom < instance.member_count:
                    continue
                instance.state = InstanceState.DRAINING
                self._emit(now, service, "drain", instance.instance_id,
                           f"{instance.member_count} member(s) to move")
                budget = self._drain(instance, now, budget)
        return budget

    def _rebalance(self, instance: SharedInstance, now: float,
                   budget: int) -> int:
        """Move members off a hot instance until it cools to target."""
        model = self.optimizer.model
        target_load = self.policy.target_utilization * model.instance_capacity
        # Heaviest members first: fewest migrations to cool down.
        members = sorted(instance.members.items(),
                         key=lambda item: (-item[1], item[0]))
        for deployment_id, rate in members:
            if budget <= 0 or instance.load <= target_load:
                break
            # "Somewhere better to go" must exclude this instance: a
            # hot instance at max_members isn't joinable itself, but
            # its members still need an exit.
            if not any(
                other.instance_id != instance.instance_id
                for other in self.optimizer.pool.joinable(instance.service)
            ):
                break
            budget -= 1
            moved_to = self._migrate_member(deployment_id, rate, now)
            if moved_to is not None:
                self._emit(now, instance.service, "rebalance",
                           instance.instance_id,
                           f"moved {deployment_id} -> {moved_to} "
                           f"({rate:g} load units)")
        return budget

    def _drain(self, instance: SharedInstance, now: float,
               budget: int) -> int:
        for deployment_id, rate in sorted(instance.members.items()):
            if budget <= 0:
                break
            budget -= 1
            self._migrate_member(deployment_id, rate, now)
        return budget

    def _retire_empty(self, now: float) -> None:
        for instance_id, instance in sorted(
                self.optimizer.pool.instances.items()):
            if (instance.state is InstanceState.DRAINING
                    and not instance.members):
                self.optimizer.pool.retire(instance_id,
                                           self.optimizer.hosts)
                self._emit(now, instance.service, "retire", instance_id)
        self.optimizer.publish_loads(now)
