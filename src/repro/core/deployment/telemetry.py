"""The closed loop's sensor: measured datapath rates into the optimizer.

Until this module, every autoscaling experiment fed
:meth:`PlacementOptimizer.report_load` rates the *experiment script*
knew (ROADMAP item 3 called this out).  :class:`TelemetryFeed` closes
the loop: once per simulator tick it samples each ACTIVE deployment's
``datapath.packets_total`` tap (the plain ``int`` the hot path already
increments — sampling costs nothing per packet), converts the delta to
a rate, and reports it.  The control plane now reacts to what the
datapath actually carried, not to what the script promised.

Determinism notes:

* Rates are pure arithmetic over monotone counters on the simulated
  clock — a run that processes the same packets produces byte-identical
  rates, which is what lets E22 assert digest parity between
  telemetry-fed and experiment-fed autoscaling.
* Marks for deployments that disappear (migrated away, torn down) are
  pruned, so a superseded deployment can never pin stale load onto an
  instance; the migration coordinator already hands the member's rate
  to the surviving deployment id at commit.
* Optional EWMA smoothing (``alpha`` < 1) damps bursty workloads;  the
  default ``alpha=1.0`` reports raw deltas so measured == reported
  exactly.

Switch-level taps can be watched too (:meth:`watch_switch`); those
publish gauges for operators rather than feeding the optimizer, since
instance load is attributed per deployment, not per switch.

Fluid-model sources (:meth:`watch_fluid`) are the third tap kind: the
hybrid population engine (``repro.netsim.fluid``) exposes per-cell
*rates* directly — the fluid model's state variable is a rate, not a
packet counter — so those are reported as-is (no delta-over-interval
conversion) through the same EWMA/report_load path.  This is what lets
the placement optimizer steer off aggregate load at population scale
where no per-packet counter exists to difference.
"""

from __future__ import annotations

from repro.core.deployment.manager import DeploymentManager, DeploymentState
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry

#: Gauge: the measured per-deployment rate last reported to the optimizer.
RATE_GAUGE = "repro_telemetry_deployment_rate"
#: Gauge: the measured per-switch receive rate (operator visibility).
SWITCH_RATE_GAUGE = "repro_telemetry_switch_rate"
#: Gauge: the fluid-model per-deployment rate (packets/s, direct).
FLUID_RATE_GAUGE = "repro_telemetry_fluid_rate"
#: Counter: feed evaluations.
TICKS_COUNTER = "repro_telemetry_ticks"


class TelemetryFeed:
    """Per-tick fold of live datapath counters into ``report_load``."""

    def __init__(self, manager: DeploymentManager, optimizer=None,
                 interval: float = 1.0, alpha: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.manager = manager
        self.optimizer = (optimizer if optimizer is not None
                          else getattr(manager, "optimizer", None))
        self.interval = interval
        self.alpha = alpha
        self._marks: dict[str, int] = {}
        self._rates: dict[str, float] = {}
        self._switches: dict[str, object] = {}
        self._switch_marks: dict[str, int] = {}
        self._fluid: dict[str, tuple[object, int]] = {}
        self._local_metrics = MetricsRegistry()
        self.ticks = 0

    def _registry(self) -> MetricsRegistry:
        obs = obs_runtime.current()
        return obs.metrics if obs is not None else self._local_metrics

    def watch_switch(self, name: str, switch) -> None:
        """Track any object with a ``packets_total`` tap under ``name``."""
        self._switches[name] = switch

    def watch_fluid(self, deployment_id: str, engine, cell: int) -> None:
        """Attribute a hybrid-engine cell's fluid rate to a deployment.

        ``engine`` is anything with a ``cell_rate_pps(cell)`` tap (the
        :class:`~repro.netsim.fluid.HybridPopulationEngine`).  Unlike
        datapath and switch taps, the value is already a rate — the
        fluid model's state — so :meth:`tick` reports it directly
        (EWMA-smoothed like the counter path when ``alpha`` < 1).
        """
        self._fluid[deployment_id] = (engine, cell)

    def unwatch_fluid(self, deployment_id: str) -> None:
        """Stop attributing a cell's fluid rate (idempotent)."""
        self._fluid.pop(deployment_id, None)
        self._rates.pop(deployment_id, None)

    # -- the sensor --------------------------------------------------------

    def tick(self, now: float) -> dict[str, float]:
        """Sample every ACTIVE deployment and report measured rates.

        Returns ``{deployment_id: rate}`` for this tick.
        """
        self.ticks += 1
        registry = self._registry()
        rate_gauge = registry.gauge(
            RATE_GAUGE, "Measured per-deployment datapath rate",
            ("deployment",))
        rates: dict[str, float] = {}
        live: set[str] = set()
        for deployment_id, deployment in sorted(
                self.manager.deployments.items()):
            if deployment.state is not DeploymentState.ACTIVE:
                continue
            live.add(deployment_id)
            total = deployment.datapath.packets_total
            delta = total - self._marks.get(deployment_id, 0)
            self._marks[deployment_id] = total
            rate = self._smooth(deployment_id, delta / self.interval)
            rates[deployment_id] = rate
            rate_gauge.labels(deployment=deployment_id).set(rate)
            if self.optimizer is not None:
                self.optimizer.report_load(deployment_id, rate, now)
        # Prune marks for deployments that migrated away or tore down —
        # their load follows the surviving deployment id.
        for stale in set(self._marks) - live:
            del self._marks[stale]
            self._rates.pop(stale, None)
        self._sample_fluid(registry, now, rates)
        self._sample_switches(registry)
        registry.counter(
            TICKS_COUNTER, "Telemetry feed evaluations").inc()
        return rates

    def _smooth(self, deployment_id: str, raw: float) -> float:
        """EWMA fold of one raw sample into the per-deployment rate."""
        if self.alpha < 1.0 and deployment_id in self._rates:
            rate = (self.alpha * raw
                    + (1.0 - self.alpha) * self._rates[deployment_id])
        else:
            rate = raw
        self._rates[deployment_id] = rate
        return rate

    def _sample_fluid(self, registry: MetricsRegistry, now: float,
                      rates: dict[str, float]) -> None:
        if not self._fluid:
            return
        gauge = registry.gauge(
            FLUID_RATE_GAUGE,
            "Fluid-model per-deployment rate (packets/s)",
            ("deployment",))
        for deployment_id, (engine, cell) in sorted(self._fluid.items()):
            # Already a rate (the fluid model's state variable), not a
            # counter: no delta-over-interval conversion.
            rate = self._smooth(deployment_id, engine.cell_rate_pps(cell))
            rates[deployment_id] = rate
            gauge.labels(deployment=deployment_id).set(rate)
            if self.optimizer is not None:
                self.optimizer.report_load(deployment_id, rate, now)

    def _sample_switches(self, registry: MetricsRegistry) -> None:
        if not self._switches:
            return
        gauge = registry.gauge(
            SWITCH_RATE_GAUGE, "Measured per-switch receive rate",
            ("switch",))
        for name, switch in sorted(self._switches.items()):
            total = switch.packets_total
            delta = total - self._switch_marks.get(name, 0)
            self._switch_marks[name] = total
            gauge.labels(switch=name).set(delta / self.interval)

    def rate(self, deployment_id: str) -> float:
        """The last rate reported for a deployment (0.0 if never seen)."""
        return self._rates.get(deployment_id, 0.0)
