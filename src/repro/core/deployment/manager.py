"""The PVN deployment server.

§3.1: "Upon receiving a deployment request, the PVN-supporting network
must install the PVNC and route the device's traffic through it.  Upon
successfully setting up the PVNC, the network sends an acknowledgement
to the device, which also triggers a DHCP refresh to obtain the new
addresses.  If the deployment fails for some reason, the provider
replies with a NACK and failure reason."

:class:`DeploymentManager` implements that contract: compile ->
embed -> launch containers -> build the sandboxed data path -> install
owner-scoped flow rules -> allocate the PVN subnet -> attest -> ACK.
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import itertools
from typing import Callable

from repro.core.auditor.attestation import Attestation, TrustedPlatform
from repro.core.auditor.path_proof import ProofKeyring, make_keyring, stamp
from repro.core.deployment.embedding import (
    EmbeddingIndex,
    EmbeddingResult,
    embed_pvn,
)
from repro.core.discovery.messages import (
    DeploymentAck,
    DeploymentNack,
    DeploymentRequest,
)
from repro.core.pvnc.compiler import (
    _USE_DEFAULT_CACHE,
    CompileCache,
    CompiledPvnc,
    UserEnvironment,
    build_middleboxes,
    compile_pvnc,
)
from repro.errors import ReproError
from repro.middleboxes.classifier import CLASS_KEY
from repro.netproto.dhcp import DhcpServer
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator
from repro.netsim.topology import PhysicalTopology
from repro.netsim.trace import Tracer
from repro.obs import runtime as obs_runtime
from repro.obs import spans as obs_spans
from repro.nfv.container import Container, ContainerSpec, ContainerState
from repro.nfv.hypervisor import NfvHost
from repro.nfv.middlebox import Middlebox, ProcessingContext, Verdict, VerdictKind
from repro.nfv.pipeline import Pipeline, PipelineStep, labeled_verdict
from repro.nfv.sandbox import Capability, Sandbox
from repro.sdn.actions import Output, ToChain
from repro.sdn.controller import Controller

_deployment_numbers = itertools.count(1)


def _phase_span(tracer, name: str, now: float):
    """A span scope over a synchronous deploy phase (no sim advance),
    or a no-op scope when tracing is off."""
    if tracer is None:
        return contextlib.nullcontext()
    return tracer.span(name, lambda: now)


def _count_deploy(obs, provider: str, outcome: str) -> None:
    obs.metrics.counter(
        "repro_deployments",
        "PVN deployment requests by outcome",
        ("provider", "outcome"),
    ).labels(provider=provider, outcome=outcome).inc()


ACTION_FORWARD = "forward"
ACTION_DROP = "drop"
ACTION_TUNNEL = "tunnel"


@dataclasses.dataclass
class DataPathOutcome:
    """What the PVN did with one packet."""

    action: str                       # forward | drop | tunnel
    tunnel_endpoint: str = ""
    added_delay: float = 0.0
    traffic_class: str = ""
    verdict_reasons: tuple[str, ...] = ()


class PvnDataPath:
    """The per-deployment packet pipeline: classifier -> class chain ->
    terminal (Fig. 1(a) realised).

    Execution is compiled: each traffic class gets one
    :class:`~repro.nfv.pipeline.Pipeline` whose steps pre-resolve the
    sandbox/middlebox runner, the path-proof stamp, and the per-hop
    delay; a pooled :class:`ProcessingContext` is reused across
    packets.  Compiled pipelines are invalidated whenever the
    datapath's routing mode changes — degradation to a tunnel, a
    migration bridge opening or closing, or an epoch-fence adoption —
    so a stale compiled pipeline can never serve post-cutover traffic.
    Container crash state is *not* compiled in: each step rechecks its
    container at run time, so repairs that swap a container take effect
    immediately without a flush.
    """

    def __init__(
        self,
        deployment_id: str,
        compiled: CompiledPvnc,
        middleboxes: dict[str, Middlebox],
        sandboxes: dict[str, Sandbox],
        keyring: ProofKeyring,
        container_spec: ContainerSpec,
        tracer: Tracer | None = None,
        skip_services: frozenset[str] = frozenset(),
        trusted_execution: bool = False,
        containers: dict[str, Container] | None = None,
    ) -> None:
        self.deployment_id = deployment_id
        self.compiled = compiled
        self.middleboxes = middleboxes
        self.sandboxes = sandboxes
        self.keyring = keyring
        self.container_spec = container_spec
        self.tracer = tracer
        self.skip_services = skip_services   # dishonest-provider knob
        self.trusted_execution = trusted_execution
        self.packets_processed = 0
        # Shared with the Deployment record: repairs that swap a
        # container are visible here without re-plumbing.
        self.containers = containers if containers is not None else {}
        self._degraded_to = ""
        self._bridging_to = ""
        # Epoch fencing (split-brain protection).  The migration
        # coordinator adopts a datapath by setting these three; a
        # datapath whose epoch falls behind the registry's current
        # epoch for its lineage rejects packets instead of
        # double-processing them after a cutover it missed.
        self.fencing = None        # EpochRegistry | None
        self.lineage = ""
        self._epoch = 0
        self.stale_rejections = 0
        # Compiled fast path: per-traffic-class pipelines, a compiled
        # classifier runner, redirect pipelines, one pooled context.
        self._pipelines: dict[str, Pipeline] = {}
        self._classifier_runner = None
        self._redirect_pipeline: Pipeline | None = None
        self._pooled_context: ProcessingContext | None = None
        self._context_pool: list[ProcessingContext] = []
        self.pipeline_compiles = 0
        self.pipeline_invalidations = 0

    # -- invalidation-fenced routing-mode attributes -----------------------

    @property
    def degraded_to(self) -> str:
        """Tunnel endpoint after degradation to VPN mode ("" = none)."""
        return self._degraded_to

    @degraded_to.setter
    def degraded_to(self, endpoint: str) -> None:
        if endpoint != self._degraded_to:
            self._degraded_to = endpoint
            self.invalidate_pipelines("degraded_to changed")

    @property
    def bridging_to(self) -> str:
        """Migration TRANSFER-window bridge endpoint ("" = none)."""
        return self._bridging_to

    @bridging_to.setter
    def bridging_to(self, endpoint: str) -> None:
        if endpoint != self._bridging_to:
            self._bridging_to = endpoint
            self.invalidate_pipelines("bridging_to changed")

    @property
    def epoch(self) -> int:
        return self._epoch

    @epoch.setter
    def epoch(self, value: int) -> None:
        if value != self._epoch:
            self._epoch = value
            self.invalidate_pipelines("epoch fence advanced")

    def invalidate_pipelines(self, reason: str = "") -> None:
        """Drop every compiled pipeline (next packet recompiles).

        Part of the migration/degradation contract: any change to the
        routing mode or the epoch fence must flush compiled state so a
        superseded pipeline cannot serve another packet.
        """
        if (self._pipelines or self._classifier_runner is not None
                or self._redirect_pipeline is not None):
            self.pipeline_invalidations += 1
        self._pipelines.clear()
        self._classifier_runner = None
        self._redirect_pipeline = None

    # -- compilation --------------------------------------------------------

    def _context(self, packet: Packet, now: float) -> ProcessingContext:
        pooled = self._pooled_context
        if pooled is None:
            pooled = ProcessingContext(
                now=now, owner=packet.owner, tracer=self.tracer,
                trusted_execution=self.trusted_execution,
            )
            self._pooled_context = pooled
            return pooled
        return pooled.reset(now, packet.owner)

    def _resolve_runner(self, service: str):
        """The pre-bound per-packet callable for one service."""
        sandbox = self.sandboxes.get(service)
        if sandbox is not None:
            return sandbox.process
        return self.middleboxes[service].process

    def _make_step(self, service: str) -> PipelineStep:
        keyring = self.keyring
        runner = self._resolve_runner(service)
        containers = self.containers
        crashed = labeled_verdict(
            Verdict.dropped(f"middlebox {service} crashed"), "crashed",
        )

        def precheck(packet: Packet, context: ProcessingContext):
            # A crashed middlebox is a service interruption, not a
            # silent bypass: the packet is lost until the recovery
            # layer repairs the chain or degrades to tunneling.
            # Checked at run time so repairs apply without a flush.
            container = containers.get(service)
            if container is not None and container.state in (
                    ContainerState.CRASHED, ContainerState.STOPPED):
                return crashed
            return None

        def run(packet: Packet, context: ProcessingContext):
            stamp(packet, service, keyring)
            return runner(packet, context)

        return PipelineStep(
            name=service, runner=run,
            delay=self.container_spec.per_packet_delay, precheck=precheck,
        )

    def _pipeline_for(self, traffic_class: str) -> Pipeline:
        pipeline = self._pipelines.get(traffic_class)
        if pipeline is None:
            steps = tuple(
                self._make_step(service)
                for service in self.compiled.pipeline_for(traffic_class)
                if service not in self.skip_services
            )
            pipeline = Pipeline(
                f"{self.deployment_id}/{traffic_class}", steps,
                drop_suffix=f" (pvn {self.deployment_id})",
            )
            self._pipelines[traffic_class] = pipeline
            self.pipeline_compiles += 1
        return pipeline

    def _service_down(self, service: str) -> bool:
        """A service is down when its container crashed (or stopped)
        and has not been repaired yet; services without containers
        (reused physical middleboxes) never crash this way."""
        container = self.containers.get(service)
        return container is not None and container.state in (
            ContainerState.CRASHED, ContainerState.STOPPED,
        )

    def _run_service(
        self, service: str, packet: Packet, context: ProcessingContext
    ):
        stamp(packet, service, self.keyring)
        sandbox = self.sandboxes.get(service)
        if sandbox is not None:
            return sandbox.process(packet, context)
        return self.middleboxes[service].process(packet, context)

    def _redirect(self, endpoint: str, label: str,
                  packet: Packet, now: float) -> DataPathOutcome:
        """The degraded/bridged path, run through a tunnel pipeline."""
        pipeline = self._redirect_pipeline
        if pipeline is None:
            pipeline = Pipeline.tunnel(
                f"{self.deployment_id}/{label}", endpoint, label,
            )
            self._redirect_pipeline = pipeline
            self.pipeline_compiles += 1
        result = pipeline.run(packet, self._context(packet, now))
        return DataPathOutcome(
            action=ACTION_TUNNEL,
            tunnel_endpoint=result.tunnel_endpoint,
            verdict_reasons=result.labels,
        )

    # -- per-packet span synthesis -------------------------------------------

    def _record_packet_spans(self, packet: Packet, now: float,
                             outcome: DataPathOutcome,
                             hop_labels: tuple[str, ...]) -> None:
        """Synthesize the per-hop span tree for one *traced* packet.

        Only packets carrying a :class:`~repro.obs.spans.SpanContext`
        (injected by the device/session layer when a request is being
        traced) generate spans, so bulk replay traffic pays nothing.
        Per-hop sim timings are exact where delays were charged: hop
        *i* spans ``[prefix_delay_i, prefix_delay_{i+1}]`` within the
        datapath span, whose total length is the outcome's
        ``added_delay``.
        """
        obs = obs_runtime.current()
        if obs is None or not obs.trace_spans:
            return
        parent = obs_spans.extract(packet.metadata)
        if parent is None:
            return
        tracer = obs.spans
        end = now + outcome.added_delay
        root = tracer.record_span(
            "datapath.process", now, end, parent=parent,
            deployment_id=self.deployment_id,
            packet_id=packet.packet_id,
            action=outcome.action,
            traffic_class=outcome.traffic_class,
        )
        per_hop = self.container_spec.per_packet_delay
        offset = now
        for label in hop_labels:
            service = label.split(":", 1)[0]
            hop_end = min(end, offset + per_hop)
            tracer.record_span(
                f"mbox.{service}", offset, hop_end, parent=root,
                verdict=label.split(":", 1)[1] if ":" in label else "",
                deployment_id=self.deployment_id,
            )
            offset = hop_end

    # -- the per-packet fast path -------------------------------------------

    def process(self, packet: Packet, now: float) -> DataPathOutcome:
        """Run one packet through the full PVN pipeline."""
        outcome = self._process(packet, now)
        # Span synthesis is outside the fast path proper: untraced
        # packets exit on the first None check inside.
        classifier_ran = bool(outcome.traffic_class) and (
            "classifier" not in self.skip_services)
        self._record_packet_spans(
            packet, now, outcome,
            (("classifier:pass",) if classifier_ran else ())
            + tuple(outcome.verdict_reasons),
        )
        return outcome

    def process_batch(self, packets: list[Packet],
                      now: float) -> list[DataPathOutcome]:
        """Run a burst through the PVN pipeline as vectors.

        Packets are classified per slot (sharing one context per slot
        between the classifier and that packet's chain, exactly like
        the scalar path), grouped by traffic class, and each group
        executes through its compiled pipeline's
        :meth:`~repro.nfv.pipeline.Pipeline.run_batch`.  Rare states —
        stale epoch, migration bridge, degradation, crashed classifier
        — and span-traced packets fall back to scalar :meth:`process`
        so their per-packet semantics (fence evidence, span synthesis,
        verdict labels) are untouched; batched outcomes carry empty
        ``verdict_reasons`` (the throughput/introspection trade
        :class:`~repro.nfv.pipeline.BatchResult` documents).
        """
        classify = "classifier" not in self.skip_services
        if (self._bridging_to or self._degraded_to
                or (classify and self._service_down("classifier"))
                or (self.fencing is not None
                    and not self.fencing.is_current(self.lineage,
                                                    self.epoch))):
            return [self.process(packet, now) for packet in packets]
        obs = obs_runtime.current()
        tracing = obs is not None and obs.trace_spans
        outcomes: list[DataPathOutcome | None] = [None] * len(packets)
        vector: list[int] = []
        for i, packet in enumerate(packets):
            if tracing and obs_spans.extract(packet.metadata) is not None:
                outcomes[i] = self.process(packet, now)
            else:
                vector.append(i)
        if not vector:
            return outcomes
        self.packets_processed += len(vector)
        pool = self._context_pool
        while len(pool) < len(vector):
            pool.append(ProcessingContext(
                now=now, owner="", tracer=self.tracer,
                trusted_execution=self.trusted_execution,
            ))
        runner = None
        if classify:
            runner = self._classifier_runner
            if runner is None:
                runner = self._resolve_runner("classifier")
                self._classifier_runner = runner
        classifier_delay = self.container_spec.per_packet_delay if classify \
            else 0.0
        groups: dict[str, tuple[list[int], list[Packet], list]] = {}
        for slot, i in enumerate(vector):
            packet = packets[i]
            context = pool[slot].reset(now, packet.owner)
            if runner is not None:
                stamp(packet, "classifier", self.keyring)
                runner(packet, context)
            traffic_class = packet.metadata.get(CLASS_KEY, "other")
            group = groups.get(traffic_class)
            if group is None:
                groups[traffic_class] = ([i], [packet], [context])
            else:
                group[0].append(i)
                group[1].append(packet)
                group[2].append(context)
        for traffic_class, (indices, group_packets, contexts) in \
                groups.items():
            batch = self._pipeline_for(traffic_class).run_batch(
                group_packets, contexts,
            )
            terminal = self.compiled.terminal_for(traffic_class)
            for k, i in enumerate(indices):
                delay = classifier_delay + batch.added_delays[k]
                kind = batch.terminal_kinds[k]
                if kind is VerdictKind.DROP:
                    outcomes[i] = DataPathOutcome(
                        action=ACTION_DROP, added_delay=delay,
                        traffic_class=traffic_class,
                    )
                elif kind is VerdictKind.TUNNEL:
                    outcomes[i] = DataPathOutcome(
                        action=ACTION_TUNNEL,
                        tunnel_endpoint=batch.tunnel_endpoints[k],
                        added_delay=delay, traffic_class=traffic_class,
                    )
                elif terminal == "drop":
                    group_packets[k].mark_dropped(
                        f"policy drop (pvn {self.deployment_id})"
                    )
                    outcomes[i] = DataPathOutcome(
                        action=ACTION_DROP, added_delay=delay,
                        traffic_class=traffic_class,
                    )
                elif terminal.startswith("tunnel:"):
                    outcomes[i] = DataPathOutcome(
                        action=ACTION_TUNNEL,
                        tunnel_endpoint=terminal.split(":", 1)[1],
                        added_delay=delay, traffic_class=traffic_class,
                    )
                else:
                    outcomes[i] = DataPathOutcome(
                        action=ACTION_FORWARD, added_delay=delay,
                        traffic_class=traffic_class,
                    )
        return outcomes

    def _process(self, packet: Packet, now: float) -> DataPathOutcome:
        if (self.fencing is not None
                and not self.fencing.is_current(self.lineage, self.epoch)):
            # A stale-epoch deployment missed a migration cutover; it
            # must reject traffic, not double-process it.  The packet
            # never reaches a middlebox and is not counted as
            # processed — the fence records the violation as evidence.
            self.stale_rejections += 1
            self.fencing.reject(self.deployment_id, self.lineage,
                                self.epoch, now)
            packet.mark_dropped(
                f"stale epoch {self.epoch} at pvn {self.deployment_id} "
                f"(current {self.fencing.current(self.lineage)})"
            )
            return DataPathOutcome(
                action=ACTION_DROP,
                verdict_reasons=("fencing:stale_epoch",),
            )
        self.packets_processed += 1
        if self._bridging_to:
            # Mid-migration TRANSFER window: the source chain is
            # frozen for checkpointing, traffic rides the tunnel
            # fallback until COMMIT or ABORT.
            return self._redirect(self._bridging_to, "migrating:bridge",
                                  packet, now)
        if self._degraded_to:
            # Graceful degradation (§3.3 fallback): the chain is gone,
            # traffic continues end-to-end through the VPN tunnel.
            return self._redirect(self._degraded_to, "degraded:tunnel",
                                  packet, now)
        context = self._context(packet, now)
        delay = 0.0

        if "classifier" not in self.skip_services:
            if self._service_down("classifier"):
                packet.mark_dropped(
                    f"classifier crashed (pvn {self.deployment_id})"
                )
                return DataPathOutcome(
                    action=ACTION_DROP,
                    verdict_reasons=("classifier:crashed",),
                )
            runner = self._classifier_runner
            if runner is None:
                runner = self._resolve_runner("classifier")
                self._classifier_runner = runner
            delay += self.container_spec.per_packet_delay
            stamp(packet, "classifier", self.keyring)
            runner(packet, context)
        traffic_class = packet.metadata.get(CLASS_KEY, "other")

        result = self._pipeline_for(traffic_class).run(packet, context)
        delay += result.added_delay
        if result.terminal_kind is VerdictKind.DROP:
            return DataPathOutcome(
                action=ACTION_DROP, added_delay=delay,
                traffic_class=traffic_class,
                verdict_reasons=result.labels,
            )
        if result.terminal_kind is VerdictKind.TUNNEL:
            return DataPathOutcome(
                action=ACTION_TUNNEL,
                tunnel_endpoint=result.tunnel_endpoint,
                added_delay=delay,
                traffic_class=traffic_class,
                verdict_reasons=result.labels,
            )

        terminal = self.compiled.terminal_for(traffic_class)
        if terminal == "drop":
            packet.mark_dropped(f"policy drop (pvn {self.deployment_id})")
            return DataPathOutcome(
                action=ACTION_DROP, added_delay=delay,
                traffic_class=traffic_class, verdict_reasons=result.labels,
            )
        if terminal.startswith("tunnel:"):
            return DataPathOutcome(
                action=ACTION_TUNNEL,
                tunnel_endpoint=terminal.split(":", 1)[1],
                added_delay=delay,
                traffic_class=traffic_class,
                verdict_reasons=result.labels,
            )
        return DataPathOutcome(
            action=ACTION_FORWARD, added_delay=delay,
            traffic_class=traffic_class, verdict_reasons=result.labels,
        )

    # -- observability ------------------------------------------------------

    @property
    def packets_total(self) -> int:
        """The monotone throughput tap the closed loop samples
        (:class:`~repro.core.deployment.telemetry.TelemetryFeed` reads
        deltas of this per tick to derive a measured load rate)."""
        return self.packets_processed

    def counters(self) -> dict[str, int]:
        counts = {
            "packets_processed": self.packets_processed,
            "stale_rejections": self.stale_rejections,
            "pipeline_compiles": self.pipeline_compiles,
            "pipeline_invalidations": self.pipeline_invalidations,
        }
        for traffic_class, pipeline in sorted(self._pipelines.items()):
            counts[f"{traffic_class}_packets"] = pipeline.packets_in
        return counts

    def publish_counters(self, now: float,
                         tracer: Tracer | None = None) -> None:
        """Emit datapath throughput counters (category ``"datapath"``).

        Tracer records are unchanged; with observability enabled the
        totals also fold into the metrics registry
        (``repro_datapath_packets_total{deployment=...,result=...}``),
        and each per-class pipeline publishes its own counters.
        """
        # Explicit None check: an empty Tracer is falsy (__len__ == 0).
        sink = tracer if tracer is not None else self.tracer
        if sink is not None:
            sink.emit(now, "datapath", self.deployment_id, event="counters",
                      **self.counters())
        obs = obs_runtime.current()
        if obs is not None:
            obs.metrics.fold_totals(
                "repro_datapath_packets",
                "Per-deployment datapath packet totals",
                ("deployment",), {"deployment": self.deployment_id},
                self.counters(),
            )
            # Registry-only for the per-class pipelines (they carry no
            # Tracer, so the "datapath" category stays byte-identical
            # to the pre-registry publish path).
            pipelines = list(self._pipelines.values())
            if self._redirect_pipeline is not None:
                pipelines.append(self._redirect_pipeline)
            for pipeline in pipelines:
                pipeline.publish(now)


class DeploymentState(enum.Enum):
    ACTIVE = "active"
    DEGRADED = "degraded"      # chain lost; traffic rides the VPN fallback
    SUPERSEDED = "superseded"  # migrated away; fenced against stale traffic
    TORN_DOWN = "torn_down"


@dataclasses.dataclass
class Deployment:
    """One installed PVN."""

    deployment_id: str
    user: str
    compiled: CompiledPvnc
    embedding: EmbeddingResult
    containers: dict[str, Container]
    datapath: PvnDataPath
    subnet: str
    price_paid: float
    created_at: float
    ready_at: float
    attestation: Attestation | None
    state: DeploymentState = DeploymentState.ACTIVE
    degraded_to: str = ""        # tunnel endpoint after degradation
    repairs: int = 0             # successful repair operations
    env: UserEnvironment | None = None   # for rebuilding middleboxes
    epoch: int = 0               # fencing token; bumped at migration commit
    lineage: str = ""            # stable id across migrations ("" = own id)

    @property
    def lineage_id(self) -> str:
        return self.lineage or self.deployment_id

    @property
    def setup_latency(self) -> float:
        return self.ready_at - self.created_at

    def crashed_services(self) -> tuple[str, ...]:
        """Services whose container is currently crashed."""
        return tuple(sorted(
            service for service, container in self.containers.items()
            if container.state is ContainerState.CRASHED
        ))

    @property
    def healthy(self) -> bool:
        return (self.state is DeploymentState.ACTIVE
                and not self.crashed_services())


class DeploymentManager:
    """Provider-side installation and teardown of PVNs."""

    def __init__(
        self,
        provider: str,
        topo: PhysicalTopology,
        hosts: dict[str, NfvHost],
        controller: Controller | None = None,
        sim: Simulator | None = None,
        dhcp: DhcpServer | None = None,
        platform: TrustedPlatform | None = None,
        tracer: Tracer | None = None,
        container_spec: ContainerSpec | None = None,
        ingress_switch: str = "agg",
        gateway_node: str = "gw",
        store_services: set[str] | None = None,
        store_factories: dict[str, Callable[[], Middlebox]] | None = None,
        store_capabilities: dict[str, Capability] | None = None,
        compile_cache: CompileCache | None = _USE_DEFAULT_CACHE,  # type: ignore[assignment]
        use_embedding_index: bool = True,
        optimizer=None,
    ) -> None:
        self.provider = provider
        self.topo = topo
        self.hosts = hosts
        self.controller = controller
        self.sim = sim
        self.dhcp = dhcp
        self.platform = platform
        self.tracer = tracer
        self.container_spec = container_spec or ContainerSpec()
        self.ingress_switch = ingress_switch
        self.gateway_node = gateway_node
        self.store_services = store_services or set()
        self.store_factories = store_factories or {}
        self.store_capabilities = store_capabilities or {}
        self.deployments: dict[str, Deployment] = {}
        self._subnet_counter = itertools.count(1)
        # Control-plane fast path: memoized compiles (process-wide by
        # default; pass compile_cache=None for the uncached baseline)
        # and snapshot-validated placement memoization.
        self.compile_cache = compile_cache
        # Opt-in multi-objective placement + middlebox sharing
        # (repro.core.deployment.orchestrator.PlacementOptimizer);
        # None keeps the first-fit seed behaviour byte-identical.
        self.optimizer = optimizer
        self.embedding_index = (
            EmbeddingIndex(topo, hosts, optimizer=optimizer)
            if use_embedding_index else None
        )
        # Lazily created by repro.core.deployment.migration.
        self.migration_coordinator = None

    def allocate_deployment_id(self, user: str) -> str:
        """Mint a fresh deployment id (installs and migration targets)."""
        return f"{user}/pvn{next(_deployment_numbers)}"

    # -- deployment ---------------------------------------------------------

    def deploy(
        self,
        request: DeploymentRequest,
        env: UserEnvironment,
        device_node: str,
        now: float,
        skip_services: frozenset[str] = frozenset(),
        trusted_execution: bool = False,
    ) -> DeploymentAck | DeploymentNack:
        """Install a PVN; every failure becomes a NACK with a reason."""
        obs = obs_runtime.current()
        tracer = obs.spans if obs is not None and obs.trace_spans else None
        deploy_span = (tracer.start_span("deployment.deploy", now,
                                         provider=self.provider,
                                         user=request.pvnc.user)
                       if tracer is not None else None)
        try:
            with _phase_span(tracer, "deployment.compile", now):
                compiled = compile_pvnc(request.pvnc, self.store_services,
                                        self.container_spec,
                                        self.store_capabilities,
                                        cache=self.compile_cache)
            with _phase_span(tracer, "deployment.embed", now):
                embedding = embed_pvn(
                    compiled, self.topo, self.hosts,
                    device_node=device_node, gateway_node=self.gateway_node,
                    index=self.embedding_index,
                    optimizer=self.optimizer,
                )
            install_span = (tracer.start_span("deployment.install", now)
                            if tracer is not None else None)
            deployment = self._install(
                request, compiled, embedding, env, now,
                skip_services, trusted_execution,
            )
            if install_span is not None:
                # The install span runs until the parallel container
                # launch completes — its sim duration *is* the paper's
                # instantiation latency.
                tracer.end_span(install_span, deployment.ready_at,
                                deployment_id=deployment.deployment_id)
        except ReproError as exc:
            if deploy_span is not None:
                tracer.end_span(deploy_span, now, status=obs_spans.STATUS_ERROR,
                                error=f"{type(exc).__name__}: {exc}")
            if obs is not None:
                _count_deploy(obs, self.provider, "nack")
            return DeploymentNack(reason=f"{type(exc).__name__}: {exc}")
        self.deployments[deployment.deployment_id] = deployment
        if deploy_span is not None:
            tracer.end_span(deploy_span, deployment.ready_at,
                            deployment_id=deployment.deployment_id,
                            subnet=deployment.subnet)
        if obs is not None:
            _count_deploy(obs, self.provider, "ack")
        if self.tracer is not None:
            self.tracer.emit(now, "deployment", self.provider,
                             event="deployed", user=request.pvnc.user,
                             deployment_id=deployment.deployment_id,
                             services=",".join(
                                 compiled.deployment_services))
        return DeploymentAck(
            deployment_id=deployment.deployment_id,
            pvn_subnet=deployment.subnet,
            attestation_available=deployment.attestation is not None,
        )

    def _install(
        self,
        request: DeploymentRequest,
        compiled: CompiledPvnc,
        embedding: EmbeddingResult,
        env: UserEnvironment,
        now: float,
        skip_services: frozenset[str],
        trusted_execution: bool,
    ) -> Deployment:
        user = request.pvnc.user
        deployment_id = self.allocate_deployment_id(user)

        # 1. Launch a container per non-reused chain element; they start
        #    in parallel, so readiness is one instantiation time away.
        middleboxes = build_middleboxes(compiled, env, self.store_factories)
        containers: dict[str, Container] = {}
        # Shared instances are provider-operated like physical boxes:
        # no per-user container is launched for either.
        reused = {
            d.service for d in embedding.plan.decisions
            if d.reused_physical or d.shared
        }
        host_by_service = {
            d.service: d.node for d in embedding.plan.decisions
        }
        for service, middlebox in middleboxes.items():
            if service in reused:
                continue
            container = Container(middlebox, spec=self.container_spec,
                                  owner=user)
            host_name = host_by_service.get(service)
            host = self.hosts.get(host_name or "")
            if host is not None:
                host.launch(container, sim=self.sim, now=now)
            else:
                container.start_immediately(now)
            containers[service] = container
        ready_at = now + (
            self.container_spec.instantiation_time if containers else 0.0
        )

        # 2. Sandboxes with the compiler's capability grants.
        grants = dict(compiled.capability_grants)
        sandboxes = {
            service: Sandbox(
                middlebox, owner=user,
                capabilities=grants.get(service, Capability.OBSERVE),
            )
            for service, middlebox in middleboxes.items()
        }

        # 3. The data path, with path-proof keys for every element.
        keyring = make_keyring(
            deployment_id, list(compiled.deployment_services)
        )
        datapath = PvnDataPath(
            deployment_id=deployment_id,
            compiled=compiled,
            middleboxes=middleboxes,
            sandboxes=sandboxes,
            keyring=keyring,
            container_spec=self.container_spec,
            tracer=self.tracer,
            skip_services=skip_services,
            trusted_execution=trusted_execution,
            containers=containers,
        )

        # 4. Owner-scoped flow rules steering the user into the chain.
        if self.controller is not None:
            switch = self.controller.switch(self.ingress_switch)
            detour = self._detour_delay(embedding)
            switch.bind_chain(
                deployment_id,
                lambda packet, chain_id: self._chain_executor(
                    datapath, packet, detour
                ),
            )
            switch.bind_chain_batch(
                deployment_id,
                lambda packets, chain_id: self._chain_batch_executor(
                    datapath, packets, detour
                ),
            )
            next_hop = self._next_hop_toward_gateway()
            self.controller.install(
                self.ingress_switch,
                compiled.pvn_match,
                (ToChain(deployment_id, resume_neighbor=next_hop),),
                priority=200,
                pvn_id=deployment_id,
            )

        # 5. PVN-scoped addresses for the post-ACK DHCP refresh.
        subnet = f"10.200.{next(self._subnet_counter)}.0/24"
        if self.dhcp is not None:
            self.dhcp.register_pvn_subnet(deployment_id, subnet)

        # 6. Attestation of exactly what was installed.
        attestation = None
        if self.platform is not None:
            attestation = self.platform.attest(
                deployment_id,
                request.pvnc.digest(),
                tuple(s for s in compiled.deployment_services
                      if s not in skip_services),
                now=now,
            )

        # 7. Sharing decisions take effect last, once the install can
        #    no longer fail: join the plan's shared instances (spawning
        #    any the plan left unassigned).
        if self.optimizer is not None:
            self.optimizer.commit_plan(deployment_id, embedding.plan,
                                       sim=self.sim, now=now)

        return Deployment(
            deployment_id=deployment_id,
            user=user,
            compiled=compiled,
            embedding=embedding,
            containers=containers,
            datapath=datapath,
            subnet=subnet,
            price_paid=request.payment,
            created_at=now,
            ready_at=ready_at,
            attestation=attestation,
            env=env,
        )

    def _chain_executor(self, datapath: PvnDataPath, packet: Packet,
                        detour_delay: float = 0.0):
        now = self.sim.now if self.sim is not None else 0.0
        outcome = datapath.process(packet, now)
        if outcome.action != ACTION_FORWARD:
            return None
        # Report processing latency (§3.3's 45 us/container) plus the
        # placement detour (the embedding's path stretch) for the
        # switch to charge before resuming the packet.
        packet.metadata["chain_delay"] = outcome.added_delay + detour_delay
        return packet

    def _chain_batch_executor(self, datapath: PvnDataPath,
                              packets: list[Packet],
                              detour_delay: float = 0.0):
        """Vector counterpart of :meth:`_chain_executor` — one datapath
        batch per burst, per-packet outcome handling unchanged."""
        now = self.sim.now if self.sim is not None else 0.0
        outcomes = datapath.process_batch(packets, now)
        results: list[Packet | None] = []
        for packet, outcome in zip(packets, outcomes):
            if outcome.action != ACTION_FORWARD:
                results.append(None)
            else:
                packet.metadata["chain_delay"] = (
                    outcome.added_delay + detour_delay
                )
                results.append(packet)
        return results

    def _detour_delay(self, embedding: EmbeddingResult) -> float:
        """One-way extra latency of the waypointed path vs direct."""
        direct = self.topo.path_latency(self.topo.shortest_path(
            embedding.device_node, embedding.gateway_node
        ))
        via = self.topo.path_latency(list(embedding.plan.path))
        return max(0.0, via - direct)

    def _next_hop_toward_gateway(self) -> str:
        path = self.topo.shortest_path(self.ingress_switch, self.gateway_node)
        return path[1] if len(path) > 1 else self.gateway_node

    # -- queries and teardown ----------------------------------------------

    def deployment(self, deployment_id: str) -> Deployment:
        try:
            return self.deployments[deployment_id]
        except KeyError:
            raise ReproError(f"unknown deployment {deployment_id!r}") from None

    def deployments_for(self, user: str) -> list[Deployment]:
        return [d for d in self.deployments.values() if d.user == user]

    @property
    def active_count(self) -> int:
        return sum(
            1 for d in self.deployments.values()
            if d.state is DeploymentState.ACTIVE
        )

    def teardown(self, deployment_id: str) -> None:
        """Remove a PVN: rules, containers, and address block."""
        deployment = self.deployment(deployment_id)
        if deployment.state is DeploymentState.TORN_DOWN:
            return
        if self.controller is not None:
            self.controller.remove_pvn(deployment_id)
        for host in self.hosts.values():
            host.terminate_owner(deployment.user)
        for container in deployment.containers.values():
            container.stop()
        if self.optimizer is not None:
            # Shared containers are owned by the pool, not the user, so
            # terminate_owner left them alone; only drop the membership
            # (the autoscaler retires instances that go cold).
            self.optimizer.release(deployment_id)
        deployment.state = DeploymentState.TORN_DOWN
