"""The robustness supervisor: detect -> repair -> degrade.

A :class:`RobustnessSupervisor` runs periodic health checks on the
simulator clock over every deployment a manager holds.  The state
machine per deployment::

    ACTIVE --crash detected--> repairing --success--> ACTIVE
       repairing --attempts exhausted--> DEGRADED (VPN fallback)

Every detection, repair, and degradation is appended to the
supervisor's event log and — when a device's evidence ledger is
attached — recorded as ``fault:*`` evidence, so the §3.1 audit trail
accounts for the full fault history, not just policy violations.
"""

from __future__ import annotations

import dataclasses

from repro.core.deployment.lifecycle import (
    degrade_to_tunnel,
    health_check,
    repair_deployment,
)
from repro.core.deployment.manager import DeploymentManager, DeploymentState
from repro.core.tunneling.vpn import FullTunnel
from repro.errors import ConfigurationError
from repro.netsim.simulator import Simulator

if False:  # pragma: no cover - typing only
    from repro.core.auditor.violations import EvidenceLedger


@dataclasses.dataclass(frozen=True)
class RecoveryPolicy:
    """When to check, how often to retry, where to fall back."""

    check_interval: float = 0.25
    max_repair_attempts: int = 3       # per continuous outage
    fallback_endpoint: str = "cloud"

    def __post_init__(self) -> None:
        if self.check_interval <= 0:
            raise ConfigurationError("check_interval must be positive")
        if self.max_repair_attempts < 1:
            raise ConfigurationError("max_repair_attempts must be >= 1")


@dataclasses.dataclass(frozen=True)
class RecoveryEvent:
    """One supervisor action."""

    time: float
    deployment_id: str
    kind: str       # detected | repaired | repair_failed | degraded
    detail: str


class RobustnessSupervisor:
    """Periodic health checks with a bounded repair budget."""

    def __init__(
        self,
        manager: DeploymentManager,
        sim: Simulator,
        policy: RecoveryPolicy | None = None,
        ledger: "EvidenceLedger | None" = None,
    ) -> None:
        self.manager = manager
        self.sim = sim
        self.policy = policy or RecoveryPolicy()
        self.ledger = ledger
        self.events: list[RecoveryEvent] = []
        self.tunnels: dict[str, FullTunnel] = {}   # deployment -> fallback
        self._attempts: dict[str, int] = {}        # per continuous outage
        self._running = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Begin periodic checks (idempotent)."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(self.policy.check_interval, self._tick)

    def stop(self) -> None:
        self._running = False

    # -- the check loop ---------------------------------------------------

    def _tick(self) -> None:
        if not self._running:
            return
        self._replay_migrations()
        for deployment_id in sorted(self.manager.deployments):
            deployment = self.manager.deployments[deployment_id]
            if deployment.state is not DeploymentState.ACTIVE:
                continue
            report = health_check(self.manager, deployment_id)
            if report.healthy:
                self._attempts.pop(deployment_id, None)
                continue
            self._handle_outage(deployment_id, report)
        self.sim.schedule(self.policy.check_interval, self._tick)

    def _replay_migrations(self) -> None:
        """Resolve migrations stranded mid-transaction.

        The migration coordinator's WAL journal makes the outcome
        deterministic: a transaction whose COMMIT intent was journaled
        before the crash rolls *forward* to the target deployment; any
        other open transaction rolls *back* to the intact source.  Each
        resolution is emitted (and ledgered) like any other recovery
        action.
        """
        coordinator = self.manager.migration_coordinator
        if coordinator is None:
            return
        for txn_id, action, detail in coordinator.recover(self.sim.now):
            txn = coordinator.transactions.get(txn_id)
            deployment_id = (
                txn.source.deployment_id if txn is not None else txn_id
            )
            self._emit(deployment_id, f"migration_{action}",
                       f"{txn_id}: {detail}")

    def _handle_outage(self, deployment_id: str, report) -> None:
        now = self.sim.now
        self._emit(deployment_id, "detected",
                   f"crashed={','.join(report.crashed_services) or '-'} "
                   f"dead_hosts={','.join(report.dead_hosts) or '-'}")
        attempts = self._attempts.get(deployment_id, 0)
        result = repair_deployment(self.manager, deployment_id, now)
        if result.repaired:
            self._attempts.pop(deployment_id, None)
            self._emit(
                deployment_id, "repaired",
                f"restarted={','.join(result.restarted) or '-'} "
                f"moved={','.join(result.moved) or '-'}",
            )
            return
        attempts += 1
        self._attempts[deployment_id] = attempts
        self._emit(
            deployment_id, "repair_failed",
            f"attempt {attempts}/{self.policy.max_repair_attempts}: "
            f"{result.reason}",
        )
        if attempts >= self.policy.max_repair_attempts:
            tunnel = degrade_to_tunnel(
                self.manager, deployment_id,
                self.policy.fallback_endpoint, now,
            )
            self.tunnels[deployment_id] = tunnel
            self._attempts.pop(deployment_id, None)
            self._emit(
                deployment_id, "degraded",
                f"fell back to VPN tunnel via "
                f"{self.policy.fallback_endpoint} after {attempts} "
                "failed repairs",
            )
            # Snapshot the datapath's pipeline counters at the moment
            # of degradation (the setter just flushed its compiled
            # pipelines), so chaos experiments can see the compiled
            # fast path being torn down, not just the recovery event.
            deployment = self.manager.deployments.get(deployment_id)
            if deployment is not None:
                deployment.datapath.publish_counters(now)

    def _emit(self, deployment_id: str, kind: str, detail: str) -> None:
        event = RecoveryEvent(
            time=self.sim.now, deployment_id=deployment_id,
            kind=kind, detail=detail,
        )
        self.events.append(event)
        if self.ledger is not None:
            self.ledger.record_fault(
                event.time, self.manager.provider, deployment_id,
                kind=kind, detail=detail,
            )

    # -- accounting -------------------------------------------------------

    def events_for(self, deployment_id: str) -> list[RecoveryEvent]:
        return [e for e in self.events if e.deployment_id == deployment_id]

    def resolution_of(self, deployment_id: str) -> str:
        """'repaired', 'degraded', or 'unresolved' — the *final* fate
        of the deployment's most recent outage."""
        for event in reversed(self.events_for(deployment_id)):
            if event.kind in ("repaired", "degraded"):
                return event.kind
        return "unresolved"

    def unresolved(self) -> list[str]:
        """Deployments currently unhealthy with no repair/degradation
        recorded after the outage — the 'silent hang' the chaos suite
        asserts never happens."""
        hanging = []
        for deployment_id in sorted(self.manager.deployments):
            deployment = self.manager.deployments[deployment_id]
            if deployment.state is DeploymentState.ACTIVE:
                if (deployment.crashed_services()
                        and self.resolution_of(deployment_id) != "repaired"):
                    hanging.append(deployment_id)
        return hanging
