"""Stateful PVN migration: make-before-break handoff that survives
crashes, partial failures, and concurrent old/new deployments.

The paper promises "the illusion of a personal home network wherever
the device roams" (§1).  Delivering that illusion for *stateful*
middleboxes (prefetcher caches, split-TCP connections, detector
counters) needs more than re-embedding the chain — it needs a
transactional handoff.  This module provides it, in four pieces:

* **Checkpoint/restore** — each source container's middlebox state is
  snapshotted (:meth:`repro.nfv.container.Container.checkpoint`),
  size-accounted with a canonical encoding, and shipped to freshly
  instantiated target containers, with transfer time charged from
  checkpoint bytes over the migration link.

* **A two-phase make-before-break transaction** —

  - PREPARE: embed the chain at the new attachment point and launch
    target containers there (paying full instantiation latency) while
    the source keeps serving;
  - TRANSFER: freeze the source chain, bridge live traffic through the
    tunneling fallback (time-to-protection never drops to zero), and
    ship checkpoints — lost transfers are retried up to a budget;
  - COMMIT: atomic cutover — restore state, advance the fencing
    epoch, swap SDN rules, transfer the funding lease; or
  - ABORT: full rollback to the source deployment — target containers
    are terminated, the bridge is lifted, no partial state survives.

* **Epoch fencing** — every deployment in a migration lineage carries
  a monotonically increasing epoch token checked on the data path
  (:meth:`repro.core.deployment.manager.PvnDataPath.process`).  A
  stale source deployment that missed the cutover *rejects* packets
  instead of split-brain double-processing them, and each rejection is
  recorded as auditor evidence via
  :meth:`repro.core.auditor.violations.EvidenceLedger.record_fault`.

* **A migration journal** — a WAL: every phase writes an intent record
  before mutating the world.  A crash mid-migration (injected via
  :mod:`repro.faults`) leaves an open transaction that
  :meth:`MigrationCoordinator.recover` — called by the
  :class:`~repro.core.deployment.recovery.RobustnessSupervisor` on its
  check loop — resolves deterministically: roll *forward* once the
  COMMIT intent is journaled, roll *back* otherwise.
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import itertools
from typing import TYPE_CHECKING

from repro.core.auditor.path_proof import make_keyring
from repro.core.deployment.embedding import embed_pvn
from repro.core.deployment.manager import (
    Deployment,
    DeploymentManager,
    DeploymentState,
    PvnDataPath,
)
from repro.core.pvnc.compiler import build_middleboxes
from repro.errors import DeploymentError, MigrationError, ReproError
from repro.nfv.container import Container, ContainerCheckpoint, ContainerState
from repro.nfv.sandbox import Capability, Sandbox
from repro.obs import runtime as obs_runtime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.auditor.violations import EvidenceLedger


# -- epoch fencing ----------------------------------------------------------


class EpochRegistry:
    """Monotone epoch tokens per migration lineage (split-brain fence).

    The registry is the single source of truth for "which deployment
    generation currently owns this user's traffic".  Data paths check
    their own token against :meth:`current` on every packet; a stale
    holder rejects the packet and the rejection lands in the evidence
    ledger as a ``fault:stale_epoch`` record.
    """

    def __init__(self, provider: str = "",
                 ledger: "EvidenceLedger | None" = None) -> None:
        self.provider = provider
        self.ledger = ledger
        self._current: dict[str, int] = {}
        self.advances: list[tuple[str, int]] = []   # (lineage, new epoch)
        self.rejections: list[tuple[float, str, str, int]] = []

    def register(self, lineage: str, epoch: int = 0) -> None:
        """Adopt a lineage at the given epoch (idempotent, never lowers)."""
        self._current[lineage] = max(self._current.get(lineage, 0), epoch)

    def current(self, lineage: str) -> int:
        return self._current.get(lineage, 0)

    def advance(self, lineage: str) -> int:
        """Mint the next (strictly greater) epoch for ``lineage``."""
        epoch = self._current.get(lineage, 0) + 1
        self._current[lineage] = epoch
        self.advances.append((lineage, epoch))
        return epoch

    def is_current(self, lineage: str, epoch: int) -> bool:
        if not lineage:
            return True
        return epoch >= self._current.get(lineage, 0)

    def reject(self, deployment_id: str, lineage: str, epoch: int,
               now: float) -> None:
        """Record one stale-epoch packet rejection as audit evidence."""
        self.rejections.append((now, deployment_id, lineage, epoch))
        if self.ledger is not None:
            self.ledger.record_fault(
                now, self.provider, deployment_id,
                kind="stale_epoch",
                detail=(f"rejected packet at epoch {epoch}; lineage "
                        f"{lineage} is at {self.current(lineage)}"),
            )

    def adopt_datapath(self, deployment: Deployment) -> None:
        """Wire a deployment's data path into the fence."""
        lineage = deployment.lineage_id
        deployment.lineage = lineage
        self.register(lineage, deployment.epoch)
        datapath = deployment.datapath
        datapath.fencing = self
        datapath.lineage = lineage
        datapath.epoch = deployment.epoch


# -- the journal ------------------------------------------------------------

REC_BEGIN = "begin"
REC_PREPARE_DONE = "prepare_done"
REC_TRANSFER_LOST = "transfer_lost"
REC_TRANSFER_DONE = "transfer_done"
REC_COMMIT_INTENT = "commit_intent"
REC_INTERRUPTED = "interrupted"
REC_COMMITTED = "committed"
REC_ABORTED = "aborted"

#: Records that close a transaction.
_TERMINAL = frozenset({REC_COMMITTED, REC_ABORTED})


@dataclasses.dataclass(frozen=True)
class JournalEntry:
    """One WAL record."""

    time: float
    txn_id: str
    record: str
    detail: str = ""

    def render(self) -> str:
        return (f"{self.time:.6f} {self.txn_id} {self.record}"
                f"{' :: ' + self.detail if self.detail else ''}")


class MigrationJournal:
    """Append-only write-ahead log of migration transactions."""

    def __init__(self) -> None:
        self.entries: list[JournalEntry] = []

    def append(self, time: float, txn_id: str, record: str,
               detail: str = "") -> JournalEntry:
        entry = JournalEntry(time=time, txn_id=txn_id, record=record,
                             detail=detail)
        self.entries.append(entry)
        return entry

    def records_for(self, txn_id: str) -> list[JournalEntry]:
        return [e for e in self.entries if e.txn_id == txn_id]

    def has(self, txn_id: str, record: str) -> bool:
        return any(e.record == record for e in self.records_for(txn_id))

    def open_transactions(self) -> list[str]:
        """Transactions begun but neither committed nor aborted, in
        first-begin order — what crash recovery must resolve."""
        seen: list[str] = []
        closed: set[str] = set()
        for entry in self.entries:
            if entry.record in _TERMINAL:
                closed.add(entry.txn_id)
            elif entry.txn_id not in seen:
                seen.append(entry.txn_id)
        return [txn_id for txn_id in seen if txn_id not in closed]

    def render(self) -> str:
        """Stable one-line-per-record rendering (trace digests)."""
        return "\n".join(entry.render() for entry in self.entries)


# -- the transaction --------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class MigrationSpec:
    """Cost model and budgets for one provider's migrations."""

    transfer_bandwidth_bps: float = 1e9   # checkpoint shipping link
    bridge_endpoint: str = "cloud"        # tunnel used mid-TRANSFER
    max_transfer_attempts: int = 3        # retries for lost checkpoints
    commit_overhead: float = 0.0          # extra control latency at COMMIT

    def __post_init__(self) -> None:
        if self.transfer_bandwidth_bps <= 0:
            raise MigrationError("transfer bandwidth must be positive")
        if self.max_transfer_attempts < 1:
            raise MigrationError("max_transfer_attempts must be >= 1")


@dataclasses.dataclass(frozen=True)
class MigrationResult:
    """Outcome of one migration transaction.

    ``deployment_id`` is the *surviving* deployment: the freshly
    committed target after COMMIT, the intact source after ABORT.
    """

    deployment_id: str
    old_stretch: float
    new_stretch: float
    moved_services: tuple[str, ...]
    source_deployment_id: str = ""
    committed: bool = True
    pending: bool = False          # COMMIT intent journaled, cutover open
    reason: str = ""
    epoch: int = 0
    state_bytes: int = 0           # checkpoint bytes shipped
    restored_services: tuple[str, ...] = ()
    replica_services: tuple[str, ...] = ()   # restored from replica, not live
    handoff_time: float = 0.0      # prepare + transfer + commit on the clock
    transfer_attempts: int = 0


class MigrationPhase(enum.Enum):
    BEGUN = "begun"
    PREPARED = "prepared"
    TRANSFERRED = "transferred"
    COMMITTED = "committed"
    ABORTED = "aborted"


class MigrationTransaction:
    """One two-phase make-before-break handoff.

    Phases are explicit methods so fault injection (and the chaos
    suite) can crash the world between any two of them; the
    coordinator's :meth:`MigrationCoordinator.recover` replays the
    journal to a deterministic outcome afterwards.
    """

    def __init__(
        self,
        txn_id: str,
        coordinator: "MigrationCoordinator",
        source: Deployment,
        new_device_node: str,
        started_at: float,
    ) -> None:
        self.txn_id = txn_id
        self.coordinator = coordinator
        self.manager = coordinator.manager
        self.spec = coordinator.spec
        self.journal = coordinator.journal
        self.fencing = coordinator.fencing
        self.source = source
        self.new_device_node = new_device_node
        self.started_at = started_at
        self.clock = started_at     # logical time inside the transaction
        self.phase = MigrationPhase.BEGUN
        self.reason = ""
        self.transfer_attempts = 0
        self.state_bytes = 0
        # PREPARE artifacts (held by the txn only until COMMIT — an
        # aborted migration leaves no trace in the manager's records).
        self.target_id = ""
        self.target_embedding = None
        self.target_containers: dict[str, Container] = {}
        self.target_hosts: dict[str, str] = {}
        self.target_datapath: PvnDataPath | None = None
        self.checkpoints: dict[str, ContainerCheckpoint] = {}
        # Stale-but-consistent snapshots from the reconciler's state
        # replicator; they stand in for services whose live containers
        # died with their host (crash evacuation).  A live checkpoint
        # always wins over a replica.
        self.replica_checkpoints: dict[str, ContainerCheckpoint] = {}
        self.replica_services: tuple[str, ...] = ()
        self.target_deployment: Deployment | None = None
        self.journal.append(started_at, txn_id, REC_BEGIN,
                            f"{source.deployment_id} -> {new_device_node}")

    # -- phase 1: PREPARE --------------------------------------------------

    def prepare(self, now: float | None = None) -> bool:
        """Instantiate the target chain at the new attachment point.

        The source keeps serving throughout (make *before* break).  On
        any failure the transaction is abortable with zero cleanup debt
        beyond the target containers launched so far.
        """
        if self.phase is not MigrationPhase.BEGUN:
            raise MigrationError(f"cannot prepare from {self.phase.value}")
        self.clock = max(self.clock, now if now is not None else self.clock)
        source = self.source
        if source.state is not DeploymentState.ACTIVE:
            self.reason = f"source deployment is {source.state.value}"
            return False
        if source.env is None:
            self.reason = "source deployment has no user environment"
            return False

        live_hosts = {
            name: host for name, host in self.manager.hosts.items()
            if host.alive
        }
        try:
            self.target_embedding = embed_pvn(
                source.compiled, self.manager.topo, live_hosts,
                device_node=self.new_device_node,
                gateway_node=source.embedding.gateway_node,
                optimizer=self.manager.optimizer,
            )
        except ReproError as exc:
            self.reason = f"target embedding failed: {exc}"
            return False

        middleboxes = build_middleboxes(
            source.compiled, source.env, self.manager.store_factories
        )
        # Shared instances, like physical boxes, are provider-operated:
        # the target launches no per-user container for them.
        reused = {
            d.service for d in self.target_embedding.plan.decisions
            if d.reused_physical or d.shared
        }
        host_by_service = {
            d.service: d.node for d in self.target_embedding.plan.decisions
        }
        self.target_id = self.manager.allocate_deployment_id(source.user)
        for service, middlebox in middleboxes.items():
            if service in reused:
                continue
            container = Container(middlebox, spec=self.manager.container_spec,
                                  owner=source.user)
            node = host_by_service.get(service, "")
            host = live_hosts.get(node)
            try:
                if host is not None:
                    host.launch(container, sim=self.manager.sim,
                                now=self.clock)
                else:
                    container.start_immediately(self.clock)
            except ReproError as exc:
                self.reason = f"target launch of {service} failed: {exc}"
                return False
            self.target_containers[service] = container
            self.target_hosts[service] = node

        # Injected migration-window fault: the target dies mid-PREPARE.
        if self.coordinator.consume_target_crash():
            for container in self.target_containers.values():
                container.crash(self.clock)
            self.reason = "target containers crashed during PREPARE"
            return False

        if self.target_containers:
            self.clock += self.manager.container_spec.instantiation_time

        grants = dict(source.compiled.capability_grants)
        sandboxes = {
            service: Sandbox(
                middlebox, owner=source.user,
                capabilities=grants.get(service, Capability.OBSERVE),
            )
            for service, middlebox in middleboxes.items()
        }
        keyring = make_keyring(
            self.target_id, list(source.compiled.deployment_services)
        )
        self.target_datapath = PvnDataPath(
            deployment_id=self.target_id,
            compiled=source.compiled,
            middleboxes=middleboxes,
            sandboxes=sandboxes,
            keyring=keyring,
            container_spec=self.manager.container_spec,
            tracer=self.manager.tracer,
            skip_services=source.datapath.skip_services,
            trusted_execution=source.datapath.trusted_execution,
            containers=self.target_containers,
        )
        # Make before break at the pool too: the target joins its
        # shared instances while the source keeps its memberships; the
        # loser's are released at COMMIT/ABORT.
        if self.manager.optimizer is not None:
            self.manager.optimizer.commit_plan(
                self.target_id, self.target_embedding.plan,
                sim=self.manager.sim, now=self.clock,
            )

        self.phase = MigrationPhase.PREPARED
        self.journal.append(
            self.clock, self.txn_id, REC_PREPARE_DONE,
            f"target {self.target_id} on "
            + ",".join(f"{s}@{n}" for s, n in sorted(self.target_hosts.items())),
        )
        return True

    # -- phase 2: TRANSFER -------------------------------------------------

    def transfer(self, now: float | None = None) -> bool:
        """Checkpoint the source chain and ship state to the target.

        The source data path bridges through the tunneling fallback for
        the duration — the user's policies stay enforced end-to-end
        while the chain state is in flight.  Lost transfers (injected
        via :mod:`repro.faults`) are retried up to the spec's budget.
        """
        if self.phase is not MigrationPhase.PREPARED:
            raise MigrationError(f"cannot transfer from {self.phase.value}")
        if now is not None:
            self.clock = max(self.clock, now)
        self.source.datapath.bridging_to = self.spec.bridge_endpoint

        source_hosts = {
            d.service: d.node for d in self.source.embedding.plan.decisions
        }
        for service, container in sorted(self.source.containers.items()):
            if container.state not in (ContainerState.RUNNING,
                                       ContainerState.INSTANTIATING):
                continue    # crashed state is unrecoverable; ship the rest
            self.checkpoints[service] = container.checkpoint(self.clock)
        # Crash evacuation: services whose containers died with their
        # host restore from the replicator's last snapshot instead —
        # stale-but-consistent beats lost.
        replicated: list[str] = []
        for service, checkpoint in sorted(self.replica_checkpoints.items()):
            if service in self.checkpoints:
                continue
            if service not in self.target_containers:
                continue
            self.checkpoints[service] = checkpoint
            replicated.append(service)
        self.replica_services = tuple(replicated)
        self.state_bytes = sum(
            c.size_bytes for c in self.checkpoints.values()
        )

        # Per-service shipping time: source-host -> target-host path
        # latency plus serialization over the migration link; services
        # ship in parallel, so one attempt costs the slowest transfer.
        attempt_time = 0.0
        for service, checkpoint in self.checkpoints.items():
            src_node = source_hosts.get(service, "")
            dst_node = self.target_hosts.get(service, src_node)
            latency = 0.0
            if src_node and dst_node and src_node != dst_node:
                try:
                    latency = self.manager.topo.path_latency(
                        self.manager.topo.shortest_path(src_node, dst_node)
                    )
                except ReproError:
                    latency = 0.0
            attempt_time = max(
                attempt_time,
                latency
                + checkpoint.size_bytes * 8.0 / self.spec.transfer_bandwidth_bps,
            )

        while True:
            self.transfer_attempts += 1
            self.clock += attempt_time
            if self.coordinator.consume_transfer_loss():
                self.journal.append(
                    self.clock, self.txn_id, REC_TRANSFER_LOST,
                    f"attempt {self.transfer_attempts}/"
                    f"{self.spec.max_transfer_attempts}",
                )
                if self.transfer_attempts >= self.spec.max_transfer_attempts:
                    self.reason = (
                        "checkpoint transfer lost "
                        f"{self.transfer_attempts} times; budget exhausted"
                    )
                    return False
                continue
            break

        self.phase = MigrationPhase.TRANSFERRED
        self.journal.append(
            self.clock, self.txn_id, REC_TRANSFER_DONE,
            f"{len(self.checkpoints)} checkpoints, {self.state_bytes} bytes, "
            f"{self.transfer_attempts} attempt(s)",
        )
        return True

    # -- phase 3: COMMIT or ABORT ------------------------------------------

    def commit(self, now: float | None = None) -> bool:
        """Atomic cutover to the target deployment.

        The COMMIT intent is journaled *before* any mutation — after
        that record exists the transaction's fate is decided, and crash
        recovery rolls it forward rather than back.  Raises
        :class:`~repro.errors.MigrationError` when the provider goes
        silent mid-commit (injected fault); the open intent is then
        resolved by :meth:`MigrationCoordinator.recover`.
        """
        if self.phase is not MigrationPhase.TRANSFERRED:
            raise MigrationError(f"cannot commit from {self.phase.value}")
        if now is not None:
            self.clock = max(self.clock, now)
        self.clock += self.spec.commit_overhead
        self.journal.append(self.clock, self.txn_id, REC_COMMIT_INTENT,
                            f"cutover {self.source.deployment_id} -> "
                            f"{self.target_id}")
        silence = self.coordinator.consume_commit_silence()
        if silence:
            self.journal.append(self.clock, self.txn_id, REC_INTERRUPTED,
                                f"provider silent during COMMIT ({silence})")
            raise MigrationError(
                f"provider went silent during COMMIT of {self.txn_id}"
            )
        self._finish_commit()
        return True

    def _finish_commit(self) -> None:
        """Apply the cutover (idempotent; also the roll-forward path)."""
        if self.phase is MigrationPhase.COMMITTED:
            return
        source, manager = self.source, self.manager
        lineage = source.lineage_id

        # 1. Restore shipped state into the target chain.
        for service, checkpoint in self.checkpoints.items():
            container = self.target_containers.get(service)
            if container is not None:
                container.restore(checkpoint)

        # 2. Advance the fence: the source epoch is now stale.
        epoch = self.fencing.advance(lineage)

        # 3. Register the target deployment under the same lineage.
        target = Deployment(
            deployment_id=self.target_id,
            user=source.user,
            compiled=source.compiled,
            embedding=self.target_embedding,
            containers=self.target_containers,
            datapath=self.target_datapath,
            subnet=source.subnet,
            price_paid=source.price_paid,
            created_at=self.started_at,
            ready_at=self.clock,
            attestation=None,
            env=source.env,
            epoch=epoch,
            lineage=lineage,
        )
        if manager.platform is not None:
            target.attestation = manager.platform.attest(
                self.target_id,
                source.compiled.pvnc.digest(),
                tuple(s for s in source.compiled.deployment_services
                      if s not in source.datapath.skip_services),
                now=self.clock,
            )
        manager.deployments[self.target_id] = target
        self.fencing.adopt_datapath(target)
        self.target_deployment = target

        # 4. Swap SDN rules: bind the target chain, drop the source's.
        if manager.controller is not None:
            switch = manager.controller.switch(manager.ingress_switch)
            detour = manager._detour_delay(self.target_embedding)
            datapath = self.target_datapath
            switch.bind_chain(
                self.target_id,
                lambda packet, chain_id: manager._chain_executor(
                    datapath, packet, detour
                ),
            )
            from repro.sdn.actions import ToChain

            manager.controller.install(
                manager.ingress_switch,
                source.compiled.pvn_match,
                (ToChain(self.target_id,
                         resume_neighbor=manager._next_hop_toward_gateway()),),
                priority=200,
                pvn_id=self.target_id,
            )
            manager.controller.remove_pvn(source.deployment_id)
            # Epoch-fence both cache tiers: rule install/removal
            # already flushed them, but advancing the fence token makes
            # the cutover invalidation explicit and unconditional — a
            # cached pipeline compiled against the superseded source
            # can never serve post-cutover traffic from the microflow
            # or the megaflow tier.
            switch.fence((lineage, epoch), now=self.clock)

        # 5. Addresses and funding follow the surviving deployment.
        if manager.dhcp is not None:
            manager.dhcp.register_pvn_subnet(self.target_id, source.subnet)
        if self.coordinator.leases is not None:
            self.coordinator.leases.transfer(source.deployment_id,
                                             self.target_id)

        # 6. Fence and drain the source: containers stop, the stale
        # data path survives only to *reject* traffic (split-brain
        # protection), and the record is kept for the audit trail.
        source_hosts = {
            d.service: d.node for d in source.embedding.plan.decisions
        }
        for service, container in source.containers.items():
            host = manager.hosts.get(source_hosts.get(service, ""))
            if host is not None:
                host.terminate(container.container_id)
            elif container.state is not ContainerState.STOPPED:
                container.stop()
        source.datapath.bridging_to = ""
        source.state = DeploymentState.SUPERSEDED
        if manager.optimizer is not None:
            # The superseded source's shared-instance memberships die
            # with it; the target's (joined at PREPARE) survive.
            manager.optimizer.release(source.deployment_id, now=self.clock)

        self.phase = MigrationPhase.COMMITTED
        self.journal.append(
            self.clock, self.txn_id, REC_COMMITTED,
            f"{self.target_id} live at epoch {epoch}; "
            f"{source.deployment_id} fenced",
        )
        if manager.tracer is not None:
            manager.tracer.emit(
                self.clock, "migration", manager.provider, event="committed",
                txn_id=self.txn_id, source=source.deployment_id,
                target=self.target_id, epoch=epoch,
            )

    def abort(self, now: float | None = None, reason: str = "") -> None:
        """Full rollback: the source deployment survives unchanged."""
        if self.phase in (MigrationPhase.COMMITTED, MigrationPhase.ABORTED):
            raise MigrationError(f"cannot abort from {self.phase.value}")
        if now is not None:
            self.clock = max(self.clock, now)
        self.reason = reason or self.reason or "aborted"
        for service, container in self.target_containers.items():
            host = self.manager.hosts.get(self.target_hosts.get(service, ""))
            if host is not None:
                host.terminate(container.container_id)
            elif container.state is not ContainerState.STOPPED:
                container.stop()
        if self.manager.optimizer is not None and self.target_id:
            # Roll back the PREPARE-time joins; the source keeps its
            # memberships (release is idempotent if PREPARE never ran).
            self.manager.optimizer.release(self.target_id, now=self.clock)
        self.source.datapath.bridging_to = ""
        self.phase = MigrationPhase.ABORTED
        self.journal.append(self.clock, self.txn_id, REC_ABORTED, self.reason)
        if self.manager.tracer is not None:
            self.manager.tracer.emit(
                self.clock, "migration", self.manager.provider,
                event="aborted", txn_id=self.txn_id,
                source=self.source.deployment_id, reason=self.reason,
            )

    # -- outcome -----------------------------------------------------------

    def result(self) -> MigrationResult:
        committed = self.phase is MigrationPhase.COMMITTED
        pending = (not committed
                   and self.phase is not MigrationPhase.ABORTED
                   and self.journal.has(self.txn_id, REC_COMMIT_INTENT))
        old_nodes = {
            d.service: d.node for d in self.source.embedding.plan.decisions
        }
        moved: tuple[str, ...] = ()
        new_stretch = self.source.embedding.stretch
        if self.target_embedding is not None:
            moved = tuple(
                d.service for d in self.target_embedding.plan.decisions
                if old_nodes.get(d.service) != d.node
            )
            new_stretch = self.target_embedding.stretch
        surviving = self.target_id if committed else self.source.deployment_id
        return MigrationResult(
            deployment_id=surviving,
            old_stretch=self.source.embedding.stretch,
            new_stretch=new_stretch if committed else
            self.source.embedding.stretch,
            moved_services=moved if committed else (),
            source_deployment_id=self.source.deployment_id,
            committed=committed,
            pending=pending,
            reason=self.reason if not committed else "committed",
            epoch=(self.target_deployment.epoch
                   if self.target_deployment is not None else
                   self.source.epoch),
            state_bytes=self.state_bytes,
            restored_services=tuple(sorted(self.checkpoints))
            if committed else (),
            replica_services=self.replica_services if committed else (),
            handoff_time=self.clock - self.started_at,
            transfer_attempts=self.transfer_attempts,
        )


# -- the coordinator --------------------------------------------------------


class MigrationCoordinator:
    """Owns the journal, the epoch fence, and in-flight transactions
    for one provider's deployment manager."""

    def __init__(
        self,
        manager: DeploymentManager,
        spec: MigrationSpec | None = None,
        ledger: "EvidenceLedger | None" = None,
        leases=None,
    ) -> None:
        self.manager = manager
        self.spec = spec or MigrationSpec()
        self.leases = leases        # LeaseTable-like; funding follows commits
        self.journal = MigrationJournal()
        self.fencing = EpochRegistry(provider=manager.provider, ledger=ledger)
        self.transactions: dict[str, MigrationTransaction] = {}
        self._txn_counter = itertools.count(1)
        # Armed migration-window faults (set by repro.faults.injector);
        # consumed by the next transaction that reaches the window.
        self._target_crash_armed = 0
        self._transfer_loss_armed = 0
        self._commit_silence_armed = 0.0

    # -- fault arming (the injector's hooks) -------------------------------

    def arm_target_crash(self, count: int = 1) -> None:
        self._target_crash_armed += count

    def arm_transfer_loss(self, count: int = 1) -> None:
        self._transfer_loss_armed += count

    def arm_commit_silence(self, duration: float = 1.0) -> None:
        self._commit_silence_armed = max(self._commit_silence_armed, duration)

    def consume_target_crash(self) -> bool:
        if self._target_crash_armed > 0:
            self._target_crash_armed -= 1
            return True
        return False

    def consume_transfer_loss(self) -> bool:
        if self._transfer_loss_armed > 0:
            self._transfer_loss_armed -= 1
            return True
        return False

    def consume_commit_silence(self) -> float:
        duration, self._commit_silence_armed = self._commit_silence_armed, 0.0
        return duration

    # -- transactions ------------------------------------------------------

    def begin(self, deployment_id: str, new_device_node: str,
              now: float) -> MigrationTransaction:
        source = self.manager.deployment(deployment_id)
        if source.state is not DeploymentState.ACTIVE:
            raise DeploymentError(
                f"deployment {deployment_id} is {source.state.value}, "
                "not migratable"
            )
        self.fencing.adopt_datapath(source)
        txn_id = f"{source.lineage_id}.m{next(self._txn_counter)}"
        txn = MigrationTransaction(txn_id, self, source, new_device_node, now)
        self.transactions[txn_id] = txn
        return txn

    def run(self, txn: MigrationTransaction) -> MigrationResult:
        """Drive one transaction to COMMIT or ABORT.

        A commit interrupted by provider silence returns a *pending*
        result — the COMMIT intent is journaled, and the next
        :meth:`recover` pass rolls it forward.

        With observability enabled each phase runs in its own span
        (``migration.prepare``/``transfer``/``commit``) timed on the
        transaction's logical clock, and the outcome lands in
        ``repro_migrations_total{provider=...,outcome=...}``.
        """
        obs = obs_runtime.current()
        clock = lambda: txn.clock  # noqa: E731

        def phase_span(name):
            if obs is None:
                return contextlib.nullcontext()
            return obs.span(name, clock, txn_id=txn.txn_id)

        try:
            with phase_span("migration.prepare"):
                prepared = txn.prepare()
            if not prepared:
                txn.abort()
            else:
                with phase_span("migration.transfer"):
                    transferred = txn.transfer()
                if not transferred:
                    txn.abort()
                else:
                    with phase_span("migration.commit"):
                        txn.commit()
        except MigrationError:
            pass    # pending: recover() rolls the intent forward
        self._charge_sim(txn)
        result = txn.result()
        if obs is not None:
            outcome = ("committed" if result.committed
                       else "pending" if result.pending else "aborted")
            obs.metrics.counter(
                "repro_migrations",
                "Migration transaction outcomes",
                ("provider", "outcome"),
            ).labels(provider=self.manager.provider, outcome=outcome).inc()
        return result

    def migrate(self, deployment_id: str, new_device_node: str,
                now: float) -> MigrationResult:
        """begin + run in one call (the :func:`migrate_device` path)."""
        return self.run(self.begin(deployment_id, new_device_node, now))

    def evacuate(
        self,
        deployment_id: str,
        now: float,
        replicas: dict[str, ContainerCheckpoint] | None = None,
        device_node: str | None = None,
    ) -> MigrationResult:
        """Move a deployment off a crashed host, same journal, same
        fencing, same make-before-break discipline as a roaming
        migration — the device just isn't going anywhere.

        ``replicas`` (service -> checkpoint) substitute for containers
        that died with the host; services covered by neither a live
        container nor a replica restart from factory state inside the
        fresh target chain, which still beats losing the policy.
        """
        source = self.manager.deployment(deployment_id)
        node = device_node or source.embedding.device_node
        txn = self.begin(deployment_id, node, now)
        txn.replica_checkpoints = dict(replicas or {})
        return self.run(txn)

    def _charge_sim(self, txn: MigrationTransaction) -> None:
        """Charge the handoff wall-time on the simulator clock.

        Instantiation is already event-scheduled by ``host.launch``;
        this advances the clock through the transfer/commit window so
        downstream events (supervisor ticks, probes) observe the cost.
        When called from inside an event (e.g. journal replay on a
        supervisor tick) the clock cannot be driven re-entrantly; a
        marker event at the handoff's end time charges it instead.
        """
        sim = self.manager.sim
        if sim is None or txn.clock <= sim.now:
            return
        if getattr(sim, "_running", False):
            sim.schedule_at(txn.clock, lambda: None)
        else:
            sim.run(until=txn.clock)

    # -- crash recovery ----------------------------------------------------

    def recover(self, now: float) -> list[tuple[str, str, str]]:
        """Replay the journal over open transactions.

        Deterministic WAL semantics: an open transaction whose COMMIT
        intent is journaled rolls *forward* (the cutover is completed
        exactly as it would have been); any other open transaction
        rolls *back* to the intact source deployment.  Returns
        ``(txn_id, action, detail)`` per resolved transaction.
        """
        resolved: list[tuple[str, str, str]] = []
        for txn_id in self.journal.open_transactions():
            txn = self.transactions.get(txn_id)
            if txn is None:
                continue    # journaled by a previous incarnation
            if txn.phase in (MigrationPhase.COMMITTED,
                             MigrationPhase.ABORTED):
                continue
            if self.journal.has(txn_id, REC_COMMIT_INTENT):
                txn.clock = max(txn.clock, now)
                txn._finish_commit()
                self._charge_sim(txn)
                resolved.append((txn_id, "rolled_forward",
                                 f"commit intent replayed for "
                                 f"{txn.target_id}"))
            else:
                txn.abort(now, reason="crash recovery: no commit intent")
                resolved.append((txn_id, "rolled_back", txn.reason))
        return resolved


def ensure_coordinator(
    manager: DeploymentManager,
    spec: MigrationSpec | None = None,
    ledger: "EvidenceLedger | None" = None,
    leases=None,
) -> MigrationCoordinator:
    """The manager's coordinator, created on first use.

    Later calls can late-bind a ledger or lease table onto an existing
    coordinator (a session wires the device ledger in after faults or
    robustness are enabled).
    """
    coordinator = manager.migration_coordinator
    if coordinator is None:
        coordinator = MigrationCoordinator(manager, spec=spec,
                                           ledger=ledger, leases=leases)
        manager.migration_coordinator = coordinator
    else:
        if ledger is not None and coordinator.fencing.ledger is None:
            coordinator.fencing.ledger = ledger
        if leases is not None and coordinator.leases is None:
            coordinator.leases = leases
    return coordinator
