"""PVN discovery & deployment protocol (§3.1) with negotiation (§3.3)."""

from repro.core.discovery.messages import (
    DeploymentAck,
    DeploymentNack,
    DeploymentRequest,
    DiscoveryMessage,
    Offer,
    STANDARD_DOCKER,
    STANDARD_OPENFLOW,
)
from repro.core.discovery.negotiation import (
    ALL_STRATEGIES,
    AcceptancePlan,
    NegotiationOutcome,
    STRATEGY_ACCEPT_FIRST,
    STRATEGY_BEST_OF_ZONE,
    STRATEGY_FREE_ONLY,
    STRATEGY_SUBSET_RETRY,
    build_request,
    negotiate,
    negotiate_over_time,
    negotiate_with_retry,
    plan_acceptance,
)
from repro.core.discovery.pricing import DEFAULT_PRICES, PricingPolicy, surge
from repro.core.discovery.retry import RetryPolicy, RetryTrace
from repro.core.discovery.protocol import (
    DiscoveryClient,
    DiscoveryService,
    check_ack,
)

__all__ = [
    "ALL_STRATEGIES",
    "AcceptancePlan",
    "DEFAULT_PRICES",
    "DeploymentAck",
    "DeploymentNack",
    "DeploymentRequest",
    "DiscoveryClient",
    "DiscoveryMessage",
    "DiscoveryService",
    "NegotiationOutcome",
    "Offer",
    "PricingPolicy",
    "RetryPolicy",
    "RetryTrace",
    "STANDARD_DOCKER",
    "STANDARD_OPENFLOW",
    "STRATEGY_ACCEPT_FIRST",
    "STRATEGY_BEST_OF_ZONE",
    "STRATEGY_FREE_ONLY",
    "STRATEGY_SUBSET_RETRY",
    "build_request",
    "check_ack",
    "negotiate",
    "negotiate_over_time",
    "negotiate_with_retry",
    "plan_acceptance",
    "surge",
]
