"""Provider-side discovery service and device-side discovery client.

The provider answers DMs with offers (§3.1): it intersects standards,
offers the subset of requested services it actually supports, quotes
prices from its :class:`~repro.core.discovery.pricing.PricingPolicy`,
and stamps an expiry.  The device client sends DMs (optionally flooding
several providers in the "discovery zone") and hands offers to the
negotiation strategy.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable

from repro.core.discovery.messages import (
    DeploymentAck,
    DeploymentNack,
    DeploymentRequest,
    DiscoveryMessage,
    Offer,
    STANDARD_DOCKER,
    STANDARD_OPENFLOW,
)
import numpy as np

from repro.core.discovery.pricing import PricingPolicy
from repro.core.discovery.retry import RetryPolicy, RetryTrace
from repro.core.pvnc.model import Pvnc, ResourceEstimate
from repro.errors import NegotiationError, ProtocolError
from repro.obs import runtime as obs_runtime


def _count_discovery(event: str, provider: str) -> None:
    """Bump the live discovery counter (no-op with observability off).

    Unlike the data plane's publish-time folding, discovery is a rare
    control-plane event, so counting at the site is free enough and
    keeps the metric live mid-negotiation.
    """
    obs = obs_runtime.current()
    if obs is None:
        return
    obs.metrics.counter(
        "repro_discovery_events",
        "Discovery protocol events per provider",
        ("provider", "event"),
    ).labels(provider=provider, event=event).inc()

DeployFn = Callable[[DeploymentRequest], DeploymentAck | DeploymentNack]


@dataclasses.dataclass
class DiscoveryService:
    """One provider's DM responder.

    Parameters
    ----------
    provider:
        Provider name, included in offers.
    supported_services:
        Services this network can host (empty = PVNs unsupported: DMs
        go unanswered, modelling the §3.3 unavailability case).
    pricing:
        The provider's price list.
    offer_lifetime:
        Seconds before an offer expires.
    deploy:
        Callback invoked with accepted deployment requests.
    """

    provider: str
    supported_services: tuple[str, ...]
    pricing: PricingPolicy
    deploy: DeployFn
    deployment_server: str = ""
    standards: tuple[str, ...] = (STANDARD_OPENFLOW, STANDARD_DOCKER)
    offer_lifetime: float = 30.0
    dms_received: int = 0
    offers_made: int = 0
    silent_until: float = 0.0     # fault injection: unresponsive until t
    drop_next_dms: int = 0        # fault injection: network eats N DMs
    dms_unanswered: int = 0
    #: Optional overload protection (:class:`repro.health.overload.
    #: AdmissionController`): when set, DMs above the shedding floor
    #: for their priority class are refused up front instead of
    #: consuming a negotiation slot.  None (the default) keeps the
    #: seed behaviour: every DM is served.
    admission: object | None = None
    dms_shed: int = 0

    def __post_init__(self) -> None:
        if not self.deployment_server:
            self.deployment_server = f"pvn.{self.provider}"
        self._live_offers: dict[int, Offer] = {}

    @property
    def supports_pvn(self) -> bool:
        return bool(self.supported_services)

    def silence_for(self, duration: float, now: float) -> None:
        """Make the provider unresponsive (requests time out) until
        ``now + duration``; extends but never shortens a silence."""
        self.silent_until = max(self.silent_until, now + duration)

    def responsive(self, now: float) -> bool:
        return now >= self.silent_until

    def handle_dm(self, dm: DiscoveryMessage, now: float) -> Offer | None:
        """Answer a discovery message, or None if PVNs are unsupported
        or no standard is shared.

        None is also what a *timeout* looks like to the device: an
        unresponsive provider (``silent_until``) or a DM the network
        dropped (``drop_next_dms``) simply never answers, and the
        client's :class:`RetryPolicy` decides what happens next.
        """
        self.dms_received += 1
        _count_discovery("dm_received", self.provider)
        if self.admission is not None and not self.admission.admit(
            now, getattr(dm, "priority", 2)
        ):
            # Shed, not dropped: the provider chose to refuse this DM
            # to protect in-flight work.  To the device it still looks
            # like a timeout (retry/backoff applies), but the provider
            # paid ~nothing for it.
            self.dms_shed += 1
            self.dms_unanswered += 1
            _count_discovery("dm_shed", self.provider)
            return None
        if self.drop_next_dms > 0:
            self.drop_next_dms -= 1
            self.dms_unanswered += 1
            _count_discovery("dm_unanswered", self.provider)
            return None
        if not self.responsive(now):
            self.dms_unanswered += 1
            _count_discovery("dm_unanswered", self.provider)
            return None
        if not self.supports_pvn:
            return None
        shared = tuple(s for s in dm.standards if s in self.standards)
        if not shared:
            return None
        offered = tuple(
            s for s in dm.requested_services if s in self.supported_services
        )
        offer = Offer(
            provider=self.provider,
            deployment_server=self.deployment_server,
            standards=shared,
            offered_services=offered,
            prices=self.pricing.quote(offered),
            expires_at=now + self.offer_lifetime,
            in_reply_to=dm.sequence,
        )
        self.offers_made += 1
        _count_discovery("offer_made", self.provider)
        self._live_offers[offer.offer_id] = offer
        return offer

    def handle_deployment_request(
        self, request: DeploymentRequest, now: float
    ) -> DeploymentAck | DeploymentNack:
        """Validate the acceptance against the live offer, then deploy."""
        offer = self._live_offers.get(request.offer_id)
        if offer is None:
            return DeploymentNack(reason="unknown or consumed offer")
        if now > offer.expires_at:
            return DeploymentNack(reason="offer expired")
        if not offer.covers(request.accepted_services):
            return DeploymentNack(reason="accepted services not offered")
        owed = sum(offer.price_of(s) for s in request.accepted_services)
        if request.payment + 1e-9 < owed:
            return DeploymentNack(
                reason=f"payment {request.payment} below price {owed:.4f}"
            )
        del self._live_offers[request.offer_id]
        return self.deploy(request)


class DiscoveryClient:
    """Device-side DM sender with sequence numbering."""

    def __init__(self, device_id: str,
                 standards: tuple[str, ...] = (STANDARD_OPENFLOW,
                                               STANDARD_DOCKER)) -> None:
        self.device_id = device_id
        self.standards = standards
        self._sequence = itertools.count(1)
        self.dms_sent = 0

    def make_dm(self, pvnc: Pvnc, estimate: ResourceEstimate
                ) -> DiscoveryMessage:
        self.dms_sent += 1
        return DiscoveryMessage(
            device_id=self.device_id,
            sequence=next(self._sequence),
            standards=self.standards,
            requested_services=pvnc.used_services(),
            estimate=estimate,
            pvnc_digest=pvnc.digest(),
        )

    def flood(
        self,
        services: list[DiscoveryService],
        pvnc: Pvnc,
        estimate: ResourceEstimate,
        now: float,
    ) -> list[Offer]:
        """Send one DM to every provider in the discovery zone.

        Models the paper's limited flooding across multiple providers
        "in case the access provider does not support" PVNs.
        """
        if not services:
            raise NegotiationError("no providers in the discovery zone")
        dm = self.make_dm(pvnc, estimate)
        offers = []
        for service in services:
            offer = service.handle_dm(dm, now)
            if offer is not None:
                offers.append(offer)
        return offers

    def flood_with_retry(
        self,
        services: list[DiscoveryService],
        pvnc: Pvnc,
        estimate: ResourceEstimate,
        now: float,
        policy: RetryPolicy,
        rng: "np.random.Generator | None" = None,
        breaker=None,
    ) -> tuple[list[Offer], RetryTrace]:
        """Flood with per-request timeouts and capped backoff.

        Each attempt floods the zone and waits ``policy.timeout`` for
        answers; a silent zone costs the timeout plus the next backoff
        delay, up to ``policy.max_attempts`` attempts total.  Returns
        the first non-empty offer batch plus a :class:`RetryTrace`
        whose ``waited`` is the virtual time burned — callers advance
        their clock by it.

        With a ``breaker`` (:class:`repro.health.overload.
        CircuitBreaker`) each attempt first asks the breaker: while it
        is OPEN the attempt *fails fast* — no flood, no timeout burned
        — so a crowd of devices stops hammering a provider that is
        plainly down, and outcomes feed back into the breaker.
        """
        delays = policy.backoff_schedule(rng)
        trace = RetryTrace(delays=tuple(delays))
        for attempt in range(policy.max_attempts):
            trace.attempts = attempt + 1
            if breaker is not None and not breaker.allow(now + trace.waited):
                # Fail fast: skip the flood and the timeout entirely;
                # only the backoff delay (if any) is paid, keeping the
                # retry cadence without the network cost.
                if attempt < policy.max_attempts - 1:
                    trace.waited += delays[attempt]
                continue
            offers = self.flood(services, pvnc, estimate, now + trace.waited)
            if offers:
                trace.succeeded = True
                if breaker is not None:
                    breaker.record_success(now + trace.waited)
                return offers, trace
            if breaker is not None:
                breaker.record_failure(now + trace.waited)
            trace.waited += policy.timeout
            if attempt < policy.max_attempts - 1:
                trace.waited += delays[attempt]
        return [], trace


def check_ack(response: DeploymentAck | DeploymentNack) -> DeploymentAck:
    """Unwrap an ACK or raise with the provider's failure reason."""
    if isinstance(response, DeploymentNack):
        raise ProtocolError(f"deployment NACKed: {response.reason}")
    return response
