"""Timeout, retry-budget, and backoff policy for discovery requests.

Providers can time out mid-negotiation (crash, overload, or the
network eating the DM), so the device-side client retries under a
:class:`RetryPolicy`: a per-request timeout, a bounded attempt budget,
and capped exponential backoff with seeded jitter between attempts.

Two invariants the property suite pins down:

* the backoff schedule is monotone non-decreasing and never exceeds
  ``max_delay * (1 + jitter)``;
* total attempts never exceed ``max_attempts``.

With ``full_jitter=True`` the policy instead draws each delay
uniformly from ``[0, raw_delay]`` (the AWS "full jitter" scheme):
the monotone invariant is deliberately given up in exchange for
maximal decorrelation — when a crashed host evicts hundreds of users
at once, proportional jitter still leaves their retries bunched at
``~raw_delay``, hammering the recovering provider in waves, whereas
full jitter spreads the storm across the whole window.  The cap
invariant (never above ``max_delay``) holds in both modes, and the
property suite additionally pins the *spread*: seeded full-jitter
delays cover the window instead of clustering.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How a client waits for, and retries, unanswered requests.

    Parameters
    ----------
    timeout:
        Seconds the client waits for any answer to one flood before
        declaring the attempt timed out.
    max_attempts:
        Total attempt budget, first try included (>= 1).
    base_delay:
        Backoff inserted before the second attempt.
    multiplier:
        Exponential growth factor per further attempt (>= 1).
    max_delay:
        Cap on the un-jittered backoff delay.
    jitter:
        Fraction of each delay added as seeded random jitter in
        ``[0, jitter * delay)`` — decorrelates clients that timed out
        together without ever shrinking the delay.
    full_jitter:
        Draw each delay uniformly from ``[0, raw_delay]`` instead
        (capped exponential, AWS full-jitter style).  Maximal retry
        decorrelation for flash crowds; gives up monotonicity.
    """

    timeout: float = 0.5
    max_attempts: int = 4
    base_delay: float = 0.2
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1
    full_jitter: bool = False

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ConfigurationError("timeout must be positive")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ConfigurationError("base_delay must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise ConfigurationError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    def raw_delay(self, attempt: int) -> float:
        """Un-jittered backoff before attempt ``attempt + 2``."""
        return min(self.max_delay,
                   self.base_delay * self.multiplier ** attempt)

    def backoff_schedule(
        self, rng: np.random.Generator | None = None
    ) -> list[float]:
        """The ``max_attempts - 1`` inter-attempt delays.

        Jitter is drawn from ``rng`` (no rng, no jitter); a running
        maximum keeps the schedule monotone non-decreasing even when a
        small jitter draw follows a large one near the cap.

        In ``full_jitter`` mode each delay is instead an independent
        uniform draw over ``[0, raw_delay]`` — no floor, no monotone
        guarantee, maximal spread (without an rng the schedule
        degrades to the raw capped-exponential delays).
        """
        delays: list[float] = []
        if self.full_jitter:
            for attempt in range(self.max_attempts - 1):
                delay = self.raw_delay(attempt)
                if rng is not None:
                    delay = float(rng.random()) * delay
                delays.append(delay)
            return delays
        floor = 0.0
        for attempt in range(self.max_attempts - 1):
            delay = self.raw_delay(attempt)
            if self.jitter > 0 and rng is not None:
                delay += float(rng.random()) * self.jitter * delay
            floor = max(floor, delay)
            delays.append(floor)
        return delays

    def worst_case_wait(self) -> float:
        """Upper bound on total time burned when every attempt times out."""
        if self.full_jitter:
            return (self.max_attempts * self.timeout
                    + sum(self.raw_delay(i)
                          for i in range(self.max_attempts - 1)))
        return (self.max_attempts * self.timeout
                + sum((1 + self.jitter) * self.raw_delay(i)
                      for i in range(self.max_attempts - 1)))


@dataclasses.dataclass
class RetryTrace:
    """What one retried request actually did."""

    attempts: int = 0
    waited: float = 0.0          # timeout + backoff seconds burned
    delays: tuple[float, ...] = ()
    succeeded: bool = False

    @property
    def timed_out(self) -> bool:
        return not self.succeeded
