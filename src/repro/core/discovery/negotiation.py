"""Negotiation of access policies (§3.3).

"We expect that many network providers may support partial PVN
configuration ... we need a way to negotiate a compromise between what
the network provider allows and what the user requests.  We believe a
set of soft and hard constraints can inform the decision."

Hard constraints are the PVNC's ``required_services`` plus the budget;
soft constraints are ``preferred_services``.  The device's options on a
non-matching offer, straight from §3.1: wait for a better offer from
another provider in the zone, re-send a DM with a subset
configuration, accept a subset of what is offered, or walk away.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.discovery.messages import DeploymentRequest, DiscoveryMessage, Offer
from repro.core.discovery.protocol import DiscoveryClient, DiscoveryService
from repro.core.discovery.retry import RetryPolicy
from repro.core.pvnc.model import Pvnc, ResourceEstimate
from repro.errors import NegotiationError

STRATEGY_ACCEPT_FIRST = "accept_first"
STRATEGY_BEST_OF_ZONE = "best_of_zone"
STRATEGY_SUBSET_RETRY = "subset_retry"
STRATEGY_FREE_ONLY = "free_only"

ALL_STRATEGIES = (STRATEGY_ACCEPT_FIRST, STRATEGY_BEST_OF_ZONE,
                  STRATEGY_SUBSET_RETRY, STRATEGY_FREE_ONLY)


@dataclasses.dataclass(frozen=True)
class AcceptancePlan:
    """Which offered services the device will buy, and for how much."""

    services: tuple[str, ...]
    price: float
    dropped: tuple[str, ...]


@dataclasses.dataclass
class NegotiationOutcome:
    """The result of one negotiation run."""

    accepted: bool
    provider: str = ""
    offer: Offer | None = None
    plan: AcceptancePlan | None = None
    rounds: int = 0
    offers_considered: int = 0
    reason: str = ""
    accepted_at: float = 0.0      # simulation time of acceptance
    attempts: int = 1             # discovery attempts (retries included)
    waited: float = 0.0           # timeout + backoff seconds burned


def plan_acceptance(offer: Offer, pvnc: Pvnc) -> AcceptancePlan | None:
    """Fit the offer to the user's constraints, or None if impossible.

    Required services must all be offered.  If the full set busts the
    budget, droppable services go first — preferred before merely
    requested — in descending price order.
    """
    constraints = pvnc.constraints
    requested = pvnc.used_services()
    offered = set(offer.offered_services)

    required = [s for s in constraints.required_services if s in requested]
    if any(service not in offered for service in required):
        return None

    chosen = [s for s in requested if s in offered]
    dropped = [s for s in requested if s not in offered]

    def price_of(services: list[str]) -> float:
        return sum(offer.price_of(s) for s in services)

    preferred = set(constraints.preferred_services)
    required_set = set(required)
    # Drop order: preferred (expensive first), then other optionals.
    droppable = sorted(
        (s for s in chosen if s not in required_set),
        key=lambda s: (s not in preferred, -offer.price_of(s)),
    )
    for victim in droppable:
        if price_of(chosen) <= constraints.max_price:
            break
        chosen.remove(victim)
        dropped.append(victim)
    total = price_of(chosen)
    if total > constraints.max_price:
        return None
    return AcceptancePlan(
        services=tuple(chosen), price=round(total, 4),
        dropped=tuple(dropped),
    )


def build_request(
    device_id: str, offer: Offer, pvnc: Pvnc, plan: AcceptancePlan
) -> DeploymentRequest:
    """The acceptance message, with the PVNC trimmed to what was bought."""
    trimmed = pvnc.without_services(set(plan.dropped))
    return DeploymentRequest(
        device_id=device_id,
        offer_id=offer.offer_id,
        pvnc=trimmed,
        accepted_services=plan.services,
        payment=plan.price,
    )


def negotiate(
    client: DiscoveryClient,
    providers: list[DiscoveryService],
    pvnc: Pvnc,
    estimate: ResourceEstimate,
    now: float,
    strategy: str = STRATEGY_BEST_OF_ZONE,
) -> NegotiationOutcome:
    """Run discovery + offer selection under ``strategy``."""
    if strategy not in ALL_STRATEGIES:
        raise NegotiationError(f"unknown strategy {strategy!r}")

    offers = client.flood(providers, pvnc, estimate, now)
    outcome = NegotiationOutcome(accepted=False, rounds=1,
                                 offers_considered=len(offers))
    if not offers:
        outcome.reason = "no provider answered the discovery message"
        return outcome
    return _select_from_offers(client, providers, offers, pvnc, estimate,
                               now, strategy, outcome)


def negotiate_with_retry(
    client: DiscoveryClient,
    providers: list[DiscoveryService],
    pvnc: Pvnc,
    estimate: ResourceEstimate,
    now: float,
    policy: RetryPolicy,
    rng: "np.random.Generator | None" = None,
    strategy: str = STRATEGY_BEST_OF_ZONE,
) -> NegotiationOutcome:
    """:func:`negotiate`, but robust to an unresponsive zone.

    Discovery floods are retried under ``policy`` (per-request timeout,
    capped exponential backoff with seeded jitter, bounded attempt
    budget); the outcome's ``attempts``/``waited`` report what the
    retries cost.  A zone that never answers within the budget yields a
    non-accepted outcome rather than an exception — the caller decides
    whether to fall back to tunneling.
    """
    if strategy not in ALL_STRATEGIES:
        raise NegotiationError(f"unknown strategy {strategy!r}")
    offers, trace = client.flood_with_retry(
        providers, pvnc, estimate, now, policy, rng
    )
    outcome = NegotiationOutcome(
        accepted=False, rounds=trace.attempts,
        offers_considered=len(offers),
        attempts=trace.attempts, waited=trace.waited,
    )
    if not offers:
        outcome.reason = (
            f"discovery timed out: no offer after {trace.attempts} "
            f"attempts ({trace.waited:.2f}s of timeouts and backoff)"
        )
        return outcome
    return _select_from_offers(client, providers, offers, pvnc, estimate,
                               now + trace.waited, strategy, outcome)


def _select_from_offers(
    client: DiscoveryClient,
    providers: list[DiscoveryService],
    offers: list[Offer],
    pvnc: Pvnc,
    estimate: ResourceEstimate,
    now: float,
    strategy: str,
    outcome: NegotiationOutcome,
) -> NegotiationOutcome:
    """Offer selection shared by the plain and retrying negotiators."""
    if strategy == STRATEGY_FREE_ONLY:
        return _free_only(offers, pvnc, outcome)
    if strategy == STRATEGY_ACCEPT_FIRST:
        candidates = offers[:1]
    else:
        candidates = offers

    scored: list[tuple[float, Offer, AcceptancePlan]] = []
    for offer in candidates:
        plan = plan_acceptance(offer, pvnc)
        if plan is None:
            continue
        # Prefer coverage (fewer drops), then lower price.
        score = len(plan.dropped) * 1000.0 + plan.price
        scored.append((score, offer, plan))
    if not scored:
        outcome.reason = "no offer satisfied the hard constraints and budget"
        return outcome
    scored.sort(key=lambda item: (item[0], item[1].offer_id))
    _, best_offer, best_plan = scored[0]

    if strategy == STRATEGY_SUBSET_RETRY and best_plan.dropped:
        # §3.1: re-send a DM with the subset configuration to get a
        # fresh quote for exactly what will be bought.
        provider = _provider_named(providers, best_offer.provider)
        trimmed = pvnc.without_services(set(best_plan.dropped))
        dm = client.make_dm(trimmed, estimate)
        outcome.rounds += 1
        retry_offer = provider.handle_dm(dm, now)
        if retry_offer is not None:
            retry_plan = plan_acceptance(retry_offer, trimmed)
            if retry_plan is not None and retry_plan.price <= best_plan.price:
                # The retry plan's drops are relative to the *trimmed*
                # config; fold the original drops back in so the final
                # deployment request trims everything not paid for.
                merged = AcceptancePlan(
                    services=retry_plan.services,
                    price=retry_plan.price,
                    dropped=tuple(dict.fromkeys(
                        [*best_plan.dropped, *retry_plan.dropped]
                    )),
                )
                best_offer, best_plan = retry_offer, merged

    outcome.accepted = True
    outcome.provider = best_offer.provider
    outcome.offer = best_offer
    outcome.plan = best_plan
    outcome.reason = "accepted"
    return outcome


def _free_only(
    offers: list[Offer], pvnc: Pvnc, outcome: NegotiationOutcome
) -> NegotiationOutcome:
    """Accept only zero-priced services (the §3.1 'free subset' path)."""
    best: tuple[int, Offer, AcceptancePlan] | None = None
    for offer in offers:
        free = tuple(s for s in offer.offered_services
                     if offer.price_of(s) == 0.0)
        required = set(pvnc.constraints.required_services)
        if required - set(free):
            continue
        plan = AcceptancePlan(
            services=free, price=0.0,
            dropped=tuple(s for s in pvnc.used_services() if s not in free),
        )
        key = len(free)
        if best is None or key > best[0]:
            best = (key, offer, plan)
    if best is None:
        outcome.reason = "no offer includes the required services for free"
        return outcome
    _, offer, plan = best
    outcome.accepted = True
    outcome.provider = offer.provider
    outcome.offer = offer
    outcome.plan = plan
    outcome.reason = "accepted free tier"
    return outcome


def _score(plan: AcceptancePlan, offer: Offer) -> tuple[float, int]:
    """Lower is better: coverage first, then price, then offer id."""
    return (len(plan.dropped) * 1000.0 + plan.price, offer.offer_id)


def negotiate_over_time(
    client: DiscoveryClient,
    schedule: list[tuple[float, list[DiscoveryService]]],
    pvnc: Pvnc,
    estimate: ResourceEstimate,
    deadline: float,
) -> NegotiationOutcome:
    """The §3.1 "wait for a better offer" strategy.

    ``schedule`` lists (time, providers-visible) events — providers
    appear and disappear as the device dwells in the discovery zone.
    The device floods at every event up to ``deadline``, keeps the best
    viable offer seen, and accepts at the deadline (re-flooding once if
    its held offer has expired by then).

    Waiting trades time-to-connect for offer quality; E10/A4 quantify
    the trade.
    """
    outcome = NegotiationOutcome(accepted=False)
    best: tuple[tuple[float, int], Offer, AcceptancePlan] | None = None
    last_providers: list[DiscoveryService] = []

    def flood(providers: list[DiscoveryService], now: float) -> None:
        nonlocal best
        if not providers:
            return
        outcome.rounds += 1
        for offer in client.flood(providers, pvnc, estimate, now):
            outcome.offers_considered += 1
            plan = plan_acceptance(offer, pvnc)
            if plan is None:
                continue
            key = _score(plan, offer)
            if best is None or key < best[0]:
                best = (key, offer, plan)

    for event_time, providers in sorted(schedule, key=lambda e: e[0]):
        if event_time > deadline:
            break
        last_providers = providers
        flood(providers, event_time)

    if best is not None and deadline > best[1].expires_at:
        # The held offer died while we waited: ask again at the deadline.
        best = None
        flood(last_providers, deadline)

    if best is None:
        outcome.reason = "no acceptable offer appeared before the deadline"
        return outcome
    _, offer, plan = best
    outcome.accepted = True
    outcome.provider = offer.provider
    outcome.offer = offer
    outcome.plan = plan
    outcome.accepted_at = deadline
    outcome.reason = "accepted best offer seen before the deadline"
    return outcome


def _provider_named(
    providers: list[DiscoveryService], name: str
) -> DiscoveryService:
    for provider in providers:
        if provider.provider == name:
            return provider
    raise NegotiationError(f"provider {name!r} vanished mid-negotiation")
