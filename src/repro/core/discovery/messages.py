"""Discovery and deployment protocol messages (§3.1).

"The discovery message (DM) will specify a sequence number
(incremented for each discovery attempt), the language and/or standards
that the PVNC supports (e.g., OpenFlow, Docker containers), the virtual
network topology, and an estimate of the network and computational
resources requested by the PVNC.  A network that supports PVNs should
respond to each DM with the location of the PVN deployment server, the
languages/standards supported, an offered virtual network topology and
resources (which may be identical to the request, or a subset), a cost
per VNC module, and a time at which the offer expires."
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.core.pvnc.model import Pvnc, ResourceEstimate

#: Standards a PVNC/provider can speak, per the paper's examples.
STANDARD_OPENFLOW = "openflow"
STANDARD_DOCKER = "docker"

_offer_ids = itertools.count(1)


@dataclasses.dataclass(frozen=True)
class DiscoveryMessage:
    """A device's DM, broadcast on attach (or re-sent with a subset)."""

    device_id: str
    sequence: int
    standards: tuple[str, ...]
    requested_services: tuple[str, ...]
    estimate: ResourceEstimate
    pvnc_digest: bytes

    def subset(self, services: tuple[str, ...], estimate: ResourceEstimate,
               digest: bytes) -> "DiscoveryMessage":
        """The §3.1 retry: a new DM with a subset configuration."""
        return dataclasses.replace(
            self,
            sequence=self.sequence + 1,
            requested_services=services,
            estimate=estimate,
            pvnc_digest=digest,
        )


@dataclasses.dataclass(frozen=True)
class Offer:
    """A provider's response to a DM."""

    provider: str
    deployment_server: str
    standards: tuple[str, ...]
    offered_services: tuple[str, ...]        # may be a subset of the DM's
    prices: tuple[tuple[str, float], ...]    # per-module cost
    expires_at: float
    in_reply_to: int                         # DM sequence number
    offer_id: int = dataclasses.field(default_factory=lambda: next(_offer_ids))

    @property
    def total_price(self) -> float:
        return sum(price for _, price in self.prices)

    def price_of(self, service: str) -> float:
        for name, price in self.prices:
            if name == service:
                return price
        return 0.0

    def covers(self, services: tuple[str, ...]) -> bool:
        offered = set(self.offered_services)
        return all(service in offered for service in services)


@dataclasses.dataclass(frozen=True)
class DeploymentRequest:
    """Acceptance: the PVNC plus payment for the chosen services."""

    device_id: str
    offer_id: int
    pvnc: Pvnc
    accepted_services: tuple[str, ...]
    payment: float


@dataclasses.dataclass(frozen=True)
class DeploymentAck:
    """Success: the PVN is installed and routed."""

    deployment_id: str
    pvn_subnet: str                 # triggers the DHCP refresh (§3.1)
    attestation_available: bool = True


@dataclasses.dataclass(frozen=True)
class DeploymentNack:
    """Failure, with the reason the paper requires providers to give."""

    reason: str
