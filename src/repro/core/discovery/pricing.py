"""Provider pricing models (§3.3 "Incentivizing access network
providers").

"Access providers can give users free limited resources and
configurations in return for ads, and allow users to purchase
additional resources and functionality."  A :class:`PricingPolicy`
captures that: a free (ad-supported) tier of services, per-service
prices for the rest, a bulk discount, and a load-based surge
multiplier.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError

#: Reference per-module prices (arbitrary currency units per session).
DEFAULT_PRICES = {
    "classifier": 0.0,
    "tls_validator": 0.50,
    "dns_validator": 0.25,
    "pii_detector": 1.00,
    "malware_detector": 0.75,
    "tcp_proxy": 0.40,
    "transcoder": 0.60,
    "prefetcher": 0.50,
    "tracker_blocker": 0.30,
    "compressor": 0.30,
    "encryptor": 0.45,
    "decryptor": 0.15,
    "replica_selector": 0.35,
    "sensor_privacy": 0.80,
}


@dataclasses.dataclass(frozen=True)
class PricingPolicy:
    """How a provider prices PVN modules."""

    prices: tuple[tuple[str, float], ...] = tuple(
        sorted(DEFAULT_PRICES.items())
    )
    free_tier: tuple[str, ...] = ("classifier",)   # ad-supported
    default_price: float = 0.50                    # unknown services
    bulk_threshold: int = 4                        # modules before discount
    bulk_discount: float = 0.20                    # fraction off the excess
    load_multiplier: float = 1.0                   # surge pricing knob

    def __post_init__(self) -> None:
        if self.default_price < 0 or self.load_multiplier <= 0:
            raise ConfigurationError("invalid pricing parameters")
        if not 0 <= self.bulk_discount < 1:
            raise ConfigurationError("bulk_discount must be in [0,1)")

    def base_price(self, service: str) -> float:
        if service in self.free_tier:
            return 0.0
        for name, price in self.prices:
            if name == service:
                return price * self.load_multiplier
        return self.default_price * self.load_multiplier

    def quote(self, services: tuple[str, ...]) -> tuple[tuple[str, float], ...]:
        """Per-service prices with the bulk discount applied.

        The discount applies to every paid module past the threshold,
        counted in the order requested (deterministic for the device).
        """
        quoted: list[tuple[str, float]] = []
        paid_count = 0
        for service in services:
            price = self.base_price(service)
            if price > 0:
                paid_count += 1
                if paid_count > self.bulk_threshold:
                    price *= 1.0 - self.bulk_discount
            quoted.append((service, round(price, 4)))
        return tuple(quoted)

    def total(self, services: tuple[str, ...]) -> float:
        return round(sum(price for _, price in self.quote(services)), 4)


def surge(policy: PricingPolicy, utilisation: float) -> PricingPolicy:
    """A copy of ``policy`` with load-based surge pricing applied.

    Multiplier grows linearly from 1.0 at <=50% utilisation to 2.0 at
    100% — a simple congestion-pricing model for the ablation bench.
    """
    if not 0.0 <= utilisation <= 1.0:
        raise ConfigurationError("utilisation must be in [0,1]")
    multiplier = 1.0 + max(0.0, utilisation - 0.5) * 2.0
    return dataclasses.replace(policy, load_multiplier=multiplier)
