"""The PVN auditor: attestation, path proofs, active measurements,
violation evidence, and provider reputation (§3.1, §3.3)."""

from repro.core.auditor.attestation import (
    Attestation,
    AttestationVerifier,
    TrustedPlatform,
)
from repro.core.auditor.measurements import (
    MeasurementResult,
    TEST_CONTENT_MODIFICATION,
    TEST_DIFFERENTIATION,
    TEST_MIDDLEBOX_EXECUTION,
    TEST_PATH_INFLATION,
    TEST_PRIVACY_EXPOSURE,
    content_modification_test,
    differentiation_test,
    middlebox_execution_test,
    path_inflation_test,
    privacy_exposure_test,
)
from repro.core.auditor.path_proof import (
    PROOF_KEY,
    ProofKeyring,
    make_keyring,
    path_proof_ok,
    stamp,
    verify_path,
)
from repro.core.auditor.reputation import (
    ProviderRecord,
    ReputationSystem,
    choose_provider,
)
from repro.core.auditor.violations import (
    BillingDispute,
    EvidenceLedger,
    ViolationRecord,
    file_dispute,
)

__all__ = [
    "Attestation",
    "AttestationVerifier",
    "BillingDispute",
    "EvidenceLedger",
    "MeasurementResult",
    "PROOF_KEY",
    "ProofKeyring",
    "ProviderRecord",
    "ReputationSystem",
    "TEST_CONTENT_MODIFICATION",
    "TEST_DIFFERENTIATION",
    "TEST_MIDDLEBOX_EXECUTION",
    "TEST_PATH_INFLATION",
    "TEST_PRIVACY_EXPOSURE",
    "TrustedPlatform",
    "ViolationRecord",
    "choose_provider",
    "content_modification_test",
    "differentiation_test",
    "file_dispute",
    "make_keyring",
    "middlebox_execution_test",
    "path_inflation_test",
    "path_proof_ok",
    "privacy_exposure_test",
    "stamp",
    "verify_path",
]
