"""Violation evidence (§3.1).

"Observed violations in either configurations or policies can be used
as evidence in billing disputes, and to inform reputations for PVN
providers."

The :class:`EvidenceLedger` is the device-side append-only record of
audit outcomes; :func:`file_dispute` turns a provider's violations into
a billing-dispute document.
"""

from __future__ import annotations

import dataclasses

from repro.core.auditor.measurements import MeasurementResult


@dataclasses.dataclass(frozen=True)
class ViolationRecord:
    """One piece of evidence against a provider.

    ``evidence_spans`` (optional) is the observed span path backing
    the verdict — e.g. the per-hop middlebox spans the datapath
    synthesized from the audit probes, as ``"name@sim_time"`` strings.
    It corroborates the cryptographic path proof with the trace the
    auditor actually saw.
    """

    time: float
    provider: str
    deployment_id: str
    test: str
    detail: str
    evidence_spans: tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class BillingDispute:
    """A dispute document assembled from ledger evidence."""

    provider: str
    deployment_id: str
    amount_disputed: float
    violations: tuple[ViolationRecord, ...]

    @property
    def summary(self) -> str:
        kinds = sorted({v.test for v in self.violations})
        return (f"dispute {self.amount_disputed:.2f} against "
                f"{self.provider} ({len(self.violations)} violations: "
                f"{', '.join(kinds)})")


class EvidenceLedger:
    """Append-only audit evidence with per-provider queries."""

    def __init__(self) -> None:
        self._records: list[ViolationRecord] = []
        self.audits_run = 0

    def __len__(self) -> int:
        return len(self._records)

    def record_result(
        self,
        result: MeasurementResult,
        provider: str,
        deployment_id: str,
        now: float,
        evidence_spans: tuple[str, ...] = (),
    ) -> ViolationRecord | None:
        """Fold one measurement in; returns the record when violated."""
        self.audits_run += 1
        if not result.violated:
            return None
        record = ViolationRecord(
            time=now, provider=provider, deployment_id=deployment_id,
            test=result.test, detail=result.detail,
            evidence_spans=tuple(evidence_spans),
        )
        self._records.append(record)
        return record

    def record_fault(
        self,
        time: float,
        provider: str,
        deployment_id: str,
        kind: str,
        detail: str,
    ) -> ViolationRecord:
        """Append fault/repair/degradation evidence (§3.1).

        Faults are service events, not policy violations, but they are
        evidence all the same: a provider whose middleboxes crash is
        accountable for the outage history when billing is disputed.
        They are stored with ``test="fault:<kind>"`` so violation
        queries can keep the two apart.
        """
        record = ViolationRecord(
            time=time, provider=provider, deployment_id=deployment_id,
            test=f"fault:{kind}", detail=detail,
        )
        self._records.append(record)
        return record

    def violations_for(self, provider: str) -> list[ViolationRecord]:
        return [
            r for r in self._records
            if r.provider == provider and not r.test.startswith("fault:")
        ]

    def violation_count(self, provider: str) -> int:
        return len(self.violations_for(provider))

    def fault_records(self, provider: str | None = None) -> list[ViolationRecord]:
        """Fault/repair/degradation evidence, optionally per provider."""
        return [
            r for r in self._records
            if r.test.startswith("fault:")
            and (provider is None or r.provider == provider)
        ]

    def all_records(self) -> list[ViolationRecord]:
        return list(self._records)


def file_dispute(
    ledger: EvidenceLedger,
    provider: str,
    deployment_id: str,
    amount_paid: float,
) -> BillingDispute | None:
    """A dispute for the amount paid, or None with no evidence."""
    violations = tuple(
        r for r in ledger.violations_for(provider)
        if r.deployment_id == deployment_id
    )
    if not violations:
        return None
    return BillingDispute(
        provider=provider,
        deployment_id=deployment_id,
        amount_disputed=amount_paid,
        violations=violations,
    )
