"""Provider reputation and blacklisting (§3.3).

"Should PVNs be successful, ISPs would be incentivized to act honestly
or face loss of revenue from blacklisting, leading users to take their
business to competing PVN-supporting providers."

Reputation is a Beta-style estimator: each provider accumulates pass
and fail observations; its score is the smoothed pass fraction.
Providers below the blacklist threshold are excluded from provider
selection, and :func:`choose_provider` ranks the remainder by a
reputation-and-price utility.
"""

from __future__ import annotations

import dataclasses

from repro.errors import AuditError


@dataclasses.dataclass
class ProviderRecord:
    """Audit history for one provider."""

    passes: float = 1.0   # Beta(1,1) prior
    fails: float = 1.0

    @property
    def score(self) -> float:
        return self.passes / (self.passes + self.fails)


class ReputationSystem:
    """Per-provider audit-outcome scoring with blacklisting."""

    def __init__(self, blacklist_threshold: float = 0.3,
                 decay: float = 1.0) -> None:
        if not 0.0 <= blacklist_threshold <= 1.0:
            raise AuditError("blacklist threshold must be in [0,1]")
        if not 0.0 < decay <= 1.0:
            raise AuditError("decay must be in (0,1]")
        self.blacklist_threshold = blacklist_threshold
        self.decay = decay
        self._providers: dict[str, ProviderRecord] = {}

    def _record(self, provider: str) -> ProviderRecord:
        return self._providers.setdefault(provider, ProviderRecord())

    def observe(self, provider: str, passed: bool) -> None:
        """Fold one audit outcome in (older evidence decays)."""
        record = self._record(provider)
        record.passes *= self.decay
        record.fails *= self.decay
        if passed:
            record.passes += 1.0
        else:
            record.fails += 1.0

    def score(self, provider: str) -> float:
        return self._record(provider).score

    def blacklisted(self, provider: str) -> bool:
        return self.score(provider) < self.blacklist_threshold

    def eligible(self, providers: list[str]) -> list[str]:
        return [p for p in providers if not self.blacklisted(p)]


def choose_provider(
    reputation: ReputationSystem,
    candidates: list[tuple[str, float]],       # (provider, price)
    price_weight: float = 0.1,
) -> str | None:
    """The best non-blacklisted provider by reputation-minus-price.

    ``price_weight`` converts price units into reputation units; higher
    values make the device more price-sensitive.
    """
    best_name: str | None = None
    best_utility = float("-inf")
    for name, price in candidates:
        if reputation.blacklisted(name):
            continue
        utility = reputation.score(name) - price_weight * price
        if utility > best_utility:
            best_name, best_utility = name, utility
    return best_name
