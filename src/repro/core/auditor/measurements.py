"""Active measurement audits (§3.1, §3.3).

"To account for adversarial actions ... we propose using active
network measurements that reliably identify policy violations.  These
can include tests for service differentiation, content modification,
privacy exposure, inflated/short-circuited paths, and others."

Each test drives the provider through caller-supplied probes and
returns a :class:`MeasurementResult`.  The tests are deliberately
black-box: they assume nothing about the provider's internals, exactly
as a device auditing a foreign network must.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Callable

from repro.core.auditor.path_proof import ProofKeyring, path_proof_ok
from repro.errors import AuditError
from repro.netsim.packet import Packet

TEST_DIFFERENTIATION = "service_differentiation"
TEST_CONTENT_MODIFICATION = "content_modification"
TEST_PRIVACY_EXPOSURE = "privacy_exposure"
TEST_PATH_INFLATION = "path_inflation"
TEST_MIDDLEBOX_EXECUTION = "middlebox_execution"


@dataclasses.dataclass(frozen=True)
class MeasurementResult:
    """Outcome of one audit test."""

    test: str
    violated: bool
    detail: str
    samples: tuple[float, ...] = ()


def differentiation_test(
    measure_throughput: Callable[[str], float],
    shaped_kind: str = "video",
    reference_kind: str = "random",
    trials: int = 5,
    ratio_threshold: float = 0.7,
) -> MeasurementResult:
    """Glasnost-style [9] shaping detection.

    Runs paired transfers whose payloads differ only in apparent kind
    (``shaped_kind`` looks like video; ``reference_kind`` looks like
    noise).  If the shaped kind's median throughput is below
    ``ratio_threshold`` of the reference's, the provider is
    differentiating.
    """
    if trials < 1:
        raise AuditError("differentiation test needs >= 1 trial")
    shaped = [measure_throughput(shaped_kind) for _ in range(trials)]
    reference = [measure_throughput(reference_kind) for _ in range(trials)]
    shaped_median = statistics.median(shaped)
    reference_median = statistics.median(reference)
    if reference_median <= 0:
        raise AuditError("reference transfers produced zero throughput")
    ratio = shaped_median / reference_median
    return MeasurementResult(
        test=TEST_DIFFERENTIATION,
        violated=ratio < ratio_threshold,
        detail=(f"{shaped_kind} vs {reference_kind} throughput ratio "
                f"{ratio:.2f} (threshold {ratio_threshold})"),
        samples=tuple(shaped + reference),
    )


def content_modification_test(
    fetch: Callable[[str], bytes],
    expected: dict[str, bytes],
) -> MeasurementResult:
    """Fetch objects with known digests through the provider and
    compare (the Tunneling-for-Transparency [7] methodology)."""
    import hashlib

    if not expected:
        raise AuditError("content test needs expected objects")
    modified = []
    for url, digest in sorted(expected.items()):
        body = fetch(url)
        if hashlib.sha256(body).digest() != digest:
            modified.append(url)
    return MeasurementResult(
        test=TEST_CONTENT_MODIFICATION,
        violated=bool(modified),
        detail=(f"{len(modified)}/{len(expected)} objects modified in "
                f"flight: {modified}" if modified else
                f"all {len(expected)} objects intact"),
    )


def privacy_exposure_test(
    send_canary: Callable[[bytes], bytes],
    canary: bytes,
    policy_scrubs: bool,
) -> MeasurementResult:
    """Send a unique canary PII value through the PVN toward an
    attacker-observable sink and check the deployed privacy policy was
    actually applied."""
    if not canary:
        raise AuditError("canary must be non-empty")
    observed = send_canary(canary)
    leaked = canary in observed
    violated = leaked if policy_scrubs else False
    return MeasurementResult(
        test=TEST_PRIVACY_EXPOSURE,
        violated=violated,
        detail=("canary leaked despite scrub policy" if violated
                else "canary handled according to policy"),
    )


def path_inflation_test(
    measure_rtt: Callable[[], float],
    expected_rtt: float,
    trials: int = 5,
    tolerance: float = 1.5,
) -> MeasurementResult:
    """Compare measured RTT against what the offered virtual topology
    implies (Zarifis et al. [45] path-inflation methodology)."""
    if expected_rtt <= 0:
        raise AuditError("expected RTT must be positive")
    samples = sorted(measure_rtt() for _ in range(trials))
    measured = statistics.median(samples)
    inflation = measured / expected_rtt
    return MeasurementResult(
        test=TEST_PATH_INFLATION,
        violated=inflation > tolerance,
        detail=(f"median RTT {measured * 1000:.1f}ms vs expected "
                f"{expected_rtt * 1000:.1f}ms (x{inflation:.2f}, "
                f"tolerance x{tolerance})"),
        samples=tuple(samples),
    )


def middlebox_execution_test(
    send_probe: Callable[[], Packet],
    keyring: ProofKeyring,
    required_waypoints: list[str],
    trials: int = 3,
) -> MeasurementResult:
    """Route probe packets through the PVN and verify their path
    proofs show every required middlebox actually executed."""
    failures = 0
    for _ in range(trials):
        probe = send_probe()
        if not path_proof_ok(probe, keyring, required_waypoints):
            failures += 1
    return MeasurementResult(
        test=TEST_MIDDLEBOX_EXECUTION,
        violated=failures > 0,
        detail=(f"{failures}/{trials} probes missing valid proofs for "
                f"waypoints {required_waypoints}"),
    )
