"""Packet routing proofs (§3.1 "Auditor").

"The device will need to obtain proofs that packets sent to the PVN
were actually routed correctly through the PVN."

Each PVN waypoint (middlebox/chain element) holds a per-deployment
proof key and stamps traversing packets with a chained MAC:
``mac_i = HMAC(key_i, packet_id || mac_{i-1})``.  The device, which
receives all the keys inside the deployment ACK (over the attested
channel), recomputes the chain and checks that every required waypoint
contributed.  A provider that skips a middlebox cannot forge that
middlebox's MAC without its key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac

from repro.errors import AuditError
from repro.netsim.packet import Packet

#: Metadata key under which proofs accumulate on a packet.
PROOF_KEY = "path_proof"


def _mac(key: bytes, payload: bytes) -> bytes:
    return hmac.new(key, payload, hashlib.sha256).digest()[:16]


@dataclasses.dataclass(frozen=True)
class ProofKeyring:
    """Per-deployment waypoint keys, shared with the device at deploy."""

    deployment_id: str
    keys: tuple[tuple[str, bytes], ...]    # (waypoint name, key), in order

    def key_for(self, waypoint: str) -> bytes:
        for name, key in self.keys:
            if name == waypoint:
                return key
        raise AuditError(f"no proof key for waypoint {waypoint!r}")

    @property
    def waypoints(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.keys)


def make_keyring(deployment_id: str, waypoints: list[str]) -> ProofKeyring:
    """Derive independent waypoint keys from the deployment id."""
    keys = tuple(
        (
            waypoint,
            hashlib.sha256(
                f"proof:{deployment_id}:{waypoint}".encode()
            ).digest(),
        )
        for waypoint in waypoints
    )
    return ProofKeyring(deployment_id=deployment_id, keys=keys)


def stamp(packet: Packet, waypoint: str, keyring: ProofKeyring) -> None:
    """Called by the data path as the packet traverses ``waypoint``."""
    proofs: list[tuple[str, bytes]] = packet.metadata.setdefault(PROOF_KEY, [])
    previous = proofs[-1][1] if proofs else b""
    mac = _mac(
        keyring.key_for(waypoint),
        str(packet.packet_id).encode() + previous,
    )
    proofs.append((waypoint, mac))


def verify_path(packet: Packet, keyring: ProofKeyring,
                required_waypoints: list[str]) -> None:
    """Raise :class:`AuditError` unless the packet's proof chain shows
    an honest traversal of ``required_waypoints`` in order."""
    proofs: list[tuple[str, bytes]] = packet.metadata.get(PROOF_KEY, [])
    visited = [name for name, _ in proofs]
    if visited != list(required_waypoints):
        raise AuditError(
            f"packet {packet.packet_id} visited {visited}, "
            f"required {list(required_waypoints)}"
        )
    previous = b""
    for waypoint, mac in proofs:
        expected = _mac(
            keyring.key_for(waypoint),
            str(packet.packet_id).encode() + previous,
        )
        if not hmac.compare_digest(expected, mac):
            raise AuditError(
                f"forged proof at waypoint {waypoint!r} for packet "
                f"{packet.packet_id}"
            )
        previous = mac


def path_proof_ok(packet: Packet, keyring: ProofKeyring,
                  required_waypoints: list[str]) -> bool:
    """Boolean form of :func:`verify_path` for bulk audits."""
    try:
        verify_path(packet, keyring, required_waypoints)
    except AuditError:
        return False
    return True
