"""Signed deployment attestations (§3.1 "Auditor", §3.3).

"We propose using trusted hardware/software stacks that provide
client-verifiable attestations that the specified network
configurations and software middleboxes were installed and executed as
requested."

A :class:`TrustedPlatform` models the provider's trusted stack: it
holds a platform key (provisioned by the hardware vendor in reality)
and signs statements binding a deployment id to the digest of the PVNC
it runs.  The device verifies with :class:`AttestationVerifier`, which
knows the platform keys of vendors it trusts.  A dishonest provider
without a trusted platform cannot produce a verifiable attestation for
a tampered configuration — the property E9 exercises.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac

from repro.errors import AttestationError


def _sign(key: bytes, payload: bytes) -> bytes:
    return hmac.new(key, payload, hashlib.sha256).digest()


@dataclasses.dataclass(frozen=True)
class Attestation:
    """One signed deployment statement."""

    deployment_id: str
    pvnc_digest: bytes
    services: tuple[str, ...]        # what is actually installed
    platform: str
    issued_at: float
    signature: bytes

    def payload(self) -> bytes:
        return b"|".join([
            self.deployment_id.encode(),
            self.pvnc_digest,
            ",".join(self.services).encode(),
            self.platform.encode(),
            f"{self.issued_at}".encode(),
        ])


class TrustedPlatform:
    """The provider-side signer (trusted hardware stand-in)."""

    def __init__(self, platform: str, key: bytes) -> None:
        self.platform = platform
        self._key = key

    def vendor_key(self) -> bytes:
        """The verification key, as distributed by the hardware vendor.

        (HMAC stands in for asymmetric attestation keys; distributing
        the verification key is the vendor's root-of-trust role.)
        """
        return self._key

    def attest(
        self,
        deployment_id: str,
        pvnc_digest: bytes,
        services: tuple[str, ...],
        now: float,
    ) -> Attestation:
        unsigned = Attestation(
            deployment_id=deployment_id,
            pvnc_digest=pvnc_digest,
            services=tuple(services),
            platform=self.platform,
            issued_at=now,
            signature=b"",
        )
        return dataclasses.replace(
            unsigned, signature=_sign(self._key, unsigned.payload())
        )


class AttestationVerifier:
    """Device-side verification against trusted platform keys."""

    def __init__(self, max_age: float = 300.0) -> None:
        self._platform_keys: dict[str, bytes] = {}
        self.max_age = max_age

    def trust_platform(self, platform: str, key: bytes) -> None:
        self._platform_keys[platform] = key

    def verify(
        self,
        attestation: Attestation,
        expected_digest: bytes,
        expected_services: tuple[str, ...],
        now: float,
    ) -> None:
        """Raise :class:`AttestationError` on any mismatch."""
        key = self._platform_keys.get(attestation.platform)
        if key is None:
            raise AttestationError(
                f"untrusted platform {attestation.platform!r}"
            )
        expected_sig = _sign(key, attestation.payload())
        if not hmac.compare_digest(expected_sig, attestation.signature):
            raise AttestationError("attestation signature invalid")
        if attestation.pvnc_digest != expected_digest:
            raise AttestationError(
                "attested configuration differs from the PVNC sent "
                "(provider tampered with the configuration)"
            )
        if tuple(attestation.services) != tuple(expected_services):
            raise AttestationError(
                f"attested services {attestation.services} differ from "
                f"accepted services {expected_services}"
            )
        if now - attestation.issued_at > self.max_age:
            raise AttestationError("attestation is stale")
