"""Module signing for the PVN Store.

Developers sign the modules they publish; the store countersigns what
it reviews; devices verify both before installing.  Signing is
HMAC-SHA256 with per-party keys (the simulation's stand-in for
public-key signatures — possession of the key is what matters to the
experiments).
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac

from repro.errors import ModuleSignatureError


def _sign(key: bytes, payload: bytes) -> bytes:
    return hmac.new(key, payload, hashlib.sha256).digest()


@dataclasses.dataclass(frozen=True)
class SigningKey:
    """A named signing identity."""

    name: str
    key: bytes

    def sign(self, payload: bytes) -> bytes:
        return _sign(self.key, payload)

    def verify(self, payload: bytes, signature: bytes) -> bool:
        return hmac.compare_digest(self.sign(payload), signature)


@dataclasses.dataclass(frozen=True)
class ModuleSignatureBundle:
    """Developer + store signatures over a module's content digest."""

    content_digest: bytes
    developer: str
    developer_signature: bytes
    store_signature: bytes = b""

    def with_store_signature(self, store_key: SigningKey
                             ) -> "ModuleSignatureBundle":
        return dataclasses.replace(
            self,
            store_signature=store_key.sign(
                self.content_digest + self.developer_signature
            ),
        )


def sign_module(content_digest: bytes, developer: SigningKey
                ) -> ModuleSignatureBundle:
    """The developer's publication signature."""
    return ModuleSignatureBundle(
        content_digest=content_digest,
        developer=developer.name,
        developer_signature=developer.sign(content_digest),
    )


def verify_bundle(
    bundle: ModuleSignatureBundle,
    developer_keys: dict[str, SigningKey],
    store_key: SigningKey,
) -> None:
    """Raise :class:`ModuleSignatureError` unless both signatures hold."""
    developer = developer_keys.get(bundle.developer)
    if developer is None:
        raise ModuleSignatureError(
            f"unknown developer {bundle.developer!r}"
        )
    if not developer.verify(bundle.content_digest,
                            bundle.developer_signature):
        raise ModuleSignatureError(
            f"developer signature invalid for {bundle.developer!r}"
        )
    if not store_key.verify(
        bundle.content_digest + bundle.developer_signature,
        bundle.store_signature,
    ):
        raise ModuleSignatureError("store signature invalid or missing")
