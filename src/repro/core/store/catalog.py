"""The PVN Store (§3.1).

"To make PVNs accessible to a general audience instead of only
networking experts, we propose building a 'PVN Store' akin to an app-
or browser-extension marketplace."  Developers publish signed modules
(malware detectors, web optimizers, tracker blockers...); the store
reviews and countersigns; devices browse, purchase, and install.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Callable

from repro.core.store.signing import (
    ModuleSignatureBundle,
    SigningKey,
    sign_module,
    verify_bundle,
)
from repro.errors import StoreError
from repro.nfv.middlebox import Middlebox
from repro.nfv.sandbox import Capability


@dataclasses.dataclass(frozen=True)
class StoreListing:
    """One published module version."""

    service: str
    version: str
    developer: str
    price: float
    description: str
    capabilities: Capability
    factory: Callable[[], Middlebox]
    signatures: ModuleSignatureBundle
    downloads: int = 0

    @property
    def listing_id(self) -> str:
        return f"{self.service}@{self.version}"


def module_digest(service: str, version: str, developer: str) -> bytes:
    """Stable digest of a module's identifying content."""
    return hashlib.sha256(f"{service}|{version}|{developer}".encode()).digest()


class PvnStore:
    """A marketplace of reviewed, signed middlebox modules."""

    def __init__(self, store_key: SigningKey) -> None:
        self.store_key = store_key
        self._developer_keys: dict[str, SigningKey] = {}
        self._listings: dict[str, StoreListing] = {}   # listing_id -> listing
        self.revenue = 0.0

    # -- developer side ---------------------------------------------------

    def register_developer(self, key: SigningKey) -> None:
        self._developer_keys[key.name] = key

    def publish(
        self,
        service: str,
        version: str,
        developer: SigningKey,
        factory: Callable[[], Middlebox],
        price: float = 0.0,
        description: str = "",
        capabilities: Capability = Capability.OBSERVE | Capability.REWRITE,
    ) -> StoreListing:
        """Publish a module; the store reviews and countersigns it."""
        if developer.name not in self._developer_keys:
            raise StoreError(f"developer {developer.name!r} not registered")
        if price < 0:
            raise StoreError("price must be >= 0")
        digest = module_digest(service, version, developer.name)
        bundle = sign_module(digest, developer).with_store_signature(
            self.store_key
        )
        listing = StoreListing(
            service=service, version=version, developer=developer.name,
            price=price, description=description,
            capabilities=capabilities, factory=factory, signatures=bundle,
        )
        self._listings[listing.listing_id] = listing
        return listing

    # -- device side ----------------------------------------------------------

    def search(self, service: str) -> list[StoreListing]:
        """All versions of a service, newest version string last."""
        return sorted(
            (l for l in self._listings.values() if l.service == service),
            key=lambda l: l.version,
        )

    def latest(self, service: str) -> StoreListing:
        listings = self.search(service)
        if not listings:
            raise StoreError(f"no module named {service!r} in the store")
        return listings[-1]

    @property
    def services(self) -> set[str]:
        return {l.service for l in self._listings.values()}

    def install(self, service: str, budget: float = float("inf")
                ) -> tuple[Callable[[], Middlebox], Capability, float]:
        """Verify signatures, charge the price, return the factory.

        Returns ``(factory, capability_grant, price_paid)``.
        """
        listing = self.latest(service)
        verify_bundle(listing.signatures, self._developer_keys, self.store_key)
        expected = module_digest(listing.service, listing.version,
                                 listing.developer)
        if listing.signatures.content_digest != expected:
            raise StoreError(f"listing {listing.listing_id} digest mismatch")
        if listing.price > budget:
            raise StoreError(
                f"{listing.listing_id} costs {listing.price}, "
                f"budget is {budget}"
            )
        self.revenue += listing.price
        self._listings[listing.listing_id] = dataclasses.replace(
            listing, downloads=listing.downloads + 1
        )
        return listing.factory, listing.capabilities, listing.price
