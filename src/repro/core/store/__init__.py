"""The PVN Store: signed middlebox module marketplace (§3.1)."""

from repro.core.store.catalog import PvnStore, StoreListing, module_digest
from repro.core.store.signing import (
    ModuleSignatureBundle,
    SigningKey,
    sign_module,
    verify_bundle,
)

__all__ = [
    "ModuleSignatureBundle",
    "PvnStore",
    "SigningKey",
    "StoreListing",
    "module_digest",
    "sign_module",
    "verify_bundle",
]
