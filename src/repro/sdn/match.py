"""Match fields for flow rules.

A :class:`Match` is a conjunction of optional predicates over the
packet five-tuple plus the PVN ``owner`` tag.  ``owner`` is how
per-user isolation is expressed in the data plane: the compiler tags
every rule of a user's PVN with that user, so a rule can never capture
another subscriber's traffic (§3.3 "Avoiding harm from user
configurations").

Unset fields are wildcards.  IP fields accept CIDR prefixes.
"""

from __future__ import annotations

import dataclasses

from repro.netproto.addresses import ip_in_subnet
from repro.netsim.packet import Packet


@dataclasses.dataclass(frozen=True)
class Match:
    """A conjunction of optional packet predicates."""

    src_cidr: str | None = None
    dst_cidr: str | None = None
    protocol: str | None = None
    src_port: int | None = None
    dst_port: int | None = None
    owner: str | None = None

    def matches(self, packet: Packet) -> bool:
        """True iff every set predicate holds for ``packet``."""
        if self.protocol is not None and packet.protocol != self.protocol:
            return False
        if self.src_port is not None and packet.src_port != self.src_port:
            return False
        if self.dst_port is not None and packet.dst_port != self.dst_port:
            return False
        if self.owner is not None and packet.owner != self.owner:
            return False
        if self.src_cidr is not None and not ip_in_subnet(packet.src, self.src_cidr):
            return False
        if self.dst_cidr is not None and not ip_in_subnet(packet.dst, self.dst_cidr):
            return False
        return True

    def specificity(self) -> int:
        """How many bits of packet this match constrains (for conflicts).

        IP prefixes contribute their prefix length; exact fields
        contribute fixed weights.  Higher = more specific.
        """
        score = 0
        for cidr in (self.src_cidr, self.dst_cidr):
            if cidr is not None:
                score += int(cidr.split("/")[1]) if "/" in cidr else 32
        if self.protocol is not None:
            score += 8
        for port in (self.src_port, self.dst_port):
            if port is not None:
                score += 16
        if self.owner is not None:
            score += 16
        return score

    def could_overlap(self, other: "Match") -> bool:
        """Conservative overlap test: can some packet match both?

        Exact fields must agree when both set; CIDR fields must nest.
        False negatives are impossible; false positives are acceptable
        (they just trigger a priority check at install time).
        """
        for mine, theirs in (
            (self.protocol, other.protocol),
            (self.src_port, other.src_port),
            (self.dst_port, other.dst_port),
            (self.owner, other.owner),
        ):
            if mine is not None and theirs is not None and mine != theirs:
                return False
        for mine, theirs in (
            (self.src_cidr, other.src_cidr),
            (self.dst_cidr, other.dst_cidr),
        ):
            if mine is not None and theirs is not None:
                if not _cidrs_overlap(mine, theirs):
                    return False
        return True


def _cidrs_overlap(a: str, b: str) -> bool:
    """True if two CIDR blocks intersect (one contains the other)."""
    base_a = a.split("/")[0]
    base_b = b.split("/")[0]
    return ip_in_subnet(base_a, b) or ip_in_subnet(base_b, a)


#: The lowest-priority catch-all used for table-miss handling.
MATCH_ANY = Match()
