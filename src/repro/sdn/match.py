"""Match fields for flow rules, and wildcard masks over them.

A :class:`Match` is a conjunction of optional predicates over the
packet five-tuple plus the PVN ``owner`` tag.  ``owner`` is how
per-user isolation is expressed in the data plane: the compiler tags
every rule of a user's PVN with that user, so a rule can never capture
another subscriber's traffic (§3.3 "Avoiding harm from user
configurations").

Unset fields are wildcards.  IP fields accept CIDR prefixes.

A :class:`MatchMask` is the dual object the megaflow layer needs: it
records *which* fields (and, for IP fields, how many prefix bits) a
classification decision actually examined.  Two packets that agree on
every masked field are guaranteed to classify identically, so the mask
plus the masked key (:meth:`MatchMask.key_for`) is a sound wildcard
cache entry (see :mod:`repro.sdn.flowcache`).
"""

from __future__ import annotations

import dataclasses

from repro.netproto.addresses import ip_in_subnet, ip_to_int
from repro.netsim.packet import Packet


def _prefix_len(cidr: str) -> int:
    return int(cidr.split("/")[1]) if "/" in cidr else 32


def _mask_ip(ip: str, prefix_len: int) -> int:
    """The first ``prefix_len`` bits of ``ip`` as an integer."""
    if prefix_len <= 0:
        return 0
    mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
    return ip_to_int(ip) & mask


@dataclasses.dataclass(frozen=True)
class MatchMask:
    """Which classification fields a decision depended on.

    IP fields carry a prefix length (0 = fully wildcarded); exact
    fields are boolean (examined or not).  Masks form a join
    semilattice under :meth:`union` — the megaflow derivation unions
    the contribution of every rule a linear scan examined, yielding
    the *minimal* set of bits that pins the scan's outcome.
    """

    src_plen: int = 0
    dst_plen: int = 0
    protocol: bool = False
    src_port: bool = False
    dst_port: bool = False
    owner: bool = False

    def union(self, other: "MatchMask") -> "MatchMask":
        """The least mask at least as specific as both operands."""
        return MatchMask(
            src_plen=max(self.src_plen, other.src_plen),
            dst_plen=max(self.dst_plen, other.dst_plen),
            protocol=self.protocol or other.protocol,
            src_port=self.src_port or other.src_port,
            dst_port=self.dst_port or other.dst_port,
            owner=self.owner or other.owner,
        )

    def key_for(self, packet: Packet) -> tuple:
        """``packet`` projected onto this mask's fields.

        Unexamined fields collapse to fixed sentinels so every packet
        agreeing on the examined bits produces the same key.
        """
        return (
            _mask_ip(packet.src, self.src_plen) if self.src_plen else 0,
            _mask_ip(packet.dst, self.dst_plen) if self.dst_plen else 0,
            packet.protocol if self.protocol else "",
            packet.src_port if self.src_port else -1,
            packet.dst_port if self.dst_port else -1,
            packet.owner if self.owner else "",
        )


#: The fully wildcarded mask (examines nothing; one key for all packets).
EMPTY_MASK = MatchMask()


@dataclasses.dataclass(frozen=True)
class Match:
    """A conjunction of optional packet predicates."""

    src_cidr: str | None = None
    dst_cidr: str | None = None
    protocol: str | None = None
    src_port: int | None = None
    dst_port: int | None = None
    owner: str | None = None

    def matches(self, packet: Packet) -> bool:
        """True iff every set predicate holds for ``packet``."""
        if self.protocol is not None and packet.protocol != self.protocol:
            return False
        if self.src_port is not None and packet.src_port != self.src_port:
            return False
        if self.dst_port is not None and packet.dst_port != self.dst_port:
            return False
        if self.owner is not None and packet.owner != self.owner:
            return False
        if self.src_cidr is not None and not ip_in_subnet(packet.src, self.src_cidr):
            return False
        if self.dst_cidr is not None and not ip_in_subnet(packet.dst, self.dst_cidr):
            return False
        return True

    def mask(self) -> MatchMask:
        """The mask of every field this match examines.

        A packet that *matches* this rule was compared against every
        set predicate, so the megaflow for it must pin all of them.
        """
        return MatchMask(
            src_plen=_prefix_len(self.src_cidr) if self.src_cidr else 0,
            dst_plen=_prefix_len(self.dst_cidr) if self.dst_cidr else 0,
            protocol=self.protocol is not None,
            src_port=self.src_port is not None,
            dst_port=self.dst_port is not None,
            owner=self.owner is not None,
        )

    def mismatch_mask(self, packet: Packet) -> MatchMask:
        """The mask of the *first* predicate that rejects ``packet``.

        A rule fails as soon as one predicate fails, so pinning that
        single field (at the rule's prefix length for IP fields) is
        enough to make every packet with the same masked value fail
        the rule the same way.  Field order mirrors :meth:`matches`.
        Raises if the packet actually matches (caller bug).
        """
        if self.protocol is not None and packet.protocol != self.protocol:
            return MatchMask(protocol=True)
        if self.src_port is not None and packet.src_port != self.src_port:
            return MatchMask(src_port=True)
        if self.dst_port is not None and packet.dst_port != self.dst_port:
            return MatchMask(dst_port=True)
        if self.owner is not None and packet.owner != self.owner:
            return MatchMask(owner=True)
        if self.src_cidr is not None and not ip_in_subnet(packet.src, self.src_cidr):
            return MatchMask(src_plen=_prefix_len(self.src_cidr))
        if self.dst_cidr is not None and not ip_in_subnet(packet.dst, self.dst_cidr):
            return MatchMask(dst_plen=_prefix_len(self.dst_cidr))
        raise ValueError(
            f"mismatch_mask called on a matching packet (match {self!r})"
        )

    def specificity(self) -> int:
        """How many bits of packet this match constrains (for conflicts).

        IP prefixes contribute their prefix length; exact fields
        contribute fixed weights.  Higher = more specific.
        """
        score = 0
        for cidr in (self.src_cidr, self.dst_cidr):
            if cidr is not None:
                score += int(cidr.split("/")[1]) if "/" in cidr else 32
        if self.protocol is not None:
            score += 8
        for port in (self.src_port, self.dst_port):
            if port is not None:
                score += 16
        if self.owner is not None:
            score += 16
        return score

    def could_overlap(self, other: "Match") -> bool:
        """Conservative overlap test: can some packet match both?

        Exact fields must agree when both set; CIDR fields must nest.
        False negatives are impossible; false positives are acceptable
        (they just trigger a priority check at install time).
        """
        for mine, theirs in (
            (self.protocol, other.protocol),
            (self.src_port, other.src_port),
            (self.dst_port, other.dst_port),
            (self.owner, other.owner),
        ):
            if mine is not None and theirs is not None and mine != theirs:
                return False
        for mine, theirs in (
            (self.src_cidr, other.src_cidr),
            (self.dst_cidr, other.dst_cidr),
        ):
            if mine is not None and theirs is not None:
                if not _cidrs_overlap(mine, theirs):
                    return False
        return True


def _cidrs_overlap(a: str, b: str) -> bool:
    """True if two CIDR blocks intersect (one contains the other)."""
    base_a = a.split("/")[0]
    base_b = b.split("/")[0]
    return ip_in_subnet(base_a, b) or ip_in_subnet(base_b, a)


#: The lowest-priority catch-all used for table-miss handling.
MATCH_ANY = Match()
