"""Path computation and path-rule generation.

Given a :class:`~repro.netsim.topology.PhysicalTopology` and a
controller, these helpers install the forwarding rules that realise a
path — either plain shortest paths for baseline traffic or waypointed
paths that visit the NFV host carrying a PVN's middlebox chain.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ConfigurationError
from repro.netsim.topology import PhysicalTopology
from repro.sdn.actions import Output
from repro.sdn.controller import Controller
from repro.sdn.match import Match


def shortest_path(topo: PhysicalTopology, src: str, dst: str) -> list[str]:
    """Latency-weighted shortest path, raising on disconnection.

    Delegates to :meth:`PhysicalTopology.shortest_path` so links taken
    down by fault injection are avoided by routing and placement alike.
    """
    try:
        return topo.shortest_path(src, dst)
    except nx.NodeNotFound as exc:
        raise ConfigurationError(f"no path {src} -> {dst}: {exc}") from exc


def waypointed_path(
    topo: PhysicalTopology, src: str, dst: str, waypoints: list[str]
) -> list[str]:
    """Shortest path visiting ``waypoints`` in order (loops allowed).

    This is how traffic is steered through the NFV host(s) carrying a
    PVN's chain: src -> w1 -> w2 -> ... -> dst, each leg shortest-path.
    """
    stops = [src, *waypoints, dst]
    full: list[str] = [src]
    for a, b in zip(stops, stops[1:]):
        leg = shortest_path(topo, a, b)
        full.extend(leg[1:])
    return full


def path_stretch(
    topo: PhysicalTopology, src: str, dst: str, waypoints: list[str]
) -> float:
    """Latency of the waypointed path over the direct shortest path.

    1.0 = on-path placement (no stretch); the auditor's path-inflation
    test flags deployments whose measured stretch exceeds what the
    offered topology implies.
    """
    direct = topo.path_latency(shortest_path(topo, src, dst))
    via = topo.path_latency(waypointed_path(topo, src, dst, waypoints))
    if direct <= 0:
        return 1.0
    return via / direct


def install_path_rules(
    controller: Controller,
    path: list[str],
    match: Match,
    priority: int = 100,
    pvn_id: str = "",
) -> int:
    """Install ``Output`` rules along ``path`` for packets matching.

    Only nodes the controller manages (SDN switches) get rules; hosts
    and plain routers on the path are skipped.  Returns the number of
    rules installed.
    """
    installed = 0
    for node, nxt in zip(path, path[1:]):
        if node not in controller.switch_names:
            continue
        controller.install(
            node, match, (Output(nxt),), priority=priority, pvn_id=pvn_id
        )
        installed += 1
    return installed
