"""SDN substrate: match/action flow tables, switches, controller."""

from repro.sdn.actions import (
    Action,
    Drop,
    Mirror,
    Output,
    SetField,
    ToChain,
    Tunnel,
)
from repro.sdn.controller import Controller, InstalledRule
from repro.sdn.flowcache import CacheEntry, FlowCache
from repro.sdn.flowtable import FlowRule, FlowTable
from repro.sdn.match import MATCH_ANY, Match
from repro.sdn.routing import (
    install_path_rules,
    path_stretch,
    shortest_path,
    waypointed_path,
)
from repro.sdn.switch import SdnSwitch
from repro.sdn.verification import (
    VerificationReport,
    check_isolation,
    check_loop_freedom,
    check_no_blackholes,
    trace_forwarding,
    verify_all,
)

__all__ = [
    "Action",
    "CacheEntry",
    "Controller",
    "Drop",
    "FlowCache",
    "FlowRule",
    "FlowTable",
    "InstalledRule",
    "MATCH_ANY",
    "Match",
    "Mirror",
    "Output",
    "SdnSwitch",
    "SetField",
    "ToChain",
    "Tunnel",
    "VerificationReport",
    "check_isolation",
    "check_loop_freedom",
    "check_no_blackholes",
    "install_path_rules",
    "path_stretch",
    "shortest_path",
    "trace_forwarding",
    "verify_all",
    "waypointed_path",
]
