"""Exact-match microflow cache for the SDN fast path (OVS-style).

A :class:`FlowCache` memoizes, per exact packet key (five-tuple +
``owner`` + ingress), the *winning* :class:`~repro.sdn.flowtable.FlowRule`
of a priority flow table together with its pre-resolved action closure.
The first packet of a flow pays the linear table scan and the action
compilation; every later packet of the same flow is a dict hit plus a
direct closure call, so per-packet cost no longer grows with the total
number of installed PVN rules (§4's "can access ISPs afford a virtual
network per device?" made O(1) instead of O(rules)).

Correctness rests on two fences:

* **Table generation** — :class:`~repro.sdn.flowtable.FlowTable` bumps
  a monotone ``generation`` counter on every ``install`` / ``remove`` /
  ``remove_pvn``.  A cache whose entries were filled under an older
  generation flushes itself before serving anything (lazy), and the
  controller flushes eagerly on rule pushes, so a cached winner can
  never shadow a newly installed higher-priority rule nor survive its
  own removal.
* **Epoch fence** — migration cutovers advance an epoch token
  (:meth:`fence`).  A token change flushes everything, so a cached
  pipeline closure compiled against a superseded deployment is never
  served after the cutover.

Misses are cached too (negative entries): a flow that punts to the
controller keeps punting without re-scanning the table.

The cache keeps ``hits`` / ``misses`` / ``invalidations`` /
``insertions`` / ``evictions`` counters and can publish them through
the existing :class:`~repro.netsim.trace.Tracer` (category
``"flowcache"``) so experiments can observe cache behavior.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable

from repro.netsim.packet import Packet
from repro.netsim.trace import Tracer
from repro.obs import runtime as obs_runtime
from repro.sdn.flowtable import FlowRule

#: What a cache entry executes: the pre-resolved action closure.
ActionClosure = Callable[[Packet], None]

#: Default entry bound; far above any experiment's concurrent flow count.
DEFAULT_CAPACITY = 65536


@dataclasses.dataclass
class CacheEntry:
    """One memoized lookup result.

    ``rule`` is ``None`` for a negative entry (table miss); ``closure``
    is then the punt/drop path.  ``generation`` records the table
    generation the entry was filled under.
    """

    rule: FlowRule | None
    closure: ActionClosure
    generation: int


class FlowCache:
    """Exact-match memoization in front of a priority flow table."""

    def __init__(
        self,
        name: str = "flowcache",
        capacity: int = DEFAULT_CAPACITY,
        tracer: Tracer | None = None,
    ) -> None:
        self.name = name
        self.capacity = max(1, capacity)
        self.tracer = tracer
        self.enabled = True
        self._entries: "collections.OrderedDict[tuple, CacheEntry]" = (
            collections.OrderedDict()
        )
        self._generation = 0          # table generation entries are valid for
        self._epoch_token: object = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0        # entries dropped by flushes
        self.flushes = 0              # flush events
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(packet: Packet, ingress: str = "") -> tuple:
        """The exact-match key: five-tuple + owner + ingress port."""
        return (*packet.flow_key(), ingress)

    # -- invalidation fences ------------------------------------------------

    def ensure_generation(self, generation: int, now: float = 0.0) -> None:
        """Flush iff the table moved past the cached generation."""
        if generation != self._generation:
            self.flush(f"table generation {self._generation} -> {generation}",
                       now=now)
            self._generation = generation

    def fence(self, token: object, now: float = 0.0) -> None:
        """Adopt an epoch-fence token; a change flushes everything.

        Migration cutovers call this so closures compiled against the
        superseded deployment can never serve post-cutover traffic.
        """
        if token != self._epoch_token:
            if self._entries:
                self.flush(f"epoch fence {self._epoch_token!r} -> {token!r}",
                           now=now)
            self._epoch_token = token

    def flush(self, reason: str = "", now: float = 0.0) -> int:
        """Drop every entry; returns how many were invalidated."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.invalidations += dropped
        self.flushes += 1
        if self.tracer is not None:
            self.tracer.emit(
                now, "flowcache", self.name, event="flush",
                invalidated=dropped, reason=reason,
            )
        return dropped

    # -- the fast path ------------------------------------------------------

    def get(self, packet: Packet, generation: int, ingress: str = "",
            now: float = 0.0) -> CacheEntry | None:
        """The memoized entry for ``packet``, or None on a cache miss.

        Checks the table-generation fence first, so a stale cache never
        answers.
        """
        if not self.enabled:
            return None
        self.ensure_generation(generation, now=now)
        entry = self._entries.get(self.key_for(packet, ingress))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        packet: Packet,
        rule: FlowRule | None,
        closure: ActionClosure,
        generation: int,
        ingress: str = "",
    ) -> CacheEntry:
        """Memoize one lookup result (evicting FIFO at capacity)."""
        entry = CacheEntry(rule=rule, closure=closure, generation=generation)
        if self.enabled:
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[self.key_for(packet, ingress)] = entry
            self.insertions += 1
        return entry

    # -- observability ------------------------------------------------------

    def counters(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "flushes": self.flushes,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def publish(self, now: float, tracer: Tracer | None = None) -> None:
        """Emit a counter snapshot (category ``"flowcache"``).

        Tracer records are byte-identical to the datapath refactor's;
        with observability enabled the totals also fold into the
        metrics registry (``repro_flowcache_events_total`` counters
        plus a ``repro_flowcache_entries`` gauge).
        """
        # Explicit None check: an empty Tracer is falsy (__len__ == 0).
        sink = tracer if tracer is not None else self.tracer
        if sink is not None:
            sink.emit(now, "flowcache", self.name, event="counters",
                      **self.counters())
        obs = obs_runtime.current()
        if obs is not None:
            totals = self.counters()
            entries = totals.pop("entries")
            obs.metrics.fold_totals(
                "repro_flowcache_events",
                "Microflow-cache hit/miss/invalidation totals",
                ("cache",), {"cache": self.name}, totals, extra_label="event",
            )
            obs.metrics.gauge(
                "repro_flowcache_entries",
                "Live microflow-cache entries", ("cache",),
            ).labels(cache=self.name).set(entries)
