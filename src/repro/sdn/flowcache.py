"""Flow caches for the SDN fast path (OVS-style): microflow + megaflow.

A :class:`FlowCache` memoizes, per exact packet key (five-tuple +
``owner`` + ingress), the *winning* :class:`~repro.sdn.flowtable.FlowRule`
of a priority flow table together with its pre-resolved action closure.
The first packet of a flow pays the linear table scan and the action
compilation; every later packet of the same flow is a dict hit plus a
direct closure call, so per-packet cost no longer grows with the total
number of installed PVN rules (§4's "can access ISPs afford a virtual
network per device?" made O(1) instead of O(rules)).

A :class:`MegaflowCache` sits behind it for the flows the exact-match
tier cannot help with: the *first* packet of every new five-tuple.
Instead of one entry per microflow it holds one entry per
``(wildcard mask, masked key)`` — the minimal match superset derived
by rule cross-producting (:meth:`~repro.sdn.flowtable.FlowTable.classify`).
Under flow churn (new ports per connection) every new microflow whose
masked fields are unchanged hits the megaflow tier and never pays the
linear scan; the switch's lookup order is microflow -> megaflow ->
full classification.  Soundness of serving any megaflow hit comes from
the mask derivation: two packets with equal masked keys provably take
the identical accept/reject path through the rule table, so whichever
entry matches first yields the same winner.

Correctness rests on two fences:

* **Table generation** — :class:`~repro.sdn.flowtable.FlowTable` bumps
  a monotone ``generation`` counter on every ``install`` / ``remove`` /
  ``remove_pvn``.  A cache whose entries were filled under an older
  generation flushes itself before serving anything (lazy), and the
  controller flushes eagerly on rule pushes, so a cached winner can
  never shadow a newly installed higher-priority rule nor survive its
  own removal.
* **Epoch fence** — migration cutovers advance an epoch token
  (:meth:`fence`).  A token change flushes everything, so a cached
  pipeline closure compiled against a superseded deployment is never
  served after the cutover.

Misses are cached too (negative entries): a flow that punts to the
controller keeps punting without re-scanning the table.

The cache keeps ``hits`` / ``misses`` / ``invalidations`` /
``insertions`` / ``evictions`` counters and can publish them through
the existing :class:`~repro.netsim.trace.Tracer` (category
``"flowcache"``) so experiments can observe cache behavior.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable

from repro.netsim.packet import Packet
from repro.netsim.trace import Tracer
from repro.obs import runtime as obs_runtime
from repro.sdn.flowtable import FlowRule
from repro.sdn.match import MatchMask

#: What a cache entry executes: the pre-resolved action closure.
ActionClosure = Callable[[Packet], None]

#: Default entry bound; far above any experiment's concurrent flow count.
DEFAULT_CAPACITY = 65536

#: Megaflow lookups between mask-list re-sorts (see MegaflowCache).
MASK_RESORT_INTERVAL = 512


@dataclasses.dataclass
class CacheEntry:
    """One memoized lookup result.

    ``rule`` is ``None`` for a negative entry (table miss); ``closure``
    is then the punt/drop path.  ``generation`` records the table
    generation the entry was filled under.
    """

    rule: FlowRule | None
    closure: ActionClosure
    generation: int


class FlowCache:
    """Exact-match memoization in front of a priority flow table."""

    def __init__(
        self,
        name: str = "flowcache",
        capacity: int = DEFAULT_CAPACITY,
        tracer: Tracer | None = None,
    ) -> None:
        self.name = name
        self.capacity = max(1, capacity)
        self.tracer = tracer
        self.enabled = True
        self._entries: "collections.OrderedDict[tuple, CacheEntry]" = (
            collections.OrderedDict()
        )
        self._generation = 0          # table generation entries are valid for
        self._epoch_token: object = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0        # entries dropped by flushes
        self.flushes = 0              # flush events
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(packet: Packet, ingress: str = "") -> tuple:
        """The exact-match key: five-tuple + owner + ingress port."""
        return (*packet.flow_key(), ingress)

    # -- invalidation fences ------------------------------------------------

    def ensure_generation(self, generation: int, now: float = 0.0) -> None:
        """Flush iff the table moved past the cached generation."""
        if generation != self._generation:
            self.flush(f"table generation {self._generation} -> {generation}",
                       now=now)
            self._generation = generation

    def fence(self, token: object, now: float = 0.0) -> None:
        """Adopt an epoch-fence token; a change flushes everything.

        Migration cutovers call this so closures compiled against the
        superseded deployment can never serve post-cutover traffic.
        """
        if token != self._epoch_token:
            if self._entries:
                self.flush(f"epoch fence {self._epoch_token!r} -> {token!r}",
                           now=now)
            self._epoch_token = token

    def flush(self, reason: str = "", now: float = 0.0) -> int:
        """Drop every entry; returns how many were invalidated."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.invalidations += dropped
        self.flushes += 1
        if self.tracer is not None:
            self.tracer.emit(
                now, "flowcache", self.name, event="flush",
                invalidated=dropped, reason=reason,
            )
        return dropped

    # -- the fast path ------------------------------------------------------

    def get(self, packet: Packet, generation: int, ingress: str = "",
            now: float = 0.0) -> CacheEntry | None:
        """The memoized entry for ``packet``, or None on a cache miss.

        Checks the table-generation fence first, so a stale cache never
        answers.
        """
        if not self.enabled:
            return None
        self.ensure_generation(generation, now=now)
        key = self.key_for(packet, ingress)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        # LRU, not FIFO: a hit refreshes the entry's position so hot
        # long-lived flows survive capacity pressure from bursts of
        # one-packet flows (which age out from the cold end instead).
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(
        self,
        packet: Packet,
        rule: FlowRule | None,
        closure: ActionClosure,
        generation: int,
        ingress: str = "",
    ) -> CacheEntry:
        """Memoize one lookup result (evicting least-recently-used)."""
        entry = CacheEntry(rule=rule, closure=closure, generation=generation)
        if self.enabled:
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[self.key_for(packet, ingress)] = entry
            self.insertions += 1
        return entry

    # -- observability ------------------------------------------------------

    def counters(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "flushes": self.flushes,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def publish(self, now: float, tracer: Tracer | None = None) -> None:
        """Emit a counter snapshot (category ``"flowcache"``).

        Tracer records are byte-identical to the datapath refactor's;
        with observability enabled the totals also fold into the
        metrics registry (``repro_flowcache_events_total`` counters
        plus a ``repro_flowcache_entries`` gauge).
        """
        # Explicit None check: an empty Tracer is falsy (__len__ == 0).
        sink = tracer if tracer is not None else self.tracer
        if sink is not None:
            sink.emit(now, "flowcache", self.name, event="counters",
                      **self.counters())
        obs = obs_runtime.current()
        if obs is not None:
            totals = self.counters()
            entries = totals.pop("entries")
            obs.metrics.fold_totals(
                "repro_flowcache_events",
                "Microflow-cache hit/miss/invalidation totals",
                ("cache",), {"cache": self.name}, totals, extra_label="event",
            )
            obs.metrics.gauge(
                "repro_flowcache_entries",
                "Live microflow-cache entries", ("cache",),
            ).labels(cache=self.name).set(entries)


class MegaflowCache:
    """Wildcard megaflow tier: one entry per (mask, masked key).

    Entries are produced by :meth:`~repro.sdn.flowtable.FlowTable.classify`
    — the winner plus the minimal mask whose bits pin the whole
    accept/reject path of the linear scan — so a hit under *any*
    stored mask is guaranteed to yield the same winner the full scan
    would.  Lookup probes each distinct mask of the mask list (the
    OVS datapath's mask list); the number of distinct masks tracks the
    number of distinct field-combinations the rule table examines,
    which is small in practice and reported as a gauge.

    The mask list is kept sorted by *observed hit frequency*: every
    ``resort_interval`` lookups it is re-sorted by descending
    per-mask hit count (mask insertion order breaks ties, so the order
    is deterministic).  A lookup walks masks until one matches, so the
    expected probe count is minimized when the hottest masks sit at
    the front — the same trick the OVS kernel datapath plays with its
    per-CPU mask cache.  Because all matching entries agree on the
    winner (the derivation invariant above), probe order is
    unobservable in results; the three-way equivalence property in
    the megaflow test suite pins that down.

    The same two fences as :class:`FlowCache` apply — table-generation
    (lazy) and epoch token (migration cutovers) — so a megaflow can
    never serve a stale winner or a superseded closure.  Eviction is
    LRU across all masks.
    """

    def __init__(
        self,
        name: str = "megaflow",
        capacity: int = DEFAULT_CAPACITY,
        tracer: Tracer | None = None,
        resort_interval: int = MASK_RESORT_INTERVAL,
    ) -> None:
        self.name = name
        self.capacity = max(1, capacity)
        self.tracer = tracer
        self.enabled = True
        self.resort_interval = max(1, resort_interval)
        # Lookup stores, one dict per distinct mask, probed in
        # _mask_order (descending hit count, periodically re-sorted).
        self._by_mask: dict[MatchMask, dict[tuple, CacheEntry]] = {}
        self._mask_order: list[MatchMask] = []
        self._mask_hits: dict[MatchMask, int] = {}
        self._mask_seq: dict[MatchMask, int] = {}   # insertion tiebreak
        self._next_mask_seq = 0
        self._lookups_since_resort = 0
        # Recency order over (mask, key) pairs; value is unused.
        self._lru: "collections.OrderedDict[tuple, None]" = (
            collections.OrderedDict()
        )
        self._generation = 0
        self._epoch_token: object = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.flushes = 0
        self.insertions = 0
        self.evictions = 0
        self.resorts = 0              # re-sorts that changed the order

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def mask_count(self) -> int:
        """Distinct wildcard masks currently cached."""
        return len(self._by_mask)

    @property
    def mask_order(self) -> tuple[MatchMask, ...]:
        """Current probe order (hottest first after a re-sort)."""
        return tuple(self._mask_order)

    # -- invalidation fences ------------------------------------------------

    def ensure_generation(self, generation: int, now: float = 0.0) -> None:
        """Flush iff the table moved past the cached generation."""
        if generation != self._generation:
            self.flush(f"table generation {self._generation} -> {generation}",
                       now=now)
            self._generation = generation

    def fence(self, token: object, now: float = 0.0) -> None:
        """Adopt an epoch-fence token; a change flushes everything."""
        if token != self._epoch_token:
            if self._lru:
                self.flush(f"epoch fence {self._epoch_token!r} -> {token!r}",
                           now=now)
            self._epoch_token = token

    def flush(self, reason: str = "", now: float = 0.0) -> int:
        """Drop every entry (and every mask); returns the count."""
        dropped = len(self._lru)
        self._by_mask.clear()
        self._lru.clear()
        self._mask_order.clear()
        self._mask_hits.clear()
        self._mask_seq.clear()
        self._lookups_since_resort = 0
        if dropped:
            self.invalidations += dropped
        self.flushes += 1
        if self.tracer is not None:
            self.tracer.emit(
                now, "megaflow", self.name, event="flush",
                invalidated=dropped, reason=reason,
            )
        return dropped

    # -- the fast path ------------------------------------------------------

    def get(self, packet: Packet, generation: int,
            now: float = 0.0) -> CacheEntry | None:
        """The first megaflow entry matching ``packet``, or None.

        Probes the mask list hottest-first; by the derivation
        invariant all matching entries agree on the winner, so the
        first suffices regardless of order.
        """
        if not self.enabled:
            return None
        self.ensure_generation(generation, now=now)
        self._lookups_since_resort += 1
        if self._lookups_since_resort >= self.resort_interval:
            self._resort_masks(now=now)
        for mask in self._mask_order:
            key = mask.key_for(packet)
            entry = self._by_mask[mask].get(key)
            if entry is not None:
                self._mask_hits[mask] += 1
                self._lru.move_to_end((mask, key))
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def _resort_masks(self, now: float = 0.0) -> None:
        """Reorder the mask list by descending observed hit count.

        Ties keep mask insertion order, so the result is a pure
        function of the lookup history — deterministic across runs.
        Counted (and traced) only when the order actually changes.
        """
        self._lookups_since_resort = 0
        order = sorted(
            self._mask_order,
            key=lambda m: (-self._mask_hits[m], self._mask_seq[m]),
        )
        if order != self._mask_order:
            self._mask_order = order
            self.resorts += 1
            if self.tracer is not None:
                self.tracer.emit(
                    now, "megaflow", self.name, event="mask_resort",
                    masks=len(order),
                )

    def put(
        self,
        packet: Packet,
        mask: MatchMask,
        rule: FlowRule | None,
        closure: ActionClosure,
        generation: int,
    ) -> CacheEntry:
        """Memoize one classification under its derived mask."""
        entry = CacheEntry(rule=rule, closure=closure, generation=generation)
        if self.enabled:
            while len(self._lru) >= self.capacity:
                (old_mask, old_key), _ = self._lru.popitem(last=False)
                store = self._by_mask.get(old_mask)
                if store is not None:
                    store.pop(old_key, None)
                    if not store:
                        self._drop_mask(old_mask)
                self.evictions += 1
            key = mask.key_for(packet)
            store = self._by_mask.get(mask)
            if store is None:
                # New mask enters at the tail of the probe order with
                # a zero hit count; re-sorts promote it if it turns
                # out hot.
                store = self._by_mask[mask] = {}
                self._mask_order.append(mask)
                self._mask_hits[mask] = 0
                self._mask_seq[mask] = self._next_mask_seq
                self._next_mask_seq += 1
            store[key] = entry
            self._lru[(mask, key)] = None
            self.insertions += 1
        return entry

    def _drop_mask(self, mask: MatchMask) -> None:
        """Remove a mask whose last entry was evicted."""
        del self._by_mask[mask]
        self._mask_order.remove(mask)
        del self._mask_hits[mask]
        del self._mask_seq[mask]

    # -- observability ------------------------------------------------------

    def counters(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "flushes": self.flushes,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "mask_resorts": self.resorts,
            "entries": len(self._lru),
            "masks": len(self._by_mask),
        }

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def publish(self, now: float, tracer: Tracer | None = None) -> None:
        """Emit a counter snapshot (category ``"megaflow"``).

        With observability enabled the totals also fold into the
        metrics registry (``repro_megaflow_events_total`` plus entry
        and mask-count gauges) so hit rates ship as CI artifacts.
        """
        # Explicit None check: an empty Tracer is falsy (__len__ == 0).
        sink = tracer if tracer is not None else self.tracer
        if sink is not None:
            sink.emit(now, "megaflow", self.name, event="counters",
                      **self.counters())
        obs = obs_runtime.current()
        if obs is not None:
            totals = self.counters()
            entries = totals.pop("entries")
            masks = totals.pop("masks")
            obs.metrics.fold_totals(
                "repro_megaflow_events",
                "Megaflow-cache hit/miss/invalidation totals",
                ("cache",), {"cache": self.name}, totals, extra_label="event",
            )
            gauge = obs.metrics.gauge(
                "repro_megaflow_entries",
                "Live megaflow-cache entries", ("cache",),
            )
            gauge.labels(cache=self.name).set(entries)
            obs.metrics.gauge(
                "repro_megaflow_masks",
                "Distinct wildcard masks cached", ("cache",),
            ).labels(cache=self.name).set(masks)
