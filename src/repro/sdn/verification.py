"""Configuration invariant checks.

§3.2: "PVNs will leverage existing techniques to prove that any given
network configuration is valid according to important invariants, thus
avoiding problems from configuration conflicts."  This module provides
those checks over a set of controller-managed switches:

* **loop freedom** — following ``Output`` actions for a probe packet
  never revisits a switch;
* **no blackholes** — every switch a probe reaches has a matching rule;
* **isolation** — every rule installed under a PVN id matches only that
  subscriber's traffic.
"""

from __future__ import annotations

import dataclasses

from repro.netsim.packet import Packet
from repro.sdn.actions import Drop, Output, ToChain, Tunnel
from repro.sdn.controller import Controller


@dataclasses.dataclass(frozen=True)
class VerificationReport:
    """Outcome of an invariant check."""

    ok: bool
    violations: tuple[str, ...] = ()


def _winning_rule(controller: Controller, switch_name: str, probe: Packet):
    switch = controller.switch(switch_name)
    for rule in switch.table.rules:
        if rule.match.matches(probe):
            return rule
    return None


def trace_forwarding(
    controller: Controller, start_switch: str, probe: Packet, max_hops: int = 64
) -> list[str]:
    """The switch-level path a probe would take (Output actions only).

    Stops at a Drop/ToChain/Tunnel action, a table miss, or a node the
    controller does not manage (assumed to be an egress).
    """
    path = [start_switch]
    current = start_switch
    for _ in range(max_hops):
        rule = _winning_rule(controller, current, probe)
        if rule is None:
            return path
        next_hop = None
        for action in rule.actions:
            if isinstance(action, (Drop, ToChain, Tunnel)):
                return path
            if isinstance(action, Output):
                next_hop = action.neighbor
                break
        if next_hop is None:
            return path
        path.append(next_hop)
        if next_hop not in controller.switch_names:
            return path
        current = next_hop
    return path


def check_loop_freedom(
    controller: Controller, probes: list[tuple[str, Packet]]
) -> VerificationReport:
    """No probe's forwarding trace revisits a switch."""
    violations = []
    for start, probe in probes:
        path = trace_forwarding(controller, start, probe)
        seen: set[str] = set()
        for node in path:
            if node in seen:
                violations.append(
                    f"loop through {node} for probe to {probe.dst} from {start}"
                )
                break
            seen.add(node)
    return VerificationReport(ok=not violations, violations=tuple(violations))


def check_no_blackholes(
    controller: Controller, probes: list[tuple[str, Packet]]
) -> VerificationReport:
    """Every probe either egresses, is chained/tunneled, or is
    explicitly dropped — never lost to a table miss."""
    violations = []
    for start, probe in probes:
        path = trace_forwarding(controller, start, probe)
        last = path[-1]
        if last not in controller.switch_names:
            continue  # egressed to a host/router: fine
        rule = _winning_rule(controller, last, probe)
        if rule is None:
            violations.append(
                f"blackhole at {last} for probe to {probe.dst} from {start}"
            )
    return VerificationReport(ok=not violations, violations=tuple(violations))


def check_isolation(controller: Controller) -> VerificationReport:
    """Every PVN-owned rule is scoped to its subscriber's traffic."""
    violations = []
    for switch_name in controller.switch_names:
        for rule in controller.switch(switch_name).table.rules:
            if not rule.pvn_id:
                continue
            user = rule.pvn_id.split("/")[0]
            if rule.match.owner != user:
                violations.append(
                    f"rule {rule.rule_id} on {switch_name} belongs to "
                    f"{rule.pvn_id} but matches owner={rule.match.owner!r}"
                )
    return VerificationReport(ok=not violations, violations=tuple(violations))


def verify_all(
    controller: Controller, probes: list[tuple[str, Packet]]
) -> VerificationReport:
    """Run every invariant; aggregate the violations."""
    reports = (
        check_loop_freedom(controller, probes),
        check_no_blackholes(controller, probes),
        check_isolation(controller),
    )
    violations = tuple(v for report in reports for v in report.violations)
    return VerificationReport(ok=not violations, violations=violations)
