"""The SDN switch: a node that forwards according to its flow table.

Chain actions hand the packet to a registered chain executor (the NFV
layer registers these); the executor returns the packet to continue —
possibly modified — or ``None`` if the chain consumed or dropped it.
Tunnel actions hand the packet to a registered tunnel encapsulator the
same way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.sdn.actions import Drop, Mirror, Output, SetField, ToChain, Tunnel
from repro.sdn.flowtable import FlowTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.link import Link
    from repro.netsim.simulator import Simulator

ChainExecutor = Callable[[Packet, str], Packet | None]
TunnelEncap = Callable[[Packet, str], None]
PacketInHandler = Callable[["SdnSwitch", Packet], None]


class SdnSwitch(Node):
    """A match/action forwarding element."""

    def __init__(self, sim: "Simulator", name: str) -> None:
        super().__init__(sim, name)
        self.table = FlowTable(name=f"{name}.table0")
        self._chain_executors: dict[str, ChainExecutor] = {}
        self._tunnel_encaps: dict[str, TunnelEncap] = {}
        self._packet_in: PacketInHandler | None = None
        self.packets_forwarded = 0
        self.packets_dropped = 0

    # -- control-plane wiring ----------------------------------------------

    def bind_chain(self, chain_id: str, executor: ChainExecutor) -> None:
        """Register the executor invoked by ``ToChain(chain_id)``."""
        self._chain_executors[chain_id] = executor

    def bind_tunnel(self, endpoint: str, encap: TunnelEncap) -> None:
        """Register the encapsulator invoked by ``Tunnel(endpoint)``."""
        self._tunnel_encaps[endpoint] = encap

    def set_packet_in_handler(self, handler: PacketInHandler | None) -> None:
        """Table-miss handler (the controller registers itself here)."""
        self._packet_in = handler

    # -- data plane ----------------------------------------------------------

    def receive(self, packet: Packet, link: "Link") -> None:
        super().receive(packet, link)
        self.process(packet)

    def process(self, packet: Packet) -> None:
        """Run ``packet`` through the table and apply the winning rule."""
        rule = self.table.lookup(packet)
        if rule is None:
            if self._packet_in is not None:
                self._packet_in(self, packet)
            else:
                self.packets_dropped += 1
                packet.mark_dropped(f"table miss at {self.name}")
            return
        self.apply_actions(packet, rule.actions)

    def apply_actions(self, packet: Packet, actions: tuple) -> None:
        for action in actions:
            if isinstance(action, Drop):
                self.packets_dropped += 1
                packet.mark_dropped(f"{action.reason} at {self.name}")
                return
            if isinstance(action, SetField):
                action.apply(packet)
                continue
            if isinstance(action, Mirror):
                clone = packet.copy()
                clone.metadata["mirrored_from"] = self.name
                self.send(clone, via=action.neighbor)
                continue
            if isinstance(action, ToChain):
                self._run_chain(packet, action)
                return
            if isinstance(action, Tunnel):
                self._run_tunnel(packet, action)
                return
            if isinstance(action, Output):
                self.packets_forwarded += 1
                self.send(packet, via=action.neighbor)
                return
            raise ConfigurationError(f"unknown action {action!r}")
        # An action list that never forwarded nor dropped is a config bug;
        # fail loudly rather than silently blackholing.
        raise ConfigurationError(
            f"rule actions for packet {packet.packet_id} at {self.name} "
            "did not terminate (missing Output/Drop)"
        )

    def _run_chain(self, packet: Packet, action: ToChain) -> None:
        executor = self._chain_executors.get(action.chain_id)
        if executor is None:
            self.packets_dropped += 1
            packet.mark_dropped(
                f"chain {action.chain_id} not bound at {self.name}"
            )
            return
        result = executor(packet, action.chain_id)
        if result is None:
            return  # chain consumed (blocked/tunneled) the packet
        if action.resume_neighbor:
            self.packets_forwarded += 1
            # Executors report middlebox processing time out of band so
            # the data plane can charge it before resuming.
            delay = float(result.metadata.pop("chain_delay", 0.0))
            if delay > 0:
                self.sim.schedule(delay, self.send, result,
                                  action.resume_neighbor)
            else:
                self.send(result, via=action.resume_neighbor)

    def _run_tunnel(self, packet: Packet, action: Tunnel) -> None:
        encap = self._tunnel_encaps.get(action.endpoint)
        if encap is None:
            self.packets_dropped += 1
            packet.mark_dropped(
                f"tunnel to {action.endpoint} not bound at {self.name}"
            )
            return
        encap(packet, action.endpoint)
