"""The SDN switch: a node that forwards according to its flow table.

Chain actions hand the packet to a registered chain executor (the NFV
layer registers these); the executor returns the packet to continue —
possibly modified — or ``None`` if the chain consumed or dropped it.
Tunnel actions hand the packet to a registered tunnel encapsulator the
same way.

The data plane is a three-tier fast path: an exact-match
:class:`~repro.sdn.flowcache.FlowCache` memoizes the winning rule *and*
its pre-compiled action closure per microflow, and a wildcard
:class:`~repro.sdn.flowcache.MegaflowCache` behind it memoizes the
minimal match superset per classification decision, so even the first
packet of a *new* flow usually skips the linear table scan (lookup
order: microflow -> megaflow -> full classification).  Entries in both
tiers are fenced on the table's generation counter (every
install/remove invalidates) and on the migration epoch token
(:meth:`SdnSwitch.fence`) so cached winners can never go stale.

Bursts can traverse the datapath as one vector: :meth:`process_batch`
classifies each packet through the same tiers, then executes, grouping
packets steered into the same service chain so the NFV layer can run
them through one compiled pipeline invocation
(:meth:`bind_chain_batch`).  :meth:`enable_tick_batching` coalesces
same-instant deliveries into such vectors via
:class:`~repro.netsim.batching.TickBatcher`.

Packet accounting is conservative by construction::

    packets_received == packets_forwarded + packets_dropped
                        + packets_punted + packets_consumed

where *punted* counts table misses handed to the controller and
*consumed* counts packets that left the local pipeline through a chain
or tunnel handoff.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError
from repro.netsim.batching import TickBatcher
from repro.netsim.node import Node
from repro.obs import runtime as obs_runtime
from repro.netsim.packet import Packet
from repro.sdn.actions import Drop, Mirror, Output, SetField, ToChain, Tunnel
from repro.sdn.flowcache import CacheEntry, FlowCache, MegaflowCache
from repro.sdn.flowtable import FlowTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.link import Link
    from repro.netsim.simulator import Simulator
    from repro.netsim.trace import Tracer

ChainExecutor = Callable[[Packet, str], Packet | None]
#: Vector form: one call per burst, results parallel to the inputs
#: (None = the chain consumed/dropped that packet).
BatchChainExecutor = Callable[[list[Packet], str], list[Packet | None]]
TunnelEncap = Callable[[Packet, str], None]
PacketInHandler = Callable[["SdnSwitch", Packet], None]

#: A compiled action list: call with a packet, fully applied.
CompiledActions = Callable[[Packet], None]


class SdnSwitch(Node):
    """A match/action forwarding element."""

    def __init__(self, sim: "Simulator", name: str,
                 tracer: "Tracer | None" = None) -> None:
        super().__init__(sim, name)
        self.table = FlowTable(name=f"{name}.table0")
        self.flow_cache = FlowCache(name=f"{name}.cache", tracer=tracer)
        self.megaflow_cache = MegaflowCache(name=f"{name}.megaflow",
                                            tracer=tracer)
        self.tracer = tracer
        self._chain_executors: dict[str, ChainExecutor] = {}
        self._chain_batch_executors: dict[str, BatchChainExecutor] = {}
        self._tunnel_encaps: dict[str, TunnelEncap] = {}
        self._packet_in: PacketInHandler | None = None
        self._batcher: TickBatcher | None = None
        self.packets_received = 0
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.packets_punted = 0     # table misses handed to the controller
        self.packets_consumed = 0   # left the pipeline via chain/tunnel
        # Classifications that fell through both cache tiers to the
        # linear rule scan (E21's headline metric).
        self.full_classifications = 0
        self.batches_processed = 0
        self.batch_packets = 0

    # -- control-plane wiring ----------------------------------------------

    def bind_chain(self, chain_id: str, executor: ChainExecutor) -> None:
        """Register the executor invoked by ``ToChain(chain_id)``."""
        self._chain_executors[chain_id] = executor

    def bind_chain_batch(self, chain_id: str,
                         executor: BatchChainExecutor) -> None:
        """Register the vector executor :meth:`process_batch` hands
        whole bursts steered into ``chain_id`` (optional; chains
        without one fall back to the per-packet executor)."""
        self._chain_batch_executors[chain_id] = executor

    def bind_tunnel(self, endpoint: str, encap: TunnelEncap) -> None:
        """Register the encapsulator invoked by ``Tunnel(endpoint)``."""
        self._tunnel_encaps[endpoint] = encap

    def set_packet_in_handler(self, handler: PacketInHandler | None) -> None:
        """Table-miss handler (the controller registers itself here)."""
        self._packet_in = handler

    def invalidate_cache(self, reason: str = "control-plane") -> int:
        """Eagerly flush both cache tiers (rule pushes, cutovers)."""
        dropped = self.flow_cache.flush(reason, now=self.sim.now)
        dropped += self.megaflow_cache.flush(reason, now=self.sim.now)
        return dropped

    def fence(self, token: object, now: float | None = None) -> None:
        """Adopt an epoch-fence token on both cache tiers.

        Migration cutovers call this so closures compiled against a
        superseded deployment can never serve post-cutover traffic
        from either the microflow or the megaflow tier.
        """
        at = self.sim.now if now is None else now
        self.flow_cache.fence(token, now=at)
        self.megaflow_cache.fence(token, now=at)

    def enable_tick_batching(self, enabled: bool = True) -> None:
        """Coalesce same-instant deliveries into one datapath vector.

        With batching on, :meth:`receive` buffers packets in a
        :class:`~repro.netsim.batching.TickBatcher`; all packets
        arriving at one simulated instant traverse the datapath as a
        single :meth:`process_batch` call.
        """
        self._batcher = (TickBatcher(self.sim, self.process_batch)
                         if enabled else None)

    @property
    def tick_batcher(self) -> TickBatcher | None:
        """The active same-tick batcher (None unless enabled)."""
        return self._batcher

    # -- data plane ----------------------------------------------------------

    def receive(self, packet: Packet, link: "Link") -> None:
        super().receive(packet, link)
        if self._batcher is not None:
            self._batcher.add(packet)
        else:
            self.process(packet)

    def _classify(self, packet: Packet) -> CacheEntry | None:
        """The cached entry for ``packet``, filling tiers on demand.

        Lookup order is microflow -> megaflow -> full classification;
        a megaflow hit is promoted into the microflow tier so the
        flow's later packets take the exact-match path.  Returns None
        only when *both* tiers are disabled (the uncached baseline).
        """
        table = self.table
        micro = self.flow_cache
        mega = self.megaflow_cache
        now = self.sim.now
        if micro.enabled:
            entry = micro.get(packet, table.generation, now=now)
            if entry is not None:
                return entry
        elif not mega.enabled:
            return None
        if mega.enabled:
            entry = mega.get(packet, table.generation, now=now)
            if entry is None:
                rule, mask = table.classify(packet)
                self.full_classifications += 1
                closure = (self._punt if rule is None
                           else self._compile_actions(rule.actions))
                entry = mega.put(packet, mask, rule, closure,
                                 table.generation)
        else:
            rule = table.lookup(packet, record=False)
            self.full_classifications += 1
            closure = (self._punt if rule is None
                       else self._compile_actions(rule.actions))
            entry = CacheEntry(rule=rule, closure=closure,
                               generation=table.generation)
        if micro.enabled:
            micro.put(packet, entry.rule, entry.closure, table.generation)
        return entry

    def process(self, packet: Packet) -> None:
        """Run ``packet`` through the table and apply the winning rule.

        With the caches enabled (the default) the table scan and
        action compilation happen once per megaflow; every packet —
        cached or not — is charged against the winning rule's match
        statistics exactly once.
        """
        self.packets_received += 1
        entry = self._classify(packet)
        if entry is None:
            rule = self.table.lookup(packet)
            self.full_classifications += 1
            if rule is None:
                self._punt(packet)
                return
            self.apply_actions(packet, rule.actions)
            return
        if entry.rule is None:
            self.table.record_miss()
        else:
            self.table.record_match(entry.rule, packet)
        entry.closure(packet)

    def process_batch(self, packets: list[Packet]) -> None:
        """Run a burst through the datapath as one vector.

        Per-packet observable semantics are identical to calling
        :meth:`process` in order — same winners, same match stats,
        same drop reasons, same conservation counters.  The batch win
        is in execution: packets steered into the same service chain
        are grouped and handed to that chain's vector executor
        (:meth:`bind_chain_batch`) as one call, so the NFV layer can
        push them through one compiled pipeline invocation instead of
        re-entering per packet.  Chain groups execute after the
        non-chain packets of the burst; packets never reorder *within*
        a group, and per-packet fates are order-independent.
        """
        chain_groups: dict[tuple[str, str], tuple[ToChain, list[Packet]]] = {}
        batch_executors = self._chain_batch_executors
        for packet in packets:
            self.packets_received += 1
            entry = self._classify(packet)
            if entry is None:
                rule = self.table.lookup(packet)
                self.full_classifications += 1
                if rule is None:
                    self._punt(packet)
                else:
                    self.apply_actions(packet, rule.actions)
                continue
            rule = entry.rule
            if rule is None:
                self.table.record_miss()
                entry.closure(packet)
                continue
            self.table.record_match(rule, packet)
            first = rule.actions[0]
            if (batch_executors and isinstance(first, ToChain)
                    and first.chain_id in batch_executors):
                key = (first.chain_id, first.resume_neighbor)
                group = chain_groups.get(key)
                if group is None:
                    chain_groups[key] = (first, [packet])
                else:
                    group[1].append(packet)
            else:
                entry.closure(packet)
        for action, group in chain_groups.values():
            self._run_chain_batch(group, action)
        self.batches_processed += 1
        self.batch_packets += len(packets)

    def apply_actions(self, packet: Packet, actions: tuple) -> None:
        """Apply an action list directly (uncached slow path)."""
        self._compile_actions(actions)(packet)

    # -- action compilation --------------------------------------------------

    def _compile_actions(self, actions: tuple) -> CompiledActions:
        """Pre-resolve an action list into one closure.

        Type dispatch happens here, once per cached flow, instead of
        per packet.  Compilation stops at the first terminal action
        (anything after it was unreachable in the interpreted loop
        too); a list with no terminal compiles to a loud failure, not a
        silent blackhole.
        """
        steps: list[Callable[[Packet], bool]] = []
        terminated = False
        for action in actions:
            if isinstance(action, Drop):
                steps.append(self._compile_drop(action))
                terminated = True
            elif isinstance(action, SetField):
                steps.append(self._compile_setfield(action))
            elif isinstance(action, Mirror):
                steps.append(self._compile_mirror(action))
            elif isinstance(action, ToChain):
                steps.append(self._compile_chain(action))
                terminated = True
            elif isinstance(action, Tunnel):
                steps.append(self._compile_tunnel(action))
                terminated = True
            elif isinstance(action, Output):
                steps.append(self._compile_output(action))
                terminated = True
            else:
                raise ConfigurationError(f"unknown action {action!r}")
            if terminated:
                break
        if not terminated:
            steps.append(self._non_terminating)
        if len(steps) == 1:
            only = steps[0]

            def run_one(packet: Packet) -> None:
                only(packet)

            return run_one

        def run(packet: Packet) -> None:
            for step in steps:
                if step(packet):
                    return

        return run

    def _compile_drop(self, action: Drop) -> Callable[[Packet], bool]:
        suffix = f"{action.reason} at {self.name}"

        def drop(packet: Packet) -> bool:
            self.packets_dropped += 1
            packet.mark_dropped(suffix)
            return True

        return drop

    def _compile_setfield(self, action: SetField) -> Callable[[Packet], bool]:
        def set_field(packet: Packet) -> bool:
            action.apply(packet)
            return False

        return set_field

    def _compile_mirror(self, action: Mirror) -> Callable[[Packet], bool]:
        neighbor = action.neighbor

        def mirror(packet: Packet) -> bool:
            clone = packet.copy()
            clone.metadata["mirrored_from"] = self.name
            self.send(clone, via=neighbor)
            return False

        return mirror

    def _compile_chain(self, action: ToChain) -> Callable[[Packet], bool]:
        def to_chain(packet: Packet) -> bool:
            self._run_chain(packet, action)
            return True

        return to_chain

    def _compile_tunnel(self, action: Tunnel) -> Callable[[Packet], bool]:
        def to_tunnel(packet: Packet) -> bool:
            self._run_tunnel(packet, action)
            return True

        return to_tunnel

    def _compile_output(self, action: Output) -> Callable[[Packet], bool]:
        neighbor = action.neighbor

        def output(packet: Packet) -> bool:
            self.packets_forwarded += 1
            self.send(packet, via=neighbor)
            return True

        return output

    def _non_terminating(self, packet: Packet) -> bool:
        # An action list that never forwarded nor dropped is a config
        # bug; fail loudly rather than silently blackholing.
        raise ConfigurationError(
            f"rule actions for packet {packet.packet_id} at {self.name} "
            "did not terminate (missing Output/Drop)"
        )

    # -- terminal handoffs ----------------------------------------------------

    def _punt(self, packet: Packet) -> None:
        """Table miss: hand to the controller, or default-drop."""
        if self._packet_in is not None:
            self.packets_punted += 1
            self._packet_in(self, packet)
        else:
            self.packets_dropped += 1
            packet.mark_dropped(f"table miss at {self.name}")

    def _run_chain(self, packet: Packet, action: ToChain) -> None:
        executor = self._chain_executors.get(action.chain_id)
        if executor is None:
            self.packets_dropped += 1
            packet.mark_dropped(
                f"chain {action.chain_id} not bound at {self.name}"
            )
            return
        result = executor(packet, action.chain_id)
        if result is None:
            # chain consumed (blocked/tunneled) the packet
            self.packets_consumed += 1
            return
        if action.resume_neighbor:
            self.packets_forwarded += 1
            # Executors report middlebox processing time out of band so
            # the data plane can charge it before resuming.
            delay = float(result.metadata.pop("chain_delay", 0.0))
            if delay > 0:
                self.sim.schedule(delay, self.send, result,
                                  action.resume_neighbor)
            else:
                self.send(result, via=action.resume_neighbor)
        else:
            # The executor keeps the packet (it decides what happens
            # next); the switch's pipeline is done with it.
            self.packets_consumed += 1

    def _run_chain_batch(self, packets: list[Packet],
                         action: ToChain) -> None:
        """Vector counterpart of :meth:`_run_chain`.

        One executor call for the whole group; per-packet outcome
        handling (consumed vs resumed, out-of-band chain delay) is
        identical to the scalar path.
        """
        executor = self._chain_batch_executors[action.chain_id]
        results = executor(packets, action.chain_id)
        resume = action.resume_neighbor
        for result in results:
            if result is None:
                self.packets_consumed += 1
            elif resume:
                self.packets_forwarded += 1
                delay = float(result.metadata.pop("chain_delay", 0.0))
                if delay > 0:
                    self.sim.schedule(delay, self.send, result, resume)
                else:
                    self.send(result, via=resume)
            else:
                self.packets_consumed += 1

    def _run_tunnel(self, packet: Packet, action: Tunnel) -> None:
        encap = self._tunnel_encaps.get(action.endpoint)
        if encap is None:
            self.packets_dropped += 1
            packet.mark_dropped(
                f"tunnel to {action.endpoint} not bound at {self.name}"
            )
            return
        self.packets_consumed += 1
        encap(packet, action.endpoint)

    # -- observability --------------------------------------------------------

    @property
    def packets_total(self) -> int:
        """The monotone throughput tap the closed loop samples
        (:class:`~repro.core.deployment.telemetry.TelemetryFeed` takes
        deltas of this between ticks; same name on every layer)."""
        return self.packets_received

    def counters(self) -> dict[str, int]:
        return {
            "received": self.packets_received,
            "forwarded": self.packets_forwarded,
            "dropped": self.packets_dropped,
            "punted": self.packets_punted,
            "consumed": self.packets_consumed,
        }

    def publish_counters(self, now: float,
                         tracer: "Tracer | None" = None) -> None:
        """Emit switch throughput and flow-cache counter snapshots.

        Tracer records (category ``"switch"``) are unchanged from the
        datapath refactor; when observability is enabled the same
        totals also fold into the metrics registry
        (``repro_switch_packets_total{switch=...,result=...}``) so the
        Prometheus dump and the conservation property tests read one
        typed interface instead of snapshot dicts.
        """
        # Explicit None check: an empty Tracer is falsy (__len__ == 0).
        sink = tracer if tracer is not None else self.tracer
        if sink is not None:
            sink.emit(now, "switch", self.name, event="counters",
                      **self.counters())
        obs = obs_runtime.current()
        if obs is not None:
            obs.metrics.fold_totals(
                "repro_switch_packets",
                "Per-switch packet outcomes (conservation: received == "
                "forwarded + dropped + punted + consumed)",
                ("switch",), {"switch": self.name}, self.counters(),
            )
            obs.metrics.fold_totals(
                "repro_switch_classifications",
                "Classifications that fell through every cache tier to "
                "the linear rule scan",
                ("switch",), {"switch": self.name},
                {"full": self.full_classifications},
            )
            if self.batches_processed:
                obs.metrics.fold_totals(
                    "repro_switch_batches",
                    "Datapath vector executions and the packets they "
                    "carried",
                    ("switch",), {"switch": self.name},
                    {"batches": self.batches_processed,
                     "packets": self.batch_packets},
                )
        self.flow_cache.publish(now, tracer=sink)
        self.megaflow_cache.publish(now, tracer=sink)
