"""Priority flow tables.

Rules are matched highest-priority-first; ties break deterministically
toward the more specific match, then the earlier-installed rule.  Each
rule carries the ``pvn_id`` of the deployment that installed it so
teardown and isolation audits can find them.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.errors import ConfigurationError, PolicyConflictError
from repro.netsim.packet import Packet
from repro.sdn.actions import Action
from repro.sdn.match import Match

_rule_ids = itertools.count(1)


@dataclasses.dataclass
class FlowRule:
    """One match/action rule."""

    match: Match
    actions: tuple[Action, ...]
    priority: int = 100
    pvn_id: str = ""
    rule_id: int = dataclasses.field(default_factory=lambda: next(_rule_ids))
    packets_matched: int = 0
    bytes_matched: int = 0

    def __post_init__(self) -> None:
        if not self.actions:
            raise ConfigurationError("a flow rule needs at least one action")
        if self.priority < 0:
            raise ConfigurationError("priority must be >= 0")

    def sort_key(self) -> tuple[int, int, int]:
        return (-self.priority, -self.match.specificity(), self.rule_id)


class FlowTable:
    """An ordered rule table with overlap detection."""

    def __init__(self, name: str = "table0") -> None:
        self.name = name
        self._rules: list[FlowRule] = []
        self.misses = 0
        # Monotone change counter: bumped by every install/remove so
        # flow caches built over this table can fence their entries
        # (see repro.sdn.flowcache).
        self.generation = 0

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> list[FlowRule]:
        return list(self._rules)

    def install(self, rule: FlowRule, reject_ambiguous: bool = False) -> None:
        """Add a rule.

        With ``reject_ambiguous`` the install fails if an existing rule
        at the *same priority* could match the same packets — the
        invariant check the paper says PVNs use to avoid configuration
        conflicts (§3.2).
        """
        if reject_ambiguous:
            for existing in self._rules:
                if (
                    existing.priority == rule.priority
                    and existing.match.could_overlap(rule.match)
                ):
                    raise PolicyConflictError(
                        f"rule overlaps existing rule {existing.rule_id} "
                        f"at priority {rule.priority}"
                    )
        self._rules.append(rule)
        self._rules.sort(key=FlowRule.sort_key)
        self.generation += 1

    def remove(self, rule_id: int) -> bool:
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.rule_id != rule_id]
        removed = len(self._rules) < before
        if removed:
            self.generation += 1
        return removed

    def remove_pvn(self, pvn_id: str) -> int:
        """Remove every rule installed by a PVN; returns the count."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.pvn_id != pvn_id]
        removed = before - len(self._rules)
        if removed:
            self.generation += 1
        return removed

    def lookup(self, packet: Packet, record: bool = True) -> FlowRule | None:
        """The winning rule for ``packet``.

        With ``record`` (the default) the winner's match stats — or the
        table's miss counter — are updated.  Cached datapaths pass
        ``record=False`` and account through :meth:`record_match` /
        :meth:`record_miss` instead, so a packet served from the flow
        cache still counts exactly once (never zero, never twice).
        """
        for rule in self._rules:
            if rule.match.matches(packet):
                if record:
                    self.record_match(rule, packet)
                return rule
        if record:
            self.record_miss()
        return None

    def record_match(self, rule: FlowRule, packet: Packet) -> None:
        """Charge one packet against ``rule``'s match statistics."""
        rule.packets_matched += 1
        rule.bytes_matched += packet.size

    def record_miss(self) -> None:
        """Charge one table miss."""
        self.misses += 1

    def rules_for_pvn(self, pvn_id: str) -> list[FlowRule]:
        return [r for r in self._rules if r.pvn_id == pvn_id]
