"""Priority flow tables.

Rules are matched highest-priority-first; ties break deterministically
toward the more specific match, then the earlier-installed rule.  Each
rule carries the ``pvn_id`` of the deployment that installed it so
teardown and isolation audits can find them.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.errors import ConfigurationError, PolicyConflictError
from repro.netsim.packet import Packet
from repro.sdn.actions import Action
from repro.sdn.match import Match

_rule_ids = itertools.count(1)


@dataclasses.dataclass
class FlowRule:
    """One match/action rule."""

    match: Match
    actions: tuple[Action, ...]
    priority: int = 100
    pvn_id: str = ""
    rule_id: int = dataclasses.field(default_factory=lambda: next(_rule_ids))
    packets_matched: int = 0
    bytes_matched: int = 0

    def __post_init__(self) -> None:
        if not self.actions:
            raise ConfigurationError("a flow rule needs at least one action")
        if self.priority < 0:
            raise ConfigurationError("priority must be >= 0")

    def sort_key(self) -> tuple[int, int, int]:
        return (-self.priority, -self.match.specificity(), self.rule_id)


class FlowTable:
    """An ordered rule table with overlap detection."""

    def __init__(self, name: str = "table0") -> None:
        self.name = name
        self._rules: list[FlowRule] = []
        self.misses = 0

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> list[FlowRule]:
        return list(self._rules)

    def install(self, rule: FlowRule, reject_ambiguous: bool = False) -> None:
        """Add a rule.

        With ``reject_ambiguous`` the install fails if an existing rule
        at the *same priority* could match the same packets — the
        invariant check the paper says PVNs use to avoid configuration
        conflicts (§3.2).
        """
        if reject_ambiguous:
            for existing in self._rules:
                if (
                    existing.priority == rule.priority
                    and existing.match.could_overlap(rule.match)
                ):
                    raise PolicyConflictError(
                        f"rule overlaps existing rule {existing.rule_id} "
                        f"at priority {rule.priority}"
                    )
        self._rules.append(rule)
        self._rules.sort(key=FlowRule.sort_key)

    def remove(self, rule_id: int) -> bool:
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.rule_id != rule_id]
        return len(self._rules) < before

    def remove_pvn(self, pvn_id: str) -> int:
        """Remove every rule installed by a PVN; returns the count."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.pvn_id != pvn_id]
        return before - len(self._rules)

    def lookup(self, packet: Packet) -> FlowRule | None:
        """The winning rule for ``packet``, with stats updated."""
        for rule in self._rules:
            if rule.match.matches(packet):
                rule.packets_matched += 1
                rule.bytes_matched += packet.size
                return rule
        self.misses += 1
        return None

    def rules_for_pvn(self, pvn_id: str) -> list[FlowRule]:
        return [r for r in self._rules if r.pvn_id == pvn_id]
