"""Priority flow tables.

Rules are matched highest-priority-first; ties break deterministically
toward the more specific match, then the earlier-installed rule.  Each
rule carries the ``pvn_id`` of the deployment that installed it so
teardown and isolation audits can find them.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.errors import ConfigurationError, PolicyConflictError
from repro.netsim.packet import Packet
from repro.sdn.actions import Action
from repro.sdn.match import Match, MatchMask, _prefix_len, ip_in_subnet

_rule_ids = itertools.count(1)


@dataclasses.dataclass
class FlowRule:
    """One match/action rule."""

    match: Match
    actions: tuple[Action, ...]
    priority: int = 100
    pvn_id: str = ""
    rule_id: int = dataclasses.field(default_factory=lambda: next(_rule_ids))
    packets_matched: int = 0
    bytes_matched: int = 0

    def __post_init__(self) -> None:
        if not self.actions:
            raise ConfigurationError("a flow rule needs at least one action")
        if self.priority < 0:
            raise ConfigurationError("priority must be >= 0")

    def sort_key(self) -> tuple[int, int, int]:
        return (-self.priority, -self.match.specificity(), self.rule_id)


class FlowTable:
    """An ordered rule table with overlap detection."""

    def __init__(self, name: str = "table0") -> None:
        self.name = name
        self._rules: list[FlowRule] = []
        self.misses = 0
        # Monotone change counter: bumped by every install/remove so
        # flow caches built over this table can fence their entries
        # (see repro.sdn.flowcache).
        self.generation = 0

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> list[FlowRule]:
        return list(self._rules)

    def install(self, rule: FlowRule, reject_ambiguous: bool = False) -> None:
        """Add a rule.

        With ``reject_ambiguous`` the install fails if an existing rule
        at the *same priority* could match the same packets — the
        invariant check the paper says PVNs use to avoid configuration
        conflicts (§3.2).
        """
        if reject_ambiguous:
            for existing in self._rules:
                if (
                    existing.priority == rule.priority
                    and existing.match.could_overlap(rule.match)
                ):
                    raise PolicyConflictError(
                        f"rule overlaps existing rule {existing.rule_id} "
                        f"at priority {rule.priority}"
                    )
        self._rules.append(rule)
        self._rules.sort(key=FlowRule.sort_key)
        self.generation += 1

    def remove(self, rule_id: int) -> bool:
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.rule_id != rule_id]
        removed = len(self._rules) < before
        if removed:
            self.generation += 1
        return removed

    def remove_pvn(self, pvn_id: str) -> int:
        """Remove every rule installed by a PVN; returns the count."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.pvn_id != pvn_id]
        removed = before - len(self._rules)
        if removed:
            self.generation += 1
        return removed

    def lookup(self, packet: Packet, record: bool = True) -> FlowRule | None:
        """The winning rule for ``packet``.

        With ``record`` (the default) the winner's match stats — or the
        table's miss counter — are updated.  Cached datapaths pass
        ``record=False`` and account through :meth:`record_match` /
        :meth:`record_miss` instead, so a packet served from the flow
        cache still counts exactly once (never zero, never twice).
        """
        for rule in self._rules:
            if rule.match.matches(packet):
                if record:
                    self.record_match(rule, packet)
                return rule
        if record:
            self.record_miss()
        return None

    def classify(self, packet: Packet) -> tuple[FlowRule | None, MatchMask]:
        """The winner for ``packet`` plus the minimal wildcard mask.

        Runs the same priority-ordered scan as :meth:`lookup` (stats
        are *not* recorded — callers account explicitly) while deriving
        the OVS-style megaflow mask by rule cross-producting: every
        rule examined before the winner contributes the one field that
        rejected the packet (:meth:`~repro.sdn.match.Match.mismatch_mask`),
        and the winner contributes every field it tests
        (:meth:`~repro.sdn.match.Match.mask`).  Any packet that agrees
        with this one on all masked bits is rejected by the same
        earlier rules and accepted by the same winner, so caching
        ``(mask, masked key) -> winner`` is sound.  On a full-table
        miss every rule contributes a rejecting field, which makes the
        negative entry equally sound.
        """
        # Single pass, folding the mask union into scalar locals: the
        # predicate cascade below IS Match.matches + mismatch_mask in
        # one evaluation (same field order), without allocating a
        # MatchMask per rejected rule.  The hypothesis equivalence
        # property pins this loop to the lookup/mismatch_mask spec.
        src_plen = dst_plen = 0
        protocol = src_port = dst_port = owner = False
        for rule in self._rules:
            m = rule.match
            if m.protocol is not None and packet.protocol != m.protocol:
                protocol = True
                continue
            if m.src_port is not None and packet.src_port != m.src_port:
                src_port = True
                continue
            if m.dst_port is not None and packet.dst_port != m.dst_port:
                dst_port = True
                continue
            if m.owner is not None and packet.owner != m.owner:
                owner = True
                continue
            if m.src_cidr is not None and not ip_in_subnet(packet.src,
                                                           m.src_cidr):
                plen = _prefix_len(m.src_cidr)
                if plen > src_plen:
                    src_plen = plen
                continue
            if m.dst_cidr is not None and not ip_in_subnet(packet.dst,
                                                           m.dst_cidr):
                plen = _prefix_len(m.dst_cidr)
                if plen > dst_plen:
                    dst_plen = plen
                continue
            wm = m.mask()
            return rule, MatchMask(
                src_plen=max(src_plen, wm.src_plen),
                dst_plen=max(dst_plen, wm.dst_plen),
                protocol=protocol or wm.protocol,
                src_port=src_port or wm.src_port,
                dst_port=dst_port or wm.dst_port,
                owner=owner or wm.owner,
            )
        return None, MatchMask(
            src_plen=src_plen, dst_plen=dst_plen, protocol=protocol,
            src_port=src_port, dst_port=dst_port, owner=owner,
        )

    def record_match(self, rule: FlowRule, packet: Packet) -> None:
        """Charge one packet against ``rule``'s match statistics."""
        rule.packets_matched += 1
        rule.bytes_matched += packet.size

    def record_miss(self) -> None:
        """Charge one table miss."""
        self.misses += 1

    def rules_for_pvn(self, pvn_id: str) -> list[FlowRule]:
        return [r for r in self._rules if r.pvn_id == pvn_id]
