"""Flow-rule actions.

The action vocabulary is the OpenFlow-ish subset the PVNC compiler
targets: forward, drop, rewrite a field, mirror a copy, hand the packet
to a middlebox chain, or push it into a tunnel.  Actions in a rule are
applied in order; :class:`Drop` and :class:`ToChain`/:class:`Tunnel`
terminate local processing (the chain/tunnel decides what happens
next).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.netsim.packet import Packet


class Action:
    """Marker base class for actions."""


@dataclasses.dataclass(frozen=True)
class Output(Action):
    """Forward out of the link toward ``neighbor``."""

    neighbor: str


@dataclasses.dataclass(frozen=True)
class Drop(Action):
    """Drop the packet with an auditable reason."""

    reason: str = "policy"


@dataclasses.dataclass(frozen=True)
class SetField(Action):
    """Rewrite one packet field (dscp-style remarking, NAT, tagging)."""

    field: str
    value: object

    _ALLOWED = ("src", "dst", "src_port", "dst_port", "owner")

    def __post_init__(self) -> None:
        if self.field not in self._ALLOWED:
            raise ConfigurationError(
                f"SetField cannot write {self.field!r}; "
                f"allowed: {self._ALLOWED}"
            )

    def apply(self, packet: Packet) -> None:
        setattr(packet, self.field, self.value)


@dataclasses.dataclass(frozen=True)
class Mirror(Action):
    """Send a copy toward ``neighbor`` (monitoring, audit probes)."""

    neighbor: str


@dataclasses.dataclass(frozen=True)
class ToChain(Action):
    """Divert the packet into middlebox chain ``chain_id``.

    ``resume_neighbor`` is where the packet continues if the chain
    passes it (empty string = the chain executor decides).
    """

    chain_id: str
    resume_neighbor: str = ""


@dataclasses.dataclass(frozen=True)
class Tunnel(Action):
    """Encapsulate toward a remote tunnel ``endpoint`` (Fig. 1(c))."""

    endpoint: str


def terminal(action: Action) -> bool:
    """Whether this action ends local pipeline processing."""
    return isinstance(action, (Drop, ToChain, Tunnel, Output))
