"""The SDN controller.

The controller owns every switch's flow table, namespaces installed
rules by PVN deployment, handles table-miss packet-ins with a default
policy, and exposes the teardown/audit queries the deployment manager
and auditor need.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError, IsolationError
from repro.netsim.packet import Packet
from repro.sdn.actions import Action, Output
from repro.sdn.flowtable import FlowRule
from repro.sdn.match import Match
from repro.sdn.switch import SdnSwitch


@dataclasses.dataclass(frozen=True)
class InstalledRule:
    """Bookkeeping for one rule the controller pushed."""

    switch_name: str
    rule_id: int
    pvn_id: str


class Controller:
    """Central control plane for a set of SDN switches."""

    def __init__(self, name: str = "controller") -> None:
        self.name = name
        self._switches: dict[str, SdnSwitch] = {}
        self._installed: list[InstalledRule] = []
        self.packet_ins = 0
        self.default_drop = True

    # -- switch management ---------------------------------------------------

    def adopt(self, switch: SdnSwitch) -> None:
        """Take ownership of a switch (registers the packet-in handler)."""
        self._switches[switch.name] = switch
        switch.set_packet_in_handler(self._on_packet_in)

    def switch(self, name: str) -> SdnSwitch:
        try:
            return self._switches[name]
        except KeyError:
            raise ConfigurationError(f"controller does not manage {name!r}") from None

    @property
    def switch_names(self) -> list[str]:
        return sorted(self._switches)

    # -- rule management -------------------------------------------------------

    def install(
        self,
        switch_name: str,
        match: Match,
        actions: tuple[Action, ...],
        priority: int = 100,
        pvn_id: str = "",
        enforce_isolation: bool = True,
    ) -> FlowRule:
        """Push one rule; PVN rules must be owner-scoped.

        ``enforce_isolation`` implements §3.3: a rule installed on
        behalf of a PVN must match only that user's traffic, so its
        ``match.owner`` must equal the PVN's subscriber (stored in the
        pvn_id as ``user/deployment``) — otherwise the install is
        rejected.
        """
        if enforce_isolation and pvn_id:
            user = pvn_id.split("/")[0]
            if match.owner != user:
                raise IsolationError(
                    f"PVN {pvn_id} tried to install a rule matching "
                    f"owner={match.owner!r}; must be {user!r}"
                )
        rule = FlowRule(match=match, actions=actions, priority=priority,
                        pvn_id=pvn_id)
        switch = self.switch(switch_name)
        switch.table.install(rule)
        # Eager microflow-cache flush: a cached winner must never
        # shadow the rule just pushed.  (Direct table writes that
        # bypass the controller are still fenced lazily by the table's
        # generation counter.)
        switch.invalidate_cache(f"install rule {rule.rule_id}")
        self._installed.append(
            InstalledRule(switch_name=switch_name, rule_id=rule.rule_id,
                          pvn_id=pvn_id)
        )
        return rule

    def remove_pvn(self, pvn_id: str) -> int:
        """Tear down every rule a PVN installed, across all switches."""
        removed = 0
        for switch in self._switches.values():
            count = switch.table.remove_pvn(pvn_id)
            if count:
                switch.invalidate_cache(f"remove_pvn {pvn_id}")
            removed += count
        self._installed = [r for r in self._installed if r.pvn_id != pvn_id]
        return removed

    def rules_for_pvn(self, pvn_id: str) -> list[InstalledRule]:
        return [r for r in self._installed if r.pvn_id == pvn_id]

    # -- default forwarding ------------------------------------------------------

    def install_default_route(
        self, switch_name: str, dst_cidr: str, neighbor: str, priority: int = 1
    ) -> FlowRule:
        """A low-priority plain-forwarding rule (non-PVN baseline traffic)."""
        return self.install(
            switch_name,
            Match(dst_cidr=dst_cidr),
            (Output(neighbor),),
            priority=priority,
            pvn_id="",
        )

    def _on_packet_in(self, switch: SdnSwitch, packet: Packet) -> None:
        self.packet_ins += 1
        if self.default_drop:
            packet.mark_dropped(f"controller default-drop at {switch.name}")
