"""repro — Personal Virtual Networks (PVN).

A laptop-scale, pure-Python reproduction of *"A Case for Personal
Virtual Networks"* (David Choffnes, HotNets-XV, 2016): the PVN
abstraction, its substrates (discrete-event network simulation, SDN
match/action data plane, NFV software middleboxes, protocol models),
the PVNC configuration language and compiler, the discovery/deployment
protocol, the auditor, and the paper's example middleboxes and
baselines.

Quickstart
----------
>>> from repro import PvnSession, default_pvnc
>>> session = PvnSession.build(seed=1)
>>> outcome = session.connect(default_pvnc())
>>> outcome.deployed
True

See ``examples/quickstart.py`` and README.md for more.
"""

from repro._version import __version__

__all__ = ["__version__"]


def __getattr__(name: str):  # pragma: no cover - thin lazy-import shim
    # The top-level convenience API lives in repro.core.session; importing
    # it lazily keeps `import repro` cheap for substrate-only users.
    if name in ("PvnSession", "SessionOutcome", "default_pvnc"):
        from repro.core import session as _session

        return getattr(_session, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
