"""Unit helpers: time, data sizes, and data rates.

Simulation time is always a ``float`` number of seconds.  Data sizes are
integers in bytes; data rates are floats in bits per second.  These
helpers keep magic numbers out of the rest of the code and provide
parsing for human-readable strings used in the PVNC DSL
(e.g. ``"1.5 Mbps"``, ``"6 MB"``, ``"30 ms"``).
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError

# -- time ------------------------------------------------------------------

MICROSECOND = 1e-6
MILLISECOND = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0

_TIME_SUFFIXES = {
    "us": MICROSECOND,
    "µs": MICROSECOND,
    "ms": MILLISECOND,
    "s": SECOND,
    "min": MINUTE,
    "h": HOUR,
}

# -- sizes (bytes) ---------------------------------------------------------

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
KIB = 1_024
MIB = 1_048_576

_SIZE_SUFFIXES = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "kib": KIB,
    "mib": MIB,
}

# -- rates (bits per second) -----------------------------------------------

KBPS = 1_000.0
MBPS = 1_000_000.0
GBPS = 1_000_000_000.0

_RATE_SUFFIXES = {
    "bps": 1.0,
    "kbps": KBPS,
    "mbps": MBPS,
    "gbps": GBPS,
}

_NUMBER_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Zµ]+)\s*$")


def _parse(text: str, suffixes: dict[str, float], kind: str) -> float:
    match = _NUMBER_RE.match(text)
    if not match:
        raise ConfigurationError(f"cannot parse {kind} value {text!r}")
    value, suffix = match.groups()
    key = suffix if kind == "time" else suffix.lower()
    if key not in suffixes:
        raise ConfigurationError(
            f"unknown {kind} unit {suffix!r} in {text!r}; "
            f"expected one of {sorted(suffixes)}"
        )
    return float(value) * suffixes[key]


def parse_time(text: str) -> float:
    """Parse ``"30 ms"``-style text into seconds."""
    return _parse(text, _TIME_SUFFIXES, "time")


def parse_size(text: str) -> int:
    """Parse ``"6 MB"``-style text into bytes."""
    return int(_parse(text, _SIZE_SUFFIXES, "size"))


def parse_rate(text: str) -> float:
    """Parse ``"1.5 Mbps"``-style text into bits per second."""
    return _parse(text, _RATE_SUFFIXES, "rate")


def transmission_delay(size_bytes: int, rate_bps: float) -> float:
    """Seconds to serialise ``size_bytes`` onto a link of ``rate_bps``."""
    if rate_bps <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate_bps}")
    return (size_bytes * 8.0) / rate_bps


def format_time(seconds: float) -> str:
    """Render seconds with a sensible unit for logs and tables."""
    if seconds == 0:
        return "0s"
    magnitude = abs(seconds)
    if magnitude < MILLISECOND:
        return f"{seconds / MICROSECOND:.1f}us"
    if magnitude < SECOND:
        return f"{seconds / MILLISECOND:.1f}ms"
    if magnitude < MINUTE:
        return f"{seconds:.2f}s"
    return f"{seconds / MINUTE:.1f}min"


def format_size(size_bytes: float) -> str:
    """Render a byte count with a sensible decimal unit."""
    magnitude = abs(size_bytes)
    if magnitude >= GB:
        return f"{size_bytes / GB:.2f}GB"
    if magnitude >= MB:
        return f"{size_bytes / MB:.2f}MB"
    if magnitude >= KB:
        return f"{size_bytes / KB:.1f}KB"
    return f"{int(size_bytes)}B"


def format_rate(rate_bps: float) -> str:
    """Render a bit rate with a sensible decimal unit."""
    magnitude = abs(rate_bps)
    if magnitude >= GBPS:
        return f"{rate_bps / GBPS:.2f}Gbps"
    if magnitude >= MBPS:
        return f"{rate_bps / MBPS:.2f}Mbps"
    if magnitude >= KBPS:
        return f"{rate_bps / KBPS:.1f}Kbps"
    return f"{rate_bps:.0f}bps"
