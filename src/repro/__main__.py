"""Run the full experiment suite: ``python -m repro [IDS...]``.

With no arguments, runs every experiment in DESIGN.md §3's index and
prints each table.  Pass experiment ids (``F1A E3 E9``) to run a
subset, and ``--seed N`` to change the seed.

``python -m repro obs trace|metrics <ID>`` runs one experiment with
the observability layer enabled and exports spans (JSONL +
Chrome-trace/Perfetto) or metrics (Prometheus text + JSONL) — see
:mod:`repro.obs.cli`.

``python -m repro run <ID> --shards N`` runs a shardable experiment's
device population across N worker processes and merges the results
deterministically — see :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "run":
        from repro.experiments.runner import main as run_main

        return run_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the PVN reproduction's experiment suite.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="ID",
        help=f"experiment ids to run (default: all). "
             f"Known: {', '.join(ALL_EXPERIMENTS)}",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="experiment seed (default 0)")
    parser.add_argument("--json", action="store_true",
                        help="emit results as one JSON document")
    args = parser.parse_args(argv)

    wanted = [e.upper() for e in args.experiments] or list(ALL_EXPERIMENTS)
    unknown = [e for e in wanted if e not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}; "
                     f"known: {sorted(ALL_EXPERIMENTS)}")

    if args.json:
        import json

        results = {
            experiment_id: ALL_EXPERIMENTS[experiment_id](
                seed=args.seed
            ).to_dict()
            for experiment_id in wanted
        }
        print(json.dumps(results, indent=2))
        return 0

    for index, experiment_id in enumerate(wanted):
        if index:
            print()
        result = ALL_EXPERIMENTS[experiment_id](seed=args.seed)
        print(result.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
