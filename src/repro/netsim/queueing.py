"""Queueing and traffic-shaping primitives.

These are used by links (drop-tail buffering) and by ISP policy models:
the Binge On experiment (E4) shapes video flows through a
:class:`TokenBucket` at 1.5 Mbps exactly as the paper describes
T-Mobile doing.
"""

from __future__ import annotations

import collections
import dataclasses

from repro.errors import ConfigurationError
from repro.netsim.packet import Packet


@dataclasses.dataclass
class QueueStats:
    """Counters exposed by every queue/shaper."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    bytes_dropped: int = 0


class DropTailQueue:
    """A bounded FIFO that drops arrivals when full."""

    def __init__(self, capacity_packets: int = 100) -> None:
        if capacity_packets <= 0:
            raise ConfigurationError("queue capacity must be positive")
        self.capacity = capacity_packets
        self._queue: collections.deque[Packet] = collections.deque()
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def push(self, packet: Packet) -> bool:
        """Enqueue; returns False (and marks the packet) on overflow."""
        if self.full:
            packet.mark_dropped("queue overflow")
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size
            return False
        self._queue.append(packet)
        self.stats.enqueued += 1
        self.stats.bytes_in += packet.size
        return True

    def pop(self) -> Packet | None:
        """Dequeue the head packet, or None if empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.stats.dequeued += 1
        self.stats.bytes_out += packet.size
        return packet


class TokenBucket:
    """A token-bucket shaper over simulated time.

    Tokens accrue at ``rate_bps`` bits per second up to ``burst_bytes``.
    :meth:`delay_for` answers "how long must this packet wait before it
    conforms", which is how a shaping ISP (Binge On) paces video.
    """

    def __init__(self, rate_bps: float, burst_bytes: int = 16_000) -> None:
        if rate_bps <= 0:
            raise ConfigurationError("token bucket rate must be positive")
        if burst_bytes <= 0:
            raise ConfigurationError("token bucket burst must be positive")
        self.rate_bps = float(rate_bps)
        self.burst_bytes = int(burst_bytes)
        self._tokens = float(burst_bytes)
        self._last_update = 0.0
        self.stats = QueueStats()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_update)
        self._tokens = min(
            self.burst_bytes, self._tokens + elapsed * self.rate_bps / 8.0
        )
        self._last_update = now

    def delay_for(self, size_bytes: int, now: float) -> float:
        """Seconds the packet must wait to conform; 0 if it can go now.

        The caller is expected to actually send after the returned
        delay; tokens are consumed immediately (the packet has a
        reservation).
        """
        self._refill(now)
        self.stats.enqueued += 1
        self.stats.bytes_in += size_bytes
        if self._tokens >= size_bytes:
            self._tokens -= size_bytes
            self.stats.dequeued += 1
            self.stats.bytes_out += size_bytes
            return 0.0
        deficit = size_bytes - self._tokens
        self._tokens = 0.0
        wait = deficit * 8.0 / self.rate_bps
        # Account for the future send so back-to-back callers queue up.
        self._last_update = now + wait
        self.stats.dequeued += 1
        self.stats.bytes_out += size_bytes
        return wait


class RateMeter:
    """An exponentially weighted rate estimator (for audits and ABR).

    ``update(now, nbytes)`` folds an observation in; ``rate_bps(now)``
    reads the current estimate, decayed toward zero when idle.
    """

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ConfigurationError("meter window must be positive")
        self.window = float(window)
        self._rate = 0.0
        self._last = 0.0

    def update(self, now: float, nbytes: int) -> None:
        elapsed = max(1e-9, now - self._last)
        instant = nbytes * 8.0 / elapsed
        alpha = min(1.0, elapsed / self.window)
        self._rate = (1 - alpha) * self._rate + alpha * instant
        self._last = now

    def rate_bps(self, now: float) -> float:
        idle = max(0.0, now - self._last)
        decay = max(0.0, 1.0 - idle / self.window)
        return self._rate * decay
