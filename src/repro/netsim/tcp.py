"""A rounds-based TCP transfer model.

The PVN paper's performance argument (§2.2) rests on classic split-TCP
behaviour: terminating a connection at an in-network proxy shortens the
control loop, so congestion windows grow faster and losses on the
wireless last mile are recovered locally — but proxying adds overhead
that can make it a net loss for clients with poor links (the mixed
results of Xu et al. [44]).  This module reproduces exactly that
mechanism with a deterministic rounds-based simulation of TCP slow
start / congestion avoidance, and a coupled two-segment simulation for
split connections where the downstream leg can only forward bytes the
upstream leg has already delivered.

The model is intentionally at the level of RTT rounds, not packets: it
captures cwnd dynamics, loss recovery, and bandwidth-delay limits,
which is the granularity at which the paper's claims live.
"""

from __future__ import annotations

import bisect
import dataclasses
import math

import numpy as np

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class TcpParams:
    """Protocol constants for the rounds model."""

    mss: int = 1460
    initial_cwnd: int = 10          # segments (RFC 6928)
    initial_ssthresh: int = 64      # segments
    max_cwnd: int = 4096            # receiver window, segments
    handshake_rtts: float = 1.0     # SYN/SYN-ACK before first data round
    min_rto: float = 0.2            # timeout floor, seconds


@dataclasses.dataclass(frozen=True)
class PathCharacteristics:
    """One leg of a connection path."""

    rtt: float                      # round-trip propagation, seconds
    loss_rate: float                # per-segment loss probability
    bandwidth_bps: float            # bottleneck rate on the leg

    def __post_init__(self) -> None:
        if self.rtt <= 0:
            raise ConfigurationError(f"rtt must be positive, got {self.rtt}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0,1), got {self.loss_rate}"
            )
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")

    def joined_with(self, other: "PathCharacteristics") -> "PathCharacteristics":
        """The end-to-end path formed by concatenating two legs."""
        combined_loss = 1.0 - (1.0 - self.loss_rate) * (1.0 - other.loss_rate)
        return PathCharacteristics(
            rtt=self.rtt + other.rtt,
            loss_rate=combined_loss,
            bandwidth_bps=min(self.bandwidth_bps, other.bandwidth_bps),
        )


@dataclasses.dataclass
class TransferResult:
    """Outcome of a simulated transfer."""

    duration: float
    size_bytes: int
    rounds: int
    retransmitted_segments: int
    timeline: list[tuple[float, int]]  # (time, cumulative bytes delivered)

    @property
    def goodput_bps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.size_bytes * 8.0 / self.duration

    def bytes_available_at(self, time: float) -> int:
        """Cumulative bytes delivered by ``time`` (step interpolation)."""
        if not self.timeline or time < self.timeline[0][0]:
            return 0
        times = [point[0] for point in self.timeline]
        index = bisect.bisect_right(times, time) - 1
        return self.timeline[index][1]

    def time_for_bytes(self, nbytes: int) -> float:
        """Earliest time at which ``nbytes`` were delivered."""
        for time, cumulative in self.timeline:
            if cumulative >= nbytes:
                return time
        return math.inf


class _RoundState:
    """Mutable cwnd state shared by the direct and split simulations."""

    def __init__(self, params: TcpParams, path: PathCharacteristics) -> None:
        self.params = params
        self.path = path
        self.cwnd = float(params.initial_cwnd)
        self.ssthresh = float(params.initial_ssthresh)
        bdp_segments = path.bandwidth_bps * path.rtt / (params.mss * 8.0)
        # Allow one BDP of bottleneck buffer before the window is clamped.
        self.window_cap = max(2.0, min(params.max_cwnd, 2.0 * bdp_segments + 4))

    def sendable_segments(self) -> int:
        return max(1, int(min(self.cwnd, self.window_cap)))

    def round_duration(self, segments: int) -> float:
        serialise = segments * self.params.mss * 8.0 / self.path.bandwidth_bps
        return max(self.path.rtt, serialise) if segments else self.path.rtt

    def on_loss(self) -> None:
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = self.ssthresh

    def on_success(self) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd * 2.0, self.window_cap)
        else:
            self.cwnd = min(self.cwnd + 1.0, self.window_cap)


def _round_has_loss(
    rng: np.random.Generator, loss_rate: float, segments: int
) -> tuple[bool, int]:
    """Whether a loss event hits this round, and how many segments."""
    if loss_rate <= 0 or segments == 0:
        return False, 0
    lost = int(rng.binomial(segments, loss_rate))
    return lost > 0, lost


def simulate_transfer(
    size_bytes: int,
    path: PathCharacteristics,
    params: TcpParams | None = None,
    rng: np.random.Generator | None = None,
    start_time: float = 0.0,
    extra_per_round_delay: float = 0.0,
) -> TransferResult:
    """Simulate one TCP download of ``size_bytes`` over ``path``.

    ``extra_per_round_delay`` adds fixed processing latency per round
    (used to charge middlebox per-packet delay at flow granularity).
    """
    params = params or TcpParams()
    if size_bytes <= 0:
        raise ConfigurationError("transfer size must be positive")
    if rng is None:
        rng = np.random.default_rng(0)

    state = _RoundState(params, path)
    now = start_time + params.handshake_rtts * path.rtt
    delivered = 0
    rounds = 0
    retransmits = 0
    timeline: list[tuple[float, int]] = []
    total_segments = math.ceil(size_bytes / params.mss)
    remaining = total_segments

    while remaining > 0:
        window = min(state.sendable_segments(), remaining)
        loss, lost_count = _round_has_loss(rng, path.loss_rate, window)
        arrived = window - lost_count
        duration = state.round_duration(window) + extra_per_round_delay
        if loss and arrived == 0:
            # Whole window lost: retransmission timeout.
            duration = max(duration, params.min_rto)
        now += duration
        rounds += 1
        if arrived > 0:
            remaining -= arrived
            delivered = min(size_bytes, (total_segments - remaining) * params.mss)
            timeline.append((now, delivered))
        if loss:
            retransmits += lost_count
            state.on_loss()
        else:
            state.on_success()

    return TransferResult(
        duration=now - start_time,
        size_bytes=size_bytes,
        rounds=rounds,
        retransmitted_segments=retransmits,
        timeline=timeline,
    )


def simulate_split_transfer(
    size_bytes: int,
    upstream: PathCharacteristics,
    downstream: PathCharacteristics,
    params: TcpParams | None = None,
    rng: np.random.Generator | None = None,
    proxy_connection_setup: float = 0.002,
    proxy_per_round_delay: float = 45e-6,
) -> TransferResult:
    """Simulate a split-TCP download through an in-network proxy.

    ``upstream`` is server -> proxy; ``downstream`` is proxy -> client.
    The downstream leg is simulated round by round and can only forward
    bytes that the upstream transfer (simulated first, starting after
    the proxy's connection setup) has already delivered to the proxy:
    if the proxy buffer is empty, the downstream sender idles until the
    upstream timeline produces more data.

    ``proxy_connection_setup`` charges the proxy's splice/instantiation
    cost; ``proxy_per_round_delay`` charges the per-packet forwarding
    delay the paper cites from ClickOS (45 microseconds) once per round.
    """
    params = params or TcpParams()
    if rng is None:
        rng = np.random.default_rng(0)

    # Client handshake completes over the downstream leg; the proxy then
    # opens its upstream connection (plus splice setup cost).
    client_handshake_done = params.handshake_rtts * downstream.rtt
    upstream_start = client_handshake_done + proxy_connection_setup
    upstream_result = simulate_transfer(
        size_bytes, upstream, params, rng, start_time=upstream_start
    )

    state = _RoundState(params, downstream)
    now = client_handshake_done
    delivered = 0  # bytes acked by the client; lost bytes stay buffered
    rounds = 0
    retransmits = 0
    timeline: list[tuple[float, int]] = []

    while delivered < size_bytes:
        available = min(upstream_result.bytes_available_at(now), size_bytes)
        buffered = available - delivered
        if buffered <= 0:
            # Proxy buffer dry: wait until upstream produces the next byte.
            next_time = upstream_result.time_for_bytes(delivered + 1)
            if math.isinf(next_time):  # pragma: no cover - defensive
                break
            now = max(now, next_time)
            continue
        window_segments = min(
            state.sendable_segments(), math.ceil(buffered / params.mss)
        )
        send_bytes = min(window_segments * params.mss, buffered)
        loss, lost_count = _round_has_loss(
            rng, downstream.loss_rate, window_segments
        )
        arrived = window_segments - lost_count
        duration = state.round_duration(window_segments) + proxy_per_round_delay
        if loss and arrived == 0:
            duration = max(duration, params.min_rto)
        now += duration
        rounds += 1
        if arrived > 0:
            chunk = max(0, min(send_bytes, send_bytes - lost_count * params.mss))
            if chunk > 0:
                delivered += chunk
                timeline.append((now, delivered))
        if loss:
            retransmits += lost_count
            state.on_loss()
        else:
            state.on_success()

    return TransferResult(
        duration=now,
        size_bytes=size_bytes,
        rounds=rounds,
        retransmitted_segments=retransmits,
        timeline=timeline,
    )


def mathis_throughput_bps(path: PathCharacteristics, mss: int = 1460) -> float:
    """The Mathis et al. steady-state TCP throughput approximation.

    Used in tests as an independent sanity check on the rounds model:
    throughput ~ (MSS / RTT) * (C / sqrt(loss)).
    """
    if path.loss_rate <= 0:
        return path.bandwidth_bps
    raw = (mss * 8.0 / path.rtt) * (1.22 / math.sqrt(path.loss_rate))
    return min(raw, path.bandwidth_bps)
