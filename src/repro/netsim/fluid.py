"""Hybrid fluid/packet population engine (DESIGN.md §15).

Event-simulating every packet caps the simulated population around
10^4 devices: per-flow cost is O(packets).  This engine advances
steady flows as *aggregate rate equations* — max-min fair shares
recomputed only at **epochs** (flow arrival, departure, completion,
or route change; tracked per cell via dirty flags) — and
event-simulates only the **policy-relevant** packets: PII emissions,
TLS handshakes, audit probes, and the first packet of every flow
(the megaflow-miss punt).  Per-flow cost becomes O(rate-change
epochs + policy packets) instead of O(packets).

Flow state lives in a struct-of-array table
(:class:`~repro.netsim.soa.SoaTable`): rate, byte carry, remaining
packets, owning cell, and device are parallel ``numpy`` columns, so a
tick advances the whole population with vector arithmetic instead of
per-packet object churn.

Two modes share **identical progress arithmetic** (the same vectorized
per-tick budget/emission computation), so their policy-relevant
accounting is comparable record for record:

* ``MODE_FLUID`` — one vector operation per tick; only policy packets
  are materialized (as real :class:`~repro.netsim.packet.Packet`
  objects on the simulator, at their computed sub-tick emission
  times).
* ``MODE_PACKET`` — every emitted packet becomes a simulator event
  that materializes a ``Packet`` and runs the per-packet path; leaks
  and completions are detected *by the packet events themselves*, not
  by the vectorized crossing scan, which makes digest parity between
  the modes a genuine cross-check of the fluid abstraction rather
  than an identity.

All policy-relevant accounting flows into a :class:`PolicyLedger`
whose sha256 :meth:`~PolicyLedger.digest` is over *sorted, time-free*
records — byte-identical between modes and independent of shard
partitioning (records are keyed per device, never per shard; see
``repro.experiments.runner``).

Cross-shard traffic: flows may target a device owned by another shard
(``HybridFlow.dst_device``).  On completion the engine appends a
plain-data message to :attr:`outbox`; the sharded runner exchanges
outboxes between shards at deterministic round boundaries and the
receiving engine's :meth:`deliver` records ingress accounting — so
the receiving shard's digest proves the queue protocol ran.

Fair shares are genuine max-min: :func:`waterfill` is a vectorized
multi-cell progressive-filling fixed point over per-flow rate caps,
validated against the exact reference :func:`max_min_fair_share`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Callable

import numpy as np

from repro.middleboxes.pii_detector import PII_PATTERNS
from repro.netproto.http import HttpRequest
from repro.netsim.events import EventPriority
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator
from repro.netsim.soa import SoaTable

MODE_FLUID = "fluid"
MODE_PACKET = "packet"

#: Sentinel packet index meaning "no pending leak" (sorts after any flow).
NO_LEAK = 2 ** 62

#: The PII types the policy path can emit (keys of the detector library).
PII_TYPES = tuple(sorted(PII_PATTERNS))


@dataclasses.dataclass(frozen=True)
class HybridFlow:
    """One flow's immutable spec: identity, size, and policy events.

    ``leak_packets`` are ascending packet indices that carry PII
    (``leak_types`` is index-aligned); they are derived from the flow's
    own seed by the workload, so both simulation modes — and any shard
    partitioning — see the same policy events.
    """

    device: int
    seq: int
    n_packets: int
    cap_bps: float
    kind: str = "web"
    https: bool = False
    third_party: bool = False
    leak_packets: tuple[int, ...] = ()
    leak_types: tuple[str, ...] = ()
    dst_device: int = -1
    host: str = "app.example.com"


# -- max-min fair shares ------------------------------------------------------


def max_min_fair_share(caps: list[float], capacity: float) -> list[float]:
    """Exact max-min rates for one link: progressive filling (reference).

    Flows capped below the fair share keep their cap; the remaining
    capacity is split evenly among the rest.  O(n log n); used by the
    tests to validate :func:`waterfill`.
    """
    n = len(caps)
    if n == 0:
        return []
    order = sorted(range(n), key=lambda i: (caps[i], i))
    rates = [0.0] * n
    remaining = float(capacity)
    left = n
    for position, index in enumerate(order):
        share = remaining / left
        rates[index] = min(caps[index], share)
        remaining -= rates[index]
        left -= 1
    return rates


def waterfill(
    caps: np.ndarray,
    cells: np.ndarray,
    capacities: np.ndarray,
    iters: int = 16,
) -> np.ndarray:
    """Vectorized per-cell max-min fair level with per-flow caps.

    Returns ``fair`` per cell such that each flow's rate is
    ``min(cap, fair[cell])``.  Fixed point of progressive filling:
    every iteration redistributes each cell's slack (capacity unused
    by capped flows) over the flows still held at the fair level, so
    it converges in at most ``#distinct cap classes`` iterations —
    the workload uses a handful of flow kinds, far below ``iters``.
    """
    n_cells = len(capacities)
    counts = np.bincount(cells, minlength=n_cells)
    fair = np.where(counts > 0, capacities / np.maximum(counts, 1), np.inf)
    for _ in range(iters):
        rates = np.minimum(caps, fair[cells])
        used = np.bincount(cells, weights=rates, minlength=n_cells)
        held = caps > fair[cells]
        n_held = np.bincount(cells[held], minlength=n_cells)
        slack = capacities - used
        adjustable = (n_held > 0) & (slack > capacities * 1e-12)
        if not adjustable.any():
            break
        fair = np.where(
            adjustable, fair + slack / np.maximum(n_held, 1), fair)
    return fair


# -- policy accounting --------------------------------------------------------


class PolicyLedger:
    """Deterministic, time-free accounting of policy-relevant events.

    ``keep_records=True`` retains every record for digesting (parity
    runs); ``False`` keeps only per-kind counts (perf sweeps at 10^6
    devices, where record retention would dominate memory).
    """

    def __init__(self, keep_records: bool = True) -> None:
        self.keep_records = keep_records
        self.counts: dict[str, int] = {}
        self.records: list[tuple] | None = [] if keep_records else None

    def bump(self, kind: str, n: int = 1) -> None:
        """Count ``n`` events of ``kind`` without a record."""
        self.counts[kind] = self.counts.get(kind, 0) + n

    def record(self, kind: str, *fields) -> None:
        """Account one event; fields must be plain ints/strs (no times)."""
        self.bump(kind)
        if self.records is not None:
            self.records.append((kind, *fields))

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def digest(self) -> str:
        """sha256 over the *sorted* records — order of arrival discarded,
        so two runs that account the same events digest identically
        regardless of event interleaving, mode, or shard count."""
        if self.records is None:
            raise ValueError("ledger was built with keep_records=False")
        canonical = sorted(self.records)
        return hashlib.sha256(
            json.dumps(canonical, sort_keys=True).encode()
        ).hexdigest()


def _pii_body(leak_type: str, device: int, seq: int) -> bytes:
    """A request body carrying one PII value of ``leak_type``.

    Values match the :data:`~repro.middleboxes.pii_detector.PII_PATTERNS`
    library so the real detector — not a parallel reimplementation —
    decides what counts as a leak.
    """
    if leak_type == "email":
        return b"action=sync&email=u%d@mail.example.com" % device
    if leak_type == "phone":
        return b"contact=%03d-%03d-%04d" % (
            200 + device % 700, 200 + seq % 700, 1000 + (device * 7 + seq) % 9000)
    if leak_type == "ssn":
        return b"id=%03d-%02d-%04d" % (
            100 + device % 700, 10 + seq % 89, 1000 + device % 8999)
    if leak_type == "location":
        return b"lat=%d.%04d&lon=%d.%04d" % (
            device % 90, device % 10000, seq % 180, (device + seq) % 10000)
    if leak_type == "password":
        return b"password=pw%dx%d" % (device, seq)
    # device_id
    return b"tag=1&ad_id=%08X" % (device & 0xFFFFFFFF)


# -- the engine ---------------------------------------------------------------


class HybridPopulationEngine:
    """Fluid/packet hybrid simulation of a device population.

    Topology model: each device attaches to one *cell* (an access
    aggregate with a shared backhaul of ``cell_capacity_bps``); a flow
    is rate-limited by min(its own cap, the cell's max-min fair
    level).  Rate recomputation happens only for cells whose flow set
    changed since the last tick (arrival/departure/completion/
    migration — the epochs), which is what makes per-flow cost
    independent of the packet count.
    """

    def __init__(
        self,
        sim: Simulator,
        n_devices: int,
        n_cells: int,
        cell_capacity_bps: float | np.ndarray,
        device_rate_bps: float = 2_000_000.0,
        tick: float = 0.1,
        mode: str = MODE_FLUID,
        mtu: int = 1500,
        ledger: PolicyLedger | None = None,
        punt_hook: Callable[[Packet], None] | None = None,
    ) -> None:
        if mode not in (MODE_FLUID, MODE_PACKET):
            raise ValueError(f"unknown mode {mode!r}")
        if tick <= 0:
            raise ValueError("tick must be positive")
        self.sim = sim
        self.n_devices = int(n_devices)
        self.n_cells = int(n_cells)
        # Rates enter in bits/s but all internal arithmetic is in
        # bytes (budgets are divided by the MTU in bytes), so convert
        # once at ingestion; cell_rate_bps converts back on the way out.
        self.cell_capacity = np.broadcast_to(
            np.asarray(cell_capacity_bps, dtype=np.float64) / 8.0,
            (self.n_cells,)).copy()
        if not (self.cell_capacity > 0).all():
            raise ValueError("cell capacities must be positive")
        self.device_rate_bps = float(device_rate_bps)
        self.tick = float(tick)
        self.mode = mode
        self.mtu = int(mtu)
        self._mtu_f = float(mtu)
        self.ledger = ledger if ledger is not None else PolicyLedger()
        self.punt_hook = punt_hook

        self.flows = SoaTable({
            "rate": "f8", "carry": "f8", "cap": "f8",
            "remaining": "i8", "emitted": "i8",
            "cell": "i8", "device": "i8", "seq": "i8",
            "next_leak": "i8", "leak_pos": "i8",
            "spec": "obj",
        })
        self.cell_count = np.zeros(self.n_cells, dtype=np.int64)
        self.cell_dirty = np.ones(self.n_cells, dtype=np.bool_)
        self._cell_bytes = np.zeros(self.n_cells, dtype=np.float64)
        self._attached = np.zeros(self.n_devices, dtype=np.bool_)
        self._device_cell = np.zeros(self.n_devices, dtype=np.int64)
        self._device_flows: dict[int, set[int]] = {}

        #: Cross-shard messages produced this round: (dst_device, payload).
        self.outbox: list[tuple[int, tuple]] = []
        #: Sub-tick completion instants, kept when the ledger keeps records.
        self.completion_times: dict[tuple[int, int], float] = {}

        self.workload = None
        self._ticks_total = 0
        # counters
        self.ticks = 0
        self.epochs = 0               # rate-recompute invocations
        self.cells_recomputed = 0     # cumulative dirty cells recomputed
        self.policy_packets = 0       # materialized policy-relevant packets
        self.packet_events = 0        # per-packet events (packet mode only)
        self.flows_opened = 0
        self.flows_completed = 0
        self.flows_aborted = 0
        self.bytes_total = 0.0
        self.packets_total = 0        # emitted-packet tap (telemetry duck type)

    # -- population operations (applied at tick boundaries) ---------------

    def attach_many(self, devices: np.ndarray, cells: np.ndarray,
                    ks: np.ndarray | None = None) -> None:
        """Vectorized attach of a device batch to their cells."""
        if len(devices) == 0:
            return
        self._attached[devices] = True
        self._device_cell[devices] = cells
        if self.ledger.keep_records:
            ks_list = ([0] * len(devices) if ks is None
                       else np.asarray(ks).tolist())
            for device, cell, k in zip(
                    np.asarray(devices).tolist(),
                    np.asarray(cells).tolist(), ks_list):
                self.ledger.record("attach", device, k, cell)
        else:
            self.ledger.bump("attach", len(devices))

    def detach(self, device: int, k: int = 0) -> None:
        """Detach a device, aborting its live flows (epoch for its cell)."""
        device = int(device)
        if not self._attached[device]:
            self.ledger.bump("detach_noop")
            return
        self._attached[device] = False
        self.ledger.record("detach", device, int(k))
        emitted = self.flows.col("emitted")
        for slot in sorted(self._device_flows.get(device, ())):
            spec = self.flows.col("spec")[slot]
            self.ledger.record("flow_abort", device, spec.seq,
                               int(emitted[slot]))
            self._close_flow(slot, spec, completed=False)

    def migrate(self, device: int, new_cell: int, k: int = 0) -> None:
        """Move a device (and its live flows) to another cell."""
        device, new_cell = int(device), int(new_cell)
        if not self._attached[device]:
            self.ledger.bump("migrate_skipped")
            return
        old_cell = int(self._device_cell[device])
        self._device_cell[device] = new_cell
        self.ledger.record("migrate", device, int(k), old_cell, new_cell)
        slots = self._device_flows.get(device, ())
        if slots and new_cell != old_cell:
            cell_col = self.flows.col("cell")
            for slot in slots:
                cell_col[slot] = new_cell
            moved = len(slots)
            self.cell_count[old_cell] -= moved
            self.cell_count[new_cell] += moved
        # Route change is an epoch even with no live flows: the next
        # flow this device opens lands in the new cell.
        self.cell_dirty[old_cell] = True
        self.cell_dirty[new_cell] = True

    def open_flow(self, spec: HybridFlow) -> int | None:
        """Admit one flow; returns its slot (None if device detached)."""
        device = int(spec.device)
        if not self._attached[device]:
            self.ledger.record("flow_refused", device, spec.seq)
            return None
        cell = int(self._device_cell[device])
        slot = self.flows.allocate(
            rate=0.0, carry=0.0, cap=spec.cap_bps / 8.0,
            remaining=spec.n_packets, emitted=0,
            cell=cell, device=device, seq=spec.seq,
            next_leak=spec.leak_packets[0] if spec.leak_packets else NO_LEAK,
            leak_pos=0, spec=spec,
        )
        self.cell_count[cell] += 1
        self.cell_dirty[cell] = True
        self._device_flows.setdefault(device, set()).add(slot)
        self.flows_opened += 1
        self.ledger.record("flow_open", device, spec.seq,
                           spec.n_packets, cell)
        if spec.https:
            # The TLS handshake is policy-relevant: materialize it.
            self.ledger.record("tls", device, spec.seq)
            self.policy_packets += 1
            if self.punt_hook is not None:
                self.punt_hook(self._materialize(spec, 0, handshake=True))
        elif self.punt_hook is not None:
            # First packet of a new five-tuple: the megaflow miss that
            # punts to the full pipeline.
            self.punt_hook(self._materialize(spec, 0))
        return slot

    def audit_probe(self, device: int, k: int = 0) -> None:
        """One auditor probe through the device's cell (event-simulated)."""
        device = int(device)
        if not self._attached[device]:
            self.ledger.bump("audit_skipped")
            return
        cell = int(self._device_cell[device])
        self.ledger.record("audit", device, int(k), cell)
        self.policy_packets += 1
        if self.punt_hook is not None:
            probe = Packet(src=f"10.probe.{device % 250}.1",
                           dst="198.51.100.99", protocol="udp",
                           src_port=7, dst_port=7, size=64,
                           owner=f"d{device}")
            self.punt_hook(probe)

    def deliver(self, messages: list[tuple]) -> None:
        """Ingress accounting for cross-shard flows received this round."""
        for message in messages:
            kind, src, dst, seq, n_packets, leaks = message
            self.ledger.record("xflow_in", int(src), int(dst), int(seq),
                               int(n_packets))
            if leaks:
                self.ledger.record("xflow_pii", int(src), int(dst),
                                   int(seq), int(leaks))

    # -- driving -----------------------------------------------------------

    def bind(self, workload) -> None:
        """Attach a workload exposing ``tick_events(index)``."""
        self.workload = workload

    def start(self, horizon: float) -> None:
        """Schedule the tick chain up to ``horizon`` (lazy, one ahead).

        Tick events run at BACKGROUND priority so the sub-tick packet
        and policy events of the *previous* tick — some of which land
        exactly on the boundary — always fire first.
        """
        self._ticks_total = max(1, int(round(horizon / self.tick)))
        self.sim.schedule_at(0.0, self._on_tick, 0,
                             priority=EventPriority.BACKGROUND)

    def end_time(self) -> float:
        """The exact float instant of the last tick boundary.

        Computed as ``ticks_total * tick`` — the same expression every
        sub-tick event clamps to — so ``sim.run(until=end_time())``
        never strands a boundary event behind a 1-ULP float gap.
        """
        return self._ticks_total * self.tick

    def run(self, horizon: float, workload=None) -> None:
        """Convenience: bind, start, and run the simulator to horizon."""
        if workload is not None:
            self.bind(workload)
        self.start(horizon)
        self.sim.run(until=self.end_time())

    def _on_tick(self, index: int) -> None:
        now = index * self.tick
        if self.workload is not None:
            self._apply(self.workload.tick_events(index))
        self._recompute()
        self._advance(now, (index + 1) * self.tick)
        self.ticks += 1
        if index + 1 < self._ticks_total:
            self.sim.schedule_at((index + 1) * self.tick, self._on_tick,
                                 index + 1,
                                 priority=EventPriority.BACKGROUND)

    def _apply(self, batch) -> None:
        """Apply one tick's population events in a fixed order.

        Attaches first (so same-tick flows can land), detaches last
        (so a same-tick flow still opens before its device leaves).
        """
        self.attach_many(batch.attach_devices, batch.attach_cells)
        for spec in batch.flows:
            self.open_flow(spec)
        for device, new_cell, k in batch.migrates:
            self.migrate(device, new_cell, k)
        for device, k in batch.probes:
            self.audit_probe(device, k)
        for device, k in batch.detaches:
            self.detach(device, k)

    # -- the per-tick core -------------------------------------------------

    def _recompute(self) -> None:
        """Max-min fair shares for dirty cells only (the epoch step)."""
        if not self.cell_dirty.any():
            return
        self.epochs += 1
        self.cells_recomputed += int(self.cell_dirty.sum())
        live = self.flows.live_slots()
        if live.size:
            cell_col = self.flows.col("cell")
            in_dirty = self.cell_dirty[cell_col[live]]
            if in_dirty.any():
                sub = live[in_dirty]
                # Canonical (device, seq) order: the two modes close
                # flows in different orders (event time vs slot scan),
                # so the LIFO free list hands the same flows different
                # slots.  The waterfill's bincount reductions sum in
                # array order, and a permuted sum can differ in the
                # last ULP — enough to break exact cross-mode
                # completion-time equality.  Sorting by flow identity
                # makes the fair level a function of the flow *set*.
                order = np.lexsort((self.flows.col("seq")[sub],
                                    self.flows.col("device")[sub]))
                sub = sub[order]
                caps = self.flows.col("cap")[sub]
                cells = cell_col[sub]
                fair = waterfill(caps, cells, self.cell_capacity)
                self.flows.col("rate")[sub] = np.minimum(caps, fair[cells])
        self.cell_dirty[:] = False

    def _advance(self, now: float, boundary: float) -> None:
        """One tick of progress for every live flow (vectorized).

        Both modes run this identical arithmetic: per flow, a byte
        budget of ``rate * tick`` plus the fractional carry from the
        previous tick, emitted as whole packets.  The carry makes the
        per-tick emission count an exact function of the rate
        schedule, so fluid and packet runs agree packet-for-packet at
        every tick boundary.
        """
        live = self.flows.live_slots()
        self._cell_bytes[:] = 0.0
        if live.size == 0:
            return
        rate_col = self.flows.col("rate")
        carry_col = self.flows.col("carry")
        rem_col = self.flows.col("remaining")
        emit_col = self.flows.col("emitted")
        cell_col = self.flows.col("cell")

        r = rate_col[live]
        carry_b = carry_col[live]
        budget = r * self.tick + carry_b
        quota = np.floor_divide(budget, self._mtu_f).astype(np.int64)
        rem_b = rem_col[live]
        n = np.minimum(quota, rem_b)
        finished = rem_b == n
        carry_col[live] = np.where(finished, 0.0, budget - n * self._mtu_f)
        emit_b = emit_col[live]
        emit_col[live] = emit_b + n
        rem_col[live] = rem_b - n

        sent = n * self._mtu_f
        self._cell_bytes += np.bincount(
            cell_col[live], weights=sent, minlength=self.n_cells)
        self.bytes_total += float(sent.sum())
        self.packets_total += int(n.sum())

        if self.mode == MODE_PACKET:
            self._schedule_packet_events(now, boundary, live, n, carry_b, r,
                                         finished)
        else:
            self._emit_policy_crossings(now, boundary, live, n, emit_b,
                                        carry_b, r)
            self._complete_fluid(now, boundary, live, n, carry_b, r,
                                 finished)

    # -- fluid mode --------------------------------------------------------

    def _emit_policy_crossings(self, now, boundary, live, n, emit_b,
                               carry_b, r):
        """Materialize leak packets whose byte offset was crossed.

        Only flows whose next pending leak index dropped below the new
        emitted count are touched — a vectorized select, then a short
        Python loop over the (rare) hits.
        """
        next_leak = self.flows.col("next_leak")
        emitted_after = emit_b + n
        hits = np.nonzero(next_leak[live] < emitted_after)[0]
        if hits.size == 0:
            return
        specs = self.flows.col("spec")
        leak_pos = self.flows.col("leak_pos")
        for i in hits.tolist():
            slot = int(live[i])
            spec = specs[slot]
            pos = int(leak_pos[slot])
            e_after = int(emitted_after[i])
            e_before = int(emit_b[i])
            while (pos < len(spec.leak_packets)
                    and spec.leak_packets[pos] < e_after):
                k = spec.leak_packets[pos]
                offset = (((k - e_before + 1) * self._mtu_f - carry_b[i])
                          / r[i])
                # Clamp to the exact boundary float ((index+1) * tick):
                # the instant the next tick event fires at, so a leak on
                # the boundary still precedes it (NORMAL < BACKGROUND).
                at = min(now + float(offset), boundary)
                self.sim.schedule_at(at, self._policy_packet, spec, k,
                                     spec.leak_types[pos])
                pos += 1
            leak_pos[slot] = pos
            next_leak[slot] = (spec.leak_packets[pos]
                               if pos < len(spec.leak_packets) else NO_LEAK)

    def _complete_fluid(self, now, boundary, live, n, carry_b, r,
                        finished):
        done = np.nonzero(finished)[0]
        if done.size == 0:
            return
        specs = self.flows.col("spec")
        for i in done.tolist():
            slot = int(live[i])
            spec = specs[slot]
            self.ledger.record("flow_complete", spec.device, spec.seq,
                               spec.n_packets)
            if self.ledger.keep_records:
                # Clamp to the boundary float exactly like the packet
                # path clamps its last-packet event, or the two modes'
                # completion instants diverge by 1 ULP on flows that
                # finish precisely at a tick edge.
                instant = min(now + float(
                    (n[i] * self._mtu_f - carry_b[i]) / r[i]), boundary)
                self.completion_times[(spec.device, spec.seq)] = instant
            self._close_flow(slot, spec, completed=True)

    def _policy_packet(self, spec: HybridFlow, pkt_index: int,
                       leak_type: str) -> None:
        """Event-simulate one policy-relevant packet (fluid mode)."""
        self.policy_packets += 1
        self._inspect_leak(spec, pkt_index, leak_type)

    # -- packet mode -------------------------------------------------------

    def _schedule_packet_events(self, now, boundary, live, n, carry_b, r,
                                finished):
        """One simulator event per emitted packet — the O(packets) cost."""
        idx = np.nonzero(n)[0]
        if idx.size == 0:
            return
        specs = self.flows.col("spec")
        for i in idx.tolist():
            slot = int(live[i])
            spec = specs[slot]
            generation = self.flows.generation(slot)
            count = int(n[i])
            rate = float(r[i])
            carried = float(carry_b[i])
            emitted_before = int(
                self.flows.col("emitted")[slot]) - count
            completes = bool(finished[i])
            for j in range(count):
                at = now + ((j + 1) * self._mtu_f - carried) / rate
                self.sim.schedule_at(
                    min(at, boundary), self._packet_event,
                    slot, generation, spec, emitted_before + j,
                    completes and j == count - 1)

    def _packet_event(self, slot: int, generation: int, spec: HybridFlow,
                      pkt_index: int, last: bool) -> None:
        """Fire one data packet: materialize, inspect if flagged, close."""
        self.packet_events += 1
        packet = self._materialize(spec, pkt_index)
        packet.record_hop(f"cell{int(self._device_cell[spec.device])}")
        if spec.leak_packets and pkt_index in spec.leak_packets:
            self.policy_packets += 1
            leak_type = spec.leak_types[spec.leak_packets.index(pkt_index)]
            self._inspect_leak(spec, pkt_index, leak_type)
        else:
            # The pure-packet pipeline cannot know a priori which
            # packets carry PII — it inspects every payload.  (Fluid
            # mode is exempt precisely because the digest-parity gate
            # proves it accounts the same policy events without this.)
            self._scan_clear(spec, pkt_index)
        if last:
            self.ledger.record("flow_complete", spec.device, spec.seq,
                               spec.n_packets)
            if self.ledger.keep_records:
                self.completion_times[(spec.device, spec.seq)] = self.sim.now
            if self.flows.is_current(slot, generation):
                self._close_flow(slot, spec, completed=True)

    # -- shared plumbing ---------------------------------------------------

    def _materialize(self, spec: HybridFlow, pkt_index: int,
                     handshake: bool = False) -> Packet:
        device = spec.device
        return Packet(
            src=f"10.{(device >> 8) % 250}.{device % 250}.2",
            dst="198.51.100.30" if spec.dst_device < 0
                else f"10.{(spec.dst_device >> 8) % 250}."
                     f"{spec.dst_device % 250}.2",
            protocol="tcp", src_port=40_000 + spec.seq % 20_000,
            dst_port=443 if spec.https else 80, size=self.mtu,
            flow_id=device * 1_000_003 + spec.seq, owner=f"d{device}",
            metadata={"handshake": True} if handshake else {},
        )

    def _scan_clear(self, spec: HybridFlow, pkt_index: int) -> None:
        """Honest per-packet DPI on a packet that carries no PII.

        Builds the request the app actually sent and runs the full
        pattern library over it; finds nothing, records nothing — but
        pays the inspection cost a real pipeline pays on every packet.
        """
        body = b"seg=%d&flow=%d" % (pkt_index, spec.seq)
        request = HttpRequest("POST", spec.host, "/data", body=body,
                              https=spec.https)
        for pattern in PII_PATTERNS.values():
            if pattern.search(request.body):  # pragma: no cover - benign
                raise AssertionError("clear-body packet matched PII")

    def _inspect_leak(self, spec: HybridFlow, pkt_index: int,
                      leak_type: str) -> None:
        """Run one flagged packet's payload past the real PII library."""
        body = _pii_body(leak_type, spec.device, spec.seq)
        request = HttpRequest("POST", spec.host, "/collect", body=body,
                              https=spec.https)
        hits = sorted({
            pii_type for pii_type, pattern in PII_PATTERNS.items()
            if pattern.search(request.body)
        })
        violation = bool(hits) and (spec.third_party or not spec.https)
        self.ledger.record(
            "pii", spec.device, spec.seq, int(pkt_index), ",".join(hits),
            int(spec.https), int(spec.third_party), int(violation))
        if violation:
            self.ledger.bump("pii_violation")

    def _close_flow(self, slot: int, spec: HybridFlow,
                    completed: bool) -> None:
        cell = int(self.flows.col("cell")[slot])
        self.cell_count[cell] -= 1
        self.cell_dirty[cell] = True
        flows = self._device_flows.get(spec.device)
        if flows is not None:
            flows.discard(slot)
            if not flows:
                del self._device_flows[spec.device]
        self.flows.release(slot)
        if completed:
            self.flows_completed += 1
            if spec.dst_device >= 0:
                self.outbox.append((spec.dst_device, (
                    "xflow", spec.device, spec.dst_device, spec.seq,
                    spec.n_packets, len(spec.leak_packets))))
        else:
            self.flows_aborted += 1

    # -- telemetry taps ----------------------------------------------------

    def cell_rate_bps(self, cell: int) -> float:
        """Bytes-per-second carried by a cell over the last tick, in bps."""
        return float(self._cell_bytes[cell]) * 8.0 / self.tick

    def cell_rate_pps(self, cell: int) -> float:
        """Packet-equivalents per second carried by a cell, last tick."""
        return float(self._cell_bytes[cell]) / self._mtu_f / self.tick

    @property
    def active_flows(self) -> int:
        return len(self.flows)

    def counters(self) -> dict[str, float]:
        return {
            "ticks": self.ticks,
            "epochs": self.epochs,
            "cells_recomputed": self.cells_recomputed,
            "policy_packets": self.policy_packets,
            "packet_events": self.packet_events,
            "flows_opened": self.flows_opened,
            "flows_completed": self.flows_completed,
            "flows_aborted": self.flows_aborted,
            "packets_total": self.packets_total,
            "active_flows": len(self.flows),
        }
