"""Physical topologies.

A :class:`PhysicalTopology` is a ``networkx`` graph annotated with the
attributes the PVN deployment machinery needs:

* node ``kind``: ``"host"``, ``"ap"``, ``"switch"``, ``"nfv"``,
  ``"gateway"``, ``"server"``, or ``"middlebox"`` (a *physical*
  middlebox the provider already operates — Fig. 1(b) reuse),
* node ``cpu`` / ``memory_bytes`` for NFV hosts,
* edge ``latency`` (one-way seconds) and ``bandwidth_bps``.

Builders at the bottom construct the canonical scenarios used by the
experiments: a PVN-capable access network, a multihomed variant
(Fig. 1(c)), and a wide area with cloud and home networks for the
tunneling baselines.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import networkx as nx

from repro.errors import ConfigurationError
from repro.netsim.link import Link
from repro.netsim.node import Host, Node, RoutingNode
from repro.netsim.simulator import Simulator
from repro.units import transmission_delay

NODE_KINDS = {"host", "ap", "switch", "nfv", "gateway", "server", "middlebox"}


class PhysicalTopology:
    """An annotated undirected graph of the physical network."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self.graph = nx.Graph()
        #: Bumped on every routing-affecting mutation (nodes, links,
        #: link up/down).  Embedding caches validate against it so a
        #: memoized placement can never survive a topology change.
        self.version = 0

    # -- construction ------------------------------------------------------

    def add_node(self, name: str, kind: str, **attrs: object) -> None:
        if kind not in NODE_KINDS:
            raise ConfigurationError(
                f"unknown node kind {kind!r}; expected one of {sorted(NODE_KINDS)}"
            )
        self.graph.add_node(name, kind=kind, **attrs)
        self.version += 1

    def add_link(
        self,
        a: str,
        b: str,
        latency: float,
        bandwidth_bps: float,
        loss_rate: float = 0.0,
    ) -> None:
        for endpoint in (a, b):
            if endpoint not in self.graph:
                raise ConfigurationError(f"unknown node {endpoint!r}")
        self.graph.add_edge(
            a, b, latency=latency, bandwidth_bps=bandwidth_bps,
            loss_rate=loss_rate,
        )
        self.version += 1

    # -- queries -----------------------------------------------------------

    def kind_of(self, name: str) -> str:
        return self.graph.nodes[name]["kind"]

    def nodes_of_kind(self, kind: str, include_wide_area: bool = True
                      ) -> list[str]:
        """Nodes of ``kind``; ``include_wide_area=False`` restricts to
        the access network proper (excludes cloud/home NFV sites)."""
        return sorted(
            n for n, data in self.graph.nodes(data=True)
            if data["kind"] == kind
            and (include_wide_area or not data.get("wide_area"))
        )

    def shortest_path(self, src: str, dst: str) -> list[str]:
        """Latency-weighted shortest path (node names, inclusive).

        Links taken down by fault injection (:meth:`set_link_down`) are
        invisible to routing; a partition raises
        :class:`~repro.errors.ConfigurationError`.
        """
        def usable_latency(a: str, b: str, data: dict) -> float | None:
            return None if data.get("down") else data["latency"]

        try:
            return nx.shortest_path(self.graph, src, dst,
                                    weight=usable_latency)
        except nx.NetworkXNoPath:
            raise ConfigurationError(
                f"no usable path {src!r} -> {dst!r} "
                "(network partitioned by down links)"
            ) from None

    # -- fault state -------------------------------------------------------

    def _edge(self, a: str, b: str) -> dict:
        try:
            return self.graph.edges[a, b]
        except KeyError:
            raise ConfigurationError(f"no link {a!r} <-> {b!r}") from None

    def set_link_down(self, a: str, b: str) -> None:
        """Mark a link failed: routing and embedding avoid it."""
        self._edge(a, b)["down"] = True
        self.version += 1

    def set_link_up(self, a: str, b: str) -> None:
        self._edge(a, b)["down"] = False
        self.version += 1

    def link_is_down(self, a: str, b: str) -> bool:
        return bool(self._edge(a, b).get("down", False))

    def down_links(self) -> list[tuple[str, str]]:
        return sorted(
            (min(a, b), max(a, b))
            for a, b, data in self.graph.edges(data=True)
            if data.get("down")
        )

    def set_link_loss(self, a: str, b: str, loss_rate: float) -> float:
        """Override a link's loss rate; returns the previous rate so
        burst injections can restore it."""
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0,1), got {loss_rate}"
            )
        edge = self._edge(a, b)
        previous = float(edge.get("loss_rate", 0.0))
        edge["loss_rate"] = float(loss_rate)
        return previous

    def path_latency(self, path: list[str], size_bytes: int = 40) -> float:
        """One-way delay along ``path`` for a packet of ``size_bytes``."""
        total = 0.0
        for a, b in zip(path, path[1:]):
            edge = self.graph.edges[a, b]
            total += edge["latency"] + transmission_delay(
                size_bytes, edge["bandwidth_bps"]
            )
        return total

    def rtt(self, src: str, dst: str, size_bytes: int = 40) -> float:
        """Unloaded round-trip time between two nodes."""
        return 2.0 * self.path_latency(self.shortest_path(src, dst), size_bytes)

    def path_bottleneck_bps(self, path: list[str]) -> float:
        return min(
            self.graph.edges[a, b]["bandwidth_bps"]
            for a, b in zip(path, path[1:])
        )

    def path_loss_rate(self, path: list[str]) -> float:
        survive = 1.0
        for a, b in zip(path, path[1:]):
            survive *= 1.0 - self.graph.edges[a, b].get("loss_rate", 0.0)
        return 1.0 - survive

    # -- instantiation -------------------------------------------------------

    def instantiate(
        self, sim: Simulator, host_ips: dict[str, str] | None = None
    ) -> dict[str, Node]:
        """Create live :class:`Node`/:class:`Link` objects for this graph.

        ``host`` and ``server`` nodes become :class:`Host` (IPs taken
        from ``host_ips`` or synthesised); everything else becomes a
        :class:`RoutingNode`.  Routing tables are left to the caller
        (or to the SDN controller).
        """
        host_ips = host_ips or {}
        nodes: dict[str, Node] = {}
        next_ip = 1
        for name, data in sorted(self.graph.nodes(data=True)):
            if data["kind"] in ("host", "server"):
                ip = host_ips.get(name, f"10.250.0.{next_ip}")
                next_ip += 1
                nodes[name] = Host(sim, name, ip)
            else:
                nodes[name] = RoutingNode(sim, name)
        for a, b, data in sorted(self.graph.edges(data=True)):
            Link(
                nodes[a], nodes[b],
                latency=data["latency"],
                bandwidth_bps=data["bandwidth_bps"],
            )
        return nodes


@dataclasses.dataclass(frozen=True)
class AccessNetworkSpec:
    """Parameters for the canonical PVN-capable access network."""

    n_aps: int = 2
    n_nfv_hosts: int = 2
    wireless_latency: float = 0.008      # device <-> AP, one way
    wireless_bandwidth_bps: float = 40e6
    wireless_loss_rate: float = 0.005
    backhaul_latency: float = 0.002
    backhaul_bandwidth_bps: float = 1e9
    nfv_cpu: int = 16
    nfv_memory_bytes: int = 8_000_000_000
    physical_middleboxes: tuple[str, ...] = ("tcp_proxy", "cache")


def build_access_network(
    spec: AccessNetworkSpec | None = None, name: str = "isp"
) -> PhysicalTopology:
    """The canonical access network of Fig. 1(b).

    devices -- AP(s) -- aggregation switch -- core switch -- gateway,
    with NFV hosts and the provider's existing physical middleboxes
    hanging off the aggregation layer.
    """
    spec = spec or AccessNetworkSpec()
    topo = PhysicalTopology(name)
    topo.add_node("agg", kind="switch")
    topo.add_node("core", kind="switch")
    topo.add_node("gw", kind="gateway")
    topo.add_link("agg", "core", spec.backhaul_latency, spec.backhaul_bandwidth_bps)
    topo.add_link("core", "gw", spec.backhaul_latency, spec.backhaul_bandwidth_bps)
    for i in range(spec.n_aps):
        ap = f"ap{i}"
        topo.add_node(ap, kind="ap")
        topo.add_link(ap, "agg", spec.backhaul_latency, spec.backhaul_bandwidth_bps)
    for i in range(spec.n_nfv_hosts):
        nfv = f"nfv{i}"
        topo.add_node(nfv, kind="nfv", cpu=spec.nfv_cpu,
                      memory_bytes=spec.nfv_memory_bytes)
        topo.add_link(nfv, "agg", 0.0005, spec.backhaul_bandwidth_bps)
    for service in spec.physical_middleboxes:
        mbox = f"pmb_{service}"
        topo.add_node(mbox, kind="middlebox", service=service)
        topo.add_link(mbox, "core", 0.0005, spec.backhaul_bandwidth_bps)
    return topo


def attach_device(
    topo: PhysicalTopology,
    device_name: str,
    ap: str = "ap0",
    latency: float | None = None,
    bandwidth_bps: float | None = None,
    loss_rate: float | None = None,
    spec: AccessNetworkSpec | None = None,
) -> None:
    """Attach a device host to an AP with wireless characteristics."""
    spec = spec or AccessNetworkSpec()
    topo.add_node(device_name, kind="host")
    topo.add_link(
        device_name, ap,
        latency=spec.wireless_latency if latency is None else latency,
        bandwidth_bps=(spec.wireless_bandwidth_bps
                       if bandwidth_bps is None else bandwidth_bps),
        loss_rate=spec.wireless_loss_rate if loss_rate is None else loss_rate,
    )


def build_wide_area(
    access: PhysicalTopology,
    cloud_rtt: float = 0.040,
    home_rtt: float = 0.060,
    server_rtt: float = 0.050,
    wan_bandwidth_bps: float = 1e9,
) -> PhysicalTopology:
    """Extend an access network with cloud, home, and content servers.

    The RTT arguments are round-trip times from the access gateway, as
    in §3.2's "10s of ms for well connected networks"; they are split
    into one-way latencies on the WAN edges.
    """
    for name, rtt in (("cloud", cloud_rtt), ("home", home_rtt)):
        access.add_node(name, kind="nfv", cpu=64,
                        memory_bytes=64_000_000_000, wide_area=True)
        access.add_link("gw", name, rtt / 2.0, wan_bandwidth_bps)
    access.add_node("origin", kind="server")
    access.add_link("gw", "origin", server_rtt / 2.0, wan_bandwidth_bps)
    return access


def build_multihomed_access(spec: AccessNetworkSpec | None = None) -> PhysicalTopology:
    """Fig. 1(c): an access network with two upstream paths (WiFi + cell)."""
    topo = build_access_network(spec, name="multihomed")
    topo.add_node("gw_cell", kind="gateway")
    topo.add_link("core", "gw_cell", 0.015, 100e6)
    return topo


def iter_edges_with_attrs(
    topo: PhysicalTopology,
) -> Iterable[tuple[str, str, dict]]:
    """Stable iteration over annotated edges (sorted, for determinism)."""
    for a, b, data in sorted(topo.graph.edges(data=True)):
        yield a, b, data
