"""Struct-of-array (SoA) state tables for vectorized simulation.

The hybrid fluid/packet engine (:mod:`repro.netsim.fluid`) tracks tens
of thousands of concurrent flows per tick.  One Python object per flow
— the array-of-struct layout the rest of ``netsim`` uses for packets —
would put every per-tick update behind attribute lookups and object
churn.  A :class:`SoaTable` instead stores each field as one parallel
column (a ``numpy`` array for numeric fields, a plain list for object
fields), so per-tick math (rate recomputation, residual drain,
completion detection) runs as whole-column vector operations.

Rows are addressed by *slot*: :meth:`~SoaTable.allocate` hands out the
lowest-overhead free slot (LIFO free list, so hot cache lines are
reused) and :meth:`~SoaTable.release` returns it.  Because slots are
recycled, every release bumps the slot's **generation**; asynchronous
consumers (e.g. an in-flight packet event firing after its flow was
torn down) capture ``(slot, generation)`` and check
:meth:`~SoaTable.is_current` before touching columns.

Columns grow by doubling; callers must re-read column references via
:meth:`~SoaTable.col` after any ``allocate`` that may have grown the
table (the engine reads columns once per tick, which is safe because
the population only changes at tick boundaries).
"""

from __future__ import annotations

import numpy as np

#: Numeric column dtypes accepted by :class:`SoaTable`.
_NUMERIC_DTYPES = {"f8": np.float64, "i8": np.int64, "b1": np.bool_}

#: Marker for a Python-object column (stored as a list, not an array).
OBJECT = "obj"


class SoaTable:
    """Parallel columns + a free list: vectorized row storage.

    >>> t = SoaTable({"rate": "f8", "owner": "i8", "spec": "obj"})
    >>> s = t.allocate(rate=2.0, owner=7, spec=("flow", 0))
    >>> t.col("rate")[s]
    2.0
    >>> t.release(s)
    >>> len(t)
    0
    """

    def __init__(self, columns: dict[str, str], capacity: int = 256) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self._capacity = max(8, int(capacity))
        self._numeric: dict[str, np.ndarray] = {}
        self._objects: dict[str, list] = {}
        for name, dtype in columns.items():
            if dtype == OBJECT:
                self._objects[name] = [None] * self._capacity
            elif dtype in _NUMERIC_DTYPES:
                self._numeric[name] = np.zeros(
                    self._capacity, dtype=_NUMERIC_DTYPES[dtype])
            else:
                raise ValueError(
                    f"unknown dtype {dtype!r} for column {name!r}; "
                    f"use one of {sorted(_NUMERIC_DTYPES)} or {OBJECT!r}")
        self._alive = np.zeros(self._capacity, dtype=np.bool_)
        self._generation = np.zeros(self._capacity, dtype=np.int64)
        self._free: list[int] = list(range(self._capacity - 1, -1, -1))
        self._live = 0
        self.high_water = 0

    # -- shape -----------------------------------------------------------

    def __len__(self) -> int:
        return self._live

    @property
    def capacity(self) -> int:
        return self._capacity

    def _grow(self) -> None:
        old = self._capacity
        new = old * 2
        for name, column in self._numeric.items():
            grown = np.zeros(new, dtype=column.dtype)
            grown[:old] = column
            self._numeric[name] = grown
        for name, column in self._objects.items():
            column.extend([None] * old)
        alive = np.zeros(new, dtype=np.bool_)
        alive[:old] = self._alive
        self._alive = alive
        generation = np.zeros(new, dtype=np.int64)
        generation[:old] = self._generation
        self._generation = generation
        self._free.extend(range(new - 1, old - 1, -1))
        self._capacity = new

    # -- row lifecycle ---------------------------------------------------

    def allocate(self, **values) -> int:
        """Claim a slot and initialise the named columns; returns the slot."""
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self._alive[slot] = True
        self._live += 1
        self.high_water = max(self.high_water, self._live)
        for name, value in values.items():
            if name in self._numeric:
                self._numeric[name][slot] = value
            elif name in self._objects:
                self._objects[name][slot] = value
            else:
                raise KeyError(f"no column {name!r}")
        return slot

    def release(self, slot: int) -> None:
        """Return a slot to the free list (its generation advances)."""
        if not self._alive[slot]:
            raise KeyError(f"slot {slot} is not live")
        self._alive[slot] = False
        self._generation[slot] += 1
        self._live -= 1
        # Drop the object references so released rows don't pin payloads.
        for column in self._objects.values():
            column[slot] = None
        self._free.append(slot)

    def generation(self, slot: int) -> int:
        """The slot's current generation (captured by async consumers)."""
        return int(self._generation[slot])

    def is_current(self, slot: int, generation: int) -> bool:
        """True iff the slot is live and still on ``generation``."""
        return bool(self._alive[slot]) and self._generation[slot] == generation

    # -- column access ---------------------------------------------------

    def col(self, name: str):
        """The full-capacity column; mask with :meth:`live_slots`.

        Numeric columns are ``numpy`` arrays (mutate in place); object
        columns are plain lists.  References are invalidated by growth,
        so re-read after allocations.
        """
        if name in self._numeric:
            return self._numeric[name]
        if name in self._objects:
            return self._objects[name]
        raise KeyError(f"no column {name!r}")

    def live_slots(self) -> np.ndarray:
        """Live slot indices in ascending order (deterministic)."""
        return np.nonzero(self._alive)[0]

    @property
    def alive(self) -> np.ndarray:
        """The liveness mask (read-only by convention)."""
        return self._alive
