"""Discrete-event network simulation substrate.

Public surface:

* :class:`Simulator` — the event loop.
* :class:`Packet`, :class:`Link`, :class:`Node`, :class:`Host`,
  :class:`RoutingNode` — the data plane.
* :class:`PhysicalTopology` and builders — annotated topologies.
* :mod:`repro.netsim.tcp` — rounds-based TCP transfer models.
* :mod:`repro.netsim.flows` — page-load and ABR-video models.
* :mod:`repro.netsim.fluid` — hybrid fluid/packet population engine
  over :class:`SoaTable` vectorized flow state.
"""

from repro.netsim.batching import TickBatcher
from repro.netsim.events import Event, EventPriority
from repro.netsim.fluid import (
    MODE_FLUID,
    MODE_PACKET,
    HybridFlow,
    HybridPopulationEngine,
    PolicyLedger,
    max_min_fair_share,
    waterfill,
)
from repro.netsim.link import Link, link_rtt
from repro.netsim.node import Host, Node, RoutingNode
from repro.netsim.packet import Packet
from repro.netsim.queueing import DropTailQueue, RateMeter, TokenBucket
from repro.netsim.randomness import (
    RandomStreams,
    default_streams,
    derive_seed,
    seed_default_streams,
    shard_seed,
)
from repro.netsim.simulator import Simulator
from repro.netsim.soa import SoaTable
from repro.netsim.tcp import (
    PathCharacteristics,
    TcpParams,
    TransferResult,
    mathis_throughput_bps,
    simulate_split_transfer,
    simulate_transfer,
)
from repro.netsim.topology import (
    AccessNetworkSpec,
    PhysicalTopology,
    attach_device,
    build_access_network,
    build_multihomed_access,
    build_wide_area,
)
from repro.netsim.trace import LatencySummary, Tracer

__all__ = [
    "AccessNetworkSpec",
    "DropTailQueue",
    "Event",
    "EventPriority",
    "Host",
    "HybridFlow",
    "HybridPopulationEngine",
    "LatencySummary",
    "Link",
    "MODE_FLUID",
    "MODE_PACKET",
    "Node",
    "Packet",
    "PathCharacteristics",
    "PhysicalTopology",
    "PolicyLedger",
    "RandomStreams",
    "RateMeter",
    "RoutingNode",
    "Simulator",
    "SoaTable",
    "TcpParams",
    "TickBatcher",
    "TokenBucket",
    "Tracer",
    "TransferResult",
    "attach_device",
    "build_access_network",
    "build_multihomed_access",
    "build_wide_area",
    "default_streams",
    "derive_seed",
    "seed_default_streams",
    "shard_seed",
    "link_rtt",
    "mathis_throughput_bps",
    "max_min_fair_share",
    "simulate_split_transfer",
    "simulate_transfer",
    "waterfill",
]
