"""Same-tick burst coalescing for batched datapaths.

A :class:`TickBatcher` turns "N packets delivered at the same simulated
instant" into "one vector handed to the datapath".  Deliveries buffer
as they arrive; the first one schedules a single flush event at the
*same* timestamp with :data:`~repro.netsim.events.EventPriority.BACKGROUND`
priority, so every NORMAL-priority delivery scheduled for that instant
lands in the buffer before the flush fires.  The flush hands the whole
burst to the consumer (e.g. :meth:`repro.sdn.switch.SdnSwitch.process_batch`)
as one list, amortizing per-packet Python overhead across the vector.

Simulation-time semantics are unchanged: the flush fires at the exact
timestamp the packets arrived, after same-instant control-plane
(CONTROL) and data-plane (NORMAL) events — the same ordering a
per-packet datapath observes for rule installs racing packets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generic, TypeVar

from repro.netsim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.simulator import Simulator

T = TypeVar("T")


class TickBatcher(Generic[T]):
    """Coalesce items added at one simulated instant into one flush.

    Parameters
    ----------
    sim:
        The simulator whose clock defines "the same tick".
    flush:
        Called once per tick with the list of items added during it.
    priority:
        Event priority of the flush (default BACKGROUND, i.e. after
        every normal delivery scheduled for the same instant).
    """

    def __init__(
        self,
        sim: "Simulator",
        flush: Callable[[list[T]], None],
        priority: int = EventPriority.BACKGROUND,
    ) -> None:
        self.sim = sim
        self.flush = flush
        self.priority = priority
        self._buffer: list[T] = []
        self._scheduled = False
        self.flushes = 0
        self.items = 0
        self.max_batch = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def add(self, item: T) -> None:
        """Buffer one item; the first of a tick schedules the flush."""
        self._buffer.append(item)
        if not self._scheduled:
            self._scheduled = True
            self.sim.schedule(0.0, self._flush, priority=self.priority)

    def _flush(self) -> None:
        # Reset state *before* calling out: the consumer may cause new
        # same-tick arrivals (zero-latency loops), which then open a
        # fresh batch rather than mutating the one being processed.
        batch = self._buffer
        self._buffer = []
        self._scheduled = False
        if not batch:
            return
        self.flushes += 1
        self.items += len(batch)
        if len(batch) > self.max_batch:
            self.max_batch = len(batch)
        self.flush(batch)

    @property
    def mean_batch(self) -> float:
        """Average coalesced batch size so far."""
        return self.items / self.flushes if self.flushes else 0.0
