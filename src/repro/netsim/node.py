"""Simulation nodes: hosts, routers, and processing nodes.

The class hierarchy is deliberately small:

* :class:`Node` — attachment points for links, hop recording.
* :class:`Host` — an endpoint with an IPv4 address; delivers packets to
  registered application handlers and can originate traffic.
* :class:`RoutingNode` — a classic longest-prefix / next-hop router used
  for the non-SDN parts of topologies (the wide area).  SDN switches
  live in :mod:`repro.sdn.switch` and subclass :class:`Node` too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError
from repro.netproto.addresses import ip_in_subnet
from repro.netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.link import Link
    from repro.netsim.simulator import Simulator

PacketHandler = Callable[[Packet], None]


class Node:
    """A named attachment point in the simulated network."""

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.links: dict[str, "Link"] = {}
        # Per-node throughput counter: every receive() increments it,
        # giving datapath experiments a uniform packets-seen figure
        # across hosts, routers, and SDN switches.
        self.packets_seen = 0

    def attach_link(self, link: "Link") -> None:
        """Register a link whose far end is another node (Link calls this)."""
        peer = link.a if link.b is self else link.b
        self.links[peer.name] = link

    def link_to(self, peer_name: str) -> "Link":
        """The link toward a directly connected peer."""
        try:
            return self.links[peer_name]
        except KeyError:
            raise ConfigurationError(
                f"{self.name} has no link to {peer_name}; "
                f"neighbors: {sorted(self.links)}"
            ) from None

    def send(self, packet: Packet, via: str) -> None:
        """Transmit ``packet`` over the link to neighbor ``via``."""
        self.link_to(via).transmit(packet, self)

    def receive(self, packet: Packet, link: "Link") -> None:
        """Handle an arriving packet.  Subclasses override."""
        self.packets_seen += 1
        packet.record_hop(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class Host(Node):
    """An endpoint with an address, app handlers, and delivery records."""

    def __init__(self, sim: "Simulator", name: str, ip: str) -> None:
        super().__init__(sim, name)
        self.ip = ip
        self.delivered: list[Packet] = []
        self._handlers: dict[int, PacketHandler] = {}
        self._default_handler: PacketHandler | None = None

    def bind(self, port: int, handler: PacketHandler) -> None:
        """Deliver packets addressed to ``port`` to ``handler``."""
        self._handlers[port] = handler

    def bind_default(self, handler: PacketHandler) -> None:
        """Handler for packets with no port-specific binding."""
        self._default_handler = handler

    def receive(self, packet: Packet, link: "Link") -> None:
        super().receive(packet, link)
        packet.delivered_at = self.sim.now
        self.delivered.append(packet)
        handler = self._handlers.get(packet.dst_port, self._default_handler)
        if handler is not None:
            handler(packet)

    def originate(self, packet: Packet, via: str) -> None:
        """Stamp creation time/hop and transmit toward ``via``."""
        packet.created_at = self.sim.now
        packet.record_hop(self.name)
        self.send(packet, via)


class RoutingNode(Node):
    """A destination-prefix router with static routes.

    Routes are ``(cidr, next_hop_name)`` pairs; the most specific
    matching prefix wins.  A default route uses ``"0.0.0.0/0"``.
    """

    def __init__(self, sim: "Simulator", name: str) -> None:
        super().__init__(sim, name)
        self._routes: list[tuple[str, int, str]] = []  # (cidr, prefixlen, hop)

    def add_route(self, cidr: str, next_hop: str) -> None:
        prefix_len = int(cidr.split("/")[1]) if "/" in cidr else 32
        self._routes.append((cidr, prefix_len, next_hop))
        self._routes.sort(key=lambda r: -r[1])

    def next_hop(self, dst_ip: str) -> str | None:
        for cidr, _, hop in self._routes:
            if ip_in_subnet(dst_ip, cidr):
                return hop
        return None

    def receive(self, packet: Packet, link: "Link") -> None:
        super().receive(packet, link)
        hop = self.next_hop(packet.dst)
        if hop is None:
            packet.mark_dropped(f"no route to {packet.dst} at {self.name}")
            return
        self.send(packet, hop)
