"""Simulated packets.

A :class:`Packet` is a five-tuple plus a stack of protocol payloads
(objects from :mod:`repro.netproto`) and bookkeeping used by the PVN
auditor: every node a packet traverses appends itself to the packet's
``trail``, which is what path proofs are checked against.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any

_packet_ids = itertools.count(1)


@dataclasses.dataclass(slots=True)
class Packet:
    """One simulated packet (or packet-train for flow-level models).

    Slotted: packets are allocated per event in replay loops, and the
    fixed layout removes the per-instance ``__dict__`` (see the
    allocation guard in ``benchmarks/test_bench_micro.py``).

    Attributes
    ----------
    src, dst:
        IPv4 addresses as dotted strings.
    protocol:
        Transport protocol name: ``"tcp"``, ``"udp"``, or ``"icmp"``.
    src_port, dst_port:
        Transport ports (0 for ICMP).
    size:
        Total size in bytes, headers included.
    payload:
        Optional application-layer object (HTTP message, DNS message,
        TLS record, raw bytes...).  Middleboxes inspect and may rewrite
        this.
    flow_id:
        Stable identifier shared by packets of the same flow.
    owner:
        Identifier of the subscriber/device whose traffic this is; PVN
        isolation is enforced and audited on this field.
    trail:
        Names of the nodes traversed, appended in order.
    metadata:
        Free-form annotations (middlebox verdicts, classifier labels,
        tunnel markers).  Never used for forwarding decisions by the
        data plane itself.
    """

    src: str
    dst: str
    protocol: str = "tcp"
    src_port: int = 0
    dst_port: int = 0
    size: int = 1500
    payload: Any = None
    flow_id: int = 0
    owner: str = ""
    packet_id: int = dataclasses.field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    delivered_at: float | None = None
    dropped: bool = False
    drop_reason: str = ""
    trail: list[str] = dataclasses.field(default_factory=list)
    metadata: dict[str, Any] = dataclasses.field(default_factory=dict)

    def five_tuple(self) -> tuple[str, str, str, int, int]:
        """The (src, dst, protocol, src_port, dst_port) key."""
        return (self.src, self.dst, self.protocol, self.src_port, self.dst_port)

    def flow_key(self) -> tuple[str, str, str, int, int, str]:
        """The exact-match microflow key: five-tuple plus ``owner``.

        ``owner`` is part of the key because flow rules match on it
        (per-user isolation), so two packets identical in the five-tuple
        but owned by different subscribers can win different rules.
        """
        return (self.src, self.dst, self.protocol,
                self.src_port, self.dst_port, self.owner)

    def record_hop(self, node_name: str) -> None:
        """Append a traversed node to the audit trail."""
        self.trail.append(node_name)

    def mark_dropped(self, reason: str) -> None:
        """Mark the packet dropped with a reason for traces and audits."""
        self.dropped = True
        self.drop_reason = reason

    def reply_template(self, size: int | None = None) -> "Packet":
        """A new packet going the opposite direction on the same flow."""
        return Packet(
            src=self.dst,
            dst=self.src,
            protocol=self.protocol,
            src_port=self.dst_port,
            dst_port=self.src_port,
            size=self.size if size is None else size,
            flow_id=self.flow_id,
            owner=self.owner,
        )

    def copy(self) -> "Packet":
        """A deep-enough copy with a fresh packet id and empty trail."""
        return Packet(
            src=self.src,
            dst=self.dst,
            protocol=self.protocol,
            src_port=self.src_port,
            dst_port=self.dst_port,
            size=self.size,
            payload=self.payload,
            flow_id=self.flow_id,
            owner=self.owner,
            created_at=self.created_at,
            metadata=dict(self.metadata),
        )
