"""Seeded random-number streams.

Every stochastic component draws from its own named stream derived from
a single experiment seed, so adding a new component never perturbs the
draws of existing ones and results stay reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 63-bit child seed from ``(root_seed, name)``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def shard_seed(root_seed: int, shard_index: int) -> int:
    """The seed for one worker shard of a partitioned experiment.

    Derived from the root seed and the shard *index only* — never the
    shard count — so a shard's stream factory is stable while the
    population is repartitioned.  Output-affecting draws must still be
    keyed per entity (``derive_seed(root, f"device:{i}")``), not per
    shard: that is what makes merged results byte-identical regardless
    of how many shards ran (see ``repro.experiments.runner``).
    """
    return derive_seed(root_seed, f"shard:{shard_index}")


class RandomStreams:
    """A factory of independent, named ``numpy`` generators.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("loss")
    >>> b = streams.get("loss")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                derive_seed(self.seed, name)
            )
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child factory with an independent seed namespace."""
        return RandomStreams(derive_seed(self.seed, f"spawn:{name}"))


_default_streams = RandomStreams(seed=0)


def default_streams() -> RandomStreams:
    """The process-wide stream factory.

    Components that are not handed an explicit generator (e.g. a
    :class:`~repro.netsim.link.Link` with a loss rate but no ``rng``)
    derive their stream from here, so every loss draw in the process
    follows the same seeded-RNG discipline.
    """
    return _default_streams


def seed_default_streams(seed: int) -> RandomStreams:
    """Re-seed the process-wide factory (fresh streams, old ones kept
    by whoever already grabbed them) and return it."""
    global _default_streams
    _default_streams = RandomStreams(seed)
    return _default_streams
