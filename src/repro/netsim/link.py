"""Point-to-point links.

A :class:`Link` joins two nodes bidirectionally.  Each direction has
its own serialisation state (a link can be busy A->B while idle B->A),
a drop-tail buffer, an optional random loss rate (wireless links), and
an optional :class:`~repro.netsim.queueing.TokenBucket` shaper used to
model ISP policy applied on a physical link.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.netsim.packet import Packet
from repro.netsim.queueing import TokenBucket
from repro.netsim.randomness import default_streams
from repro.units import transmission_delay

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.node import Node
    from repro.netsim.simulator import Simulator


@dataclasses.dataclass
class LinkStats:
    """Per-direction delivery counters."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    bytes_delivered: int = 0


class _Direction:
    """Serialisation state for one direction of a link."""

    def __init__(self) -> None:
        self.busy_until = 0.0
        self.stats = LinkStats()
        self.shaper: TokenBucket | None = None


class Link:
    """A bidirectional point-to-point link.

    Parameters
    ----------
    a, b:
        The two endpoint nodes; the link registers itself with both.
    latency:
        One-way propagation delay in seconds.
    bandwidth_bps:
        Serialisation rate in bits/second.
    loss_rate:
        Independent per-packet loss probability (0 disables loss).
    rng:
        Generator used for loss draws.  When omitted, the link lazily
        derives a stream named after itself from
        :func:`repro.netsim.randomness.default_streams`, so loss draws
        and fault injection share one seeded-RNG discipline.
    """

    def __init__(
        self,
        a: "Node",
        b: "Node",
        latency: float = 0.001,
        bandwidth_bps: float = 100e6,
        loss_rate: float = 0.0,
        rng: np.random.Generator | None = None,
        name: str = "",
        max_queue_delay: float | None = None,
    ) -> None:
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency}")
        if bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(f"loss_rate must be in [0,1), got {loss_rate}")
        if max_queue_delay is not None and max_queue_delay < 0:
            raise ConfigurationError("max_queue_delay must be >= 0")
        self.a = a
        self.b = b
        self.latency = float(latency)
        self.bandwidth_bps = float(bandwidth_bps)
        self.loss_rate = float(loss_rate)
        self.rng = rng
        self.max_queue_delay = max_queue_delay
        self.name = name or f"{a.name}<->{b.name}"
        self.up = True
        self._directions = {a.name: _Direction(), b.name: _Direction()}
        a.attach_link(self)
        b.attach_link(self)

    # -- wiring ----------------------------------------------------------

    def other_end(self, node: "Node") -> "Node":
        """The peer of ``node`` on this link."""
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ConfigurationError(f"{node.name} is not attached to {self.name}")

    def set_shaper(self, from_node: "Node", shaper: TokenBucket | None) -> None:
        """Install (or clear) a shaper on the ``from_node`` -> peer direction."""
        self._directions[from_node.name].shaper = shaper

    def stats_from(self, node: "Node") -> LinkStats:
        """Delivery counters for the direction leaving ``node``."""
        return self._directions[node.name].stats

    def take_down(self) -> None:
        """Fail the link: every in-flight transmit attempt is lost."""
        self.up = False

    def bring_up(self) -> None:
        self.up = True

    @property
    def _loss_rng(self) -> np.random.Generator:
        """The loss-draw generator, derived lazily from the default
        seeded streams when no rng was supplied at construction."""
        if self.rng is None:
            self.rng = default_streams().get(f"link-loss:{self.name}")
        return self.rng

    # -- data plane --------------------------------------------------------

    def one_way_delay(self, size_bytes: int) -> float:
        """Unloaded latency + serialisation for a packet of this size."""
        return self.latency + transmission_delay(size_bytes, self.bandwidth_bps)

    def transmit(self, packet: Packet, from_node: "Node") -> None:
        """Send ``packet`` from ``from_node`` toward the other end.

        Models: optional shaping delay, FIFO serialisation (the
        direction's ``busy_until``), propagation, then random loss.
        Delivery schedules ``peer.receive(packet, self)``.
        """
        sim = from_node.sim
        peer = self.other_end(from_node)
        direction = self._directions[from_node.name]
        direction.stats.sent += 1

        if not self.up:
            direction.stats.lost += 1
            packet.mark_dropped(f"link {self.name} is down")
            return

        # Drop-tail on bounded buffers: a packet that would wait longer
        # than the buffer holds is dropped at enqueue time.
        if self.max_queue_delay is not None:
            backlog = direction.busy_until - sim.now
            if backlog > self.max_queue_delay:
                direction.stats.lost += 1
                packet.mark_dropped(f"buffer overflow on {self.name}")
                return

        start = max(sim.now, direction.busy_until)
        if direction.shaper is not None:
            start += direction.shaper.delay_for(packet.size, start)
        tx_done = start + transmission_delay(packet.size, self.bandwidth_bps)
        direction.busy_until = tx_done

        if self.loss_rate > 0 and self._loss_rng.random() < self.loss_rate:
            direction.stats.lost += 1
            packet.mark_dropped(f"loss on {self.name}")
            return

        arrival = tx_done + self.latency

        def _deliver() -> None:
            direction.stats.delivered += 1
            direction.stats.bytes_delivered += packet.size
            peer.receive(packet, self)

        sim.schedule_at(arrival, _deliver)


def link_rtt(path_links: list[Link], size_bytes: int = 40) -> float:
    """Unloaded round-trip time along a list of links (small packets)."""
    one_way = sum(link.one_way_delay(size_bytes) for link in path_links)
    return 2.0 * one_way
