"""Flow-level models: web page loads and adaptive video streaming.

These sit on top of the TCP rounds model and provide the two workload
shapes the paper's motivation keeps returning to: page loads (whose
latency the §3.2 tunneling argument is about) and adaptive-bitrate
video (whose shaping the §2.2 Binge On discussion is about).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError
from repro.netsim.tcp import (
    PathCharacteristics,
    TcpParams,
    simulate_transfer,
)


@dataclasses.dataclass(frozen=True)
class WebPage:
    """A web page as a set of objects fetched over ``connections``."""

    object_sizes: list[int]
    connections: int = 6

    @property
    def total_bytes(self) -> int:
        return sum(self.object_sizes)


def synth_page(
    rng: np.random.Generator,
    n_objects: int = 20,
    median_object_bytes: int = 24_000,
) -> WebPage:
    """A synthetic page with log-normally distributed object sizes."""
    sizes = rng.lognormal(
        mean=np.log(median_object_bytes), sigma=1.0, size=n_objects
    )
    return WebPage(object_sizes=[max(400, int(s)) for s in sizes])


def page_load_time(
    page: WebPage,
    path: PathCharacteristics,
    rng: np.random.Generator,
    params: TcpParams | None = None,
    per_request_overhead: float = 0.0,
) -> float:
    """Approximate page-load time over parallel persistent connections.

    Objects are assigned round-robin to ``page.connections`` persistent
    connections; each connection fetches its objects sequentially (one
    handshake, then back-to-back transfers).  PLT is the max over
    connections — the standard waterfall approximation.
    """
    params = params or TcpParams()
    lanes = [0.0] * max(1, page.connections)
    for index, size in enumerate(page.object_sizes):
        lane = index % len(lanes)
        after_handshake = params if lanes[lane] == 0.0 else dataclasses.replace(
            params, handshake_rtts=0.0
        )
        result = simulate_transfer(size, path, after_handshake, rng)
        lanes[lane] += result.duration + per_request_overhead + path.rtt / 2
    return max(lanes)


# -- adaptive video -----------------------------------------------------------

#: A standard bitrate ladder (bps): 240p, 360p, 480p, 720p, 1080p.
DEFAULT_BITRATE_LADDER_BPS = (400_000.0, 750_000.0, 1_200_000.0,
                              2_500_000.0, 5_000_000.0)

#: Resolutions named for reporting; index-matched to the ladder.
LADDER_LABELS = ("240p", "360p", "480p", "720p", "1080p")

#: The first ladder index regarded as "HD" (720p).
HD_INDEX = 3


@dataclasses.dataclass
class VideoSessionResult:
    """Outcome of one adaptive-streaming session."""

    duration: float
    chosen_bitrate_bps: float
    chosen_label: str
    bytes_downloaded: int
    bytes_charged_to_quota: int
    rebuffer_events: int
    is_hd: bool


def stream_video(
    duration_seconds: float,
    available_bps: float,
    zero_rated: bool = False,
    ladder: tuple[float, ...] = DEFAULT_BITRATE_LADDER_BPS,
    safety_factor: float = 0.8,
) -> VideoSessionResult:
    """Model an ABR player streaming for ``duration_seconds``.

    The player picks the highest ladder rung at or below
    ``safety_factor * available_bps`` — a simple but standard
    rate-based ABR.  If even the lowest rung exceeds the available
    bandwidth, the session rebuffers periodically (one event per 10 s of
    playback, a coarse but monotone model).

    ``zero_rated`` reflects the Binge On accounting: downloaded bytes do
    not count against the monthly quota.
    """
    if duration_seconds <= 0:
        raise ConfigurationError("duration must be positive")
    if available_bps <= 0:
        raise ConfigurationError("available bandwidth must be positive")

    target = safety_factor * available_bps
    index = 0
    for rung, bitrate in enumerate(ladder):
        if bitrate <= target:
            index = rung
    if ladder[0] > target:
        index = 0
        rebuffers = int(duration_seconds // 10) + 1
    else:
        rebuffers = 0

    bitrate = ladder[index]
    nbytes = int(bitrate * duration_seconds / 8.0)
    return VideoSessionResult(
        duration=duration_seconds,
        chosen_bitrate_bps=bitrate,
        chosen_label=LADDER_LABELS[index],
        bytes_downloaded=nbytes,
        bytes_charged_to_quota=0 if zero_rated else nbytes,
        rebuffer_events=rebuffers,
        is_hd=index >= HD_INDEX,
    )
