"""Tracing and metric collection.

A :class:`Tracer` is a lightweight in-memory event log that components
append structured records to.  Experiments query it for latency
distributions, per-middlebox verdict counts, and audit evidence.
"""

from __future__ import annotations

import collections
import dataclasses
import statistics
from typing import Any, Iterable


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One structured trace event."""

    time: float
    category: str
    subject: str
    fields: tuple[tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.fields:
            if name == key:
                return value
        return default


class Tracer:
    """Append-only structured event log with simple query helpers."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def emit(self, time: float, category: str, subject: str, **fields: Any) -> None:
        """Record one event."""
        self._records.append(
            TraceRecord(time, category, subject, tuple(sorted(fields.items())))
        )

    def records(
        self, category: str | None = None, subject: str | None = None
    ) -> list[TraceRecord]:
        """Records matching the given filters, in emission order."""
        out = self._records
        if category is not None:
            out = [r for r in out if r.category == category]
        if subject is not None:
            out = [r for r in out if r.subject == subject]
        return list(out)

    def count(self, category: str, subject: str | None = None) -> int:
        return len(self.records(category, subject))

    def values(self, category: str, key: str) -> list[Any]:
        """Extract ``fields[key]`` from every record in ``category``."""
        return [
            r.get(key) for r in self.records(category) if r.get(key) is not None
        ]

    def counter(self, category: str, key: str) -> collections.Counter:
        """Histogram of ``fields[key]`` across a category."""
        return collections.Counter(self.values(category, key))

    def latest(
        self, category: str, subject: str | None = None
    ) -> TraceRecord | None:
        """The most recent record in ``category`` (None if empty).

        Datapath layers emit periodic counter snapshots (categories
        ``"flowcache"`` / ``"pipeline"`` / ``"switch"`` /
        ``"datapath"``); the latest snapshot is the current counter
        state.
        """
        for record in reversed(self._records):
            if record.category != category:
                continue
            if subject is not None and record.subject != subject:
                continue
            return record
        return None


@dataclasses.dataclass
class LatencySummary:
    """Summary statistics over a latency sample."""

    count: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencySummary":
        data = sorted(samples)
        if not data:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        p95_index = min(len(data) - 1, int(round(0.95 * (len(data) - 1))))
        return cls(
            count=len(data),
            mean=statistics.fmean(data),
            median=statistics.median(data),
            p95=data[p95_index],
            minimum=data[0],
            maximum=data[-1],
        )
