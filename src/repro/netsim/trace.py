"""Tracing and metric collection.

A :class:`Tracer` is a lightweight in-memory event log that components
append structured records to.  Experiments query it for latency
distributions, per-middlebox verdict counts, and audit evidence.

Queries are indexed: emission keeps a per-category view alongside the
global log, so ``records(category)`` / ``count(category)`` cost
O(matching records) instead of scanning every event ever emitted —
hot loops that poll one category no longer pay for the whole log.

For richer telemetry (causal spans, labelled metrics, exporters) see
:mod:`repro.obs`; the Tracer remains the flat, in-order event record
the experiments assert against.
"""

from __future__ import annotations

import collections
import dataclasses
import statistics
from typing import Any, Iterable

from repro.obs.quantiles import percentile


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One structured trace event."""

    time: float
    category: str
    subject: str
    fields: tuple[tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.fields:
            if name == key:
                return value
        return default


class Tracer:
    """Append-only structured event log with simple query helpers."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []
        # Per-category index, maintained at emit time.  Each bucket is
        # in emission order, so category-filtered queries keep the
        # exact semantics of scanning the global log.
        self._by_category: dict[str, list[TraceRecord]] = {}

    def __len__(self) -> int:
        return len(self._records)

    def emit(self, time: float, category: str, subject: str, **fields: Any) -> None:
        """Record one event."""
        record = TraceRecord(time, category, subject,
                             tuple(sorted(fields.items())))
        self._records.append(record)
        bucket = self._by_category.get(category)
        if bucket is None:
            bucket = self._by_category[category] = []
        bucket.append(record)

    def records(
        self, category: str | None = None, subject: str | None = None
    ) -> list[TraceRecord]:
        """Records matching the given filters, in emission order."""
        if category is not None:
            out = self._by_category.get(category, [])
        else:
            out = self._records
        if subject is not None:
            return [r for r in out if r.subject == subject]
        return list(out)

    def count(self, category: str, subject: str | None = None) -> int:
        if subject is None:
            return len(self._by_category.get(category, ()))
        return sum(
            1 for r in self._by_category.get(category, ())
            if r.subject == subject
        )

    def values(self, category: str, key: str) -> list[Any]:
        """Extract ``fields[key]`` from every record in ``category``."""
        return [
            r.get(key) for r in self._by_category.get(category, ())
            if r.get(key) is not None
        ]

    def counter(self, category: str, key: str) -> collections.Counter:
        """Histogram of ``fields[key]`` across a category."""
        return collections.Counter(self.values(category, key))

    def latest(
        self, category: str, subject: str | None = None
    ) -> TraceRecord | None:
        """The most recent record in ``category`` (None if empty).

        Datapath layers emit periodic counter snapshots (categories
        ``"flowcache"`` / ``"pipeline"`` / ``"switch"`` /
        ``"datapath"``); the latest snapshot is the current counter
        state.
        """
        for record in reversed(self._by_category.get(category, ())):
            if subject is not None and record.subject != subject:
                continue
            return record
        return None


@dataclasses.dataclass
class LatencySummary:
    """Summary statistics over a latency sample.

    Percentiles use linear interpolation between order statistics
    (:func:`repro.obs.quantiles.percentile`), so small samples no
    longer over-report the tail the way the old round-to-nearest-rank
    p95 did.  ``median`` and ``p50`` are the same number; both are kept
    so existing callers and percentile-minded ones read naturally.
    """

    count: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float
    p50: float = 0.0
    p99: float = 0.0

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencySummary":
        data = sorted(samples)
        if not data:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        p50 = percentile(data, 0.50, presorted=True)
        return cls(
            count=len(data),
            mean=statistics.fmean(data),
            median=p50,
            p95=percentile(data, 0.95, presorted=True),
            minimum=data[0],
            maximum=data[-1],
            p50=p50,
            p99=percentile(data, 0.99, presorted=True),
        )
