"""The discrete-event simulation core.

A :class:`Simulator` owns a priority queue of :class:`~repro.netsim.events.Event`
records and a monotonically advancing clock.  All network components
(links, nodes, middleboxes, protocols) schedule callbacks on a shared
simulator instead of sleeping, so experiments are deterministic and run
in milliseconds of wall-clock time.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(2.0, fired.append, "b")
>>> _ = sim.schedule(1.0, fired.append, "a")
>>> sim.run()
>>> fired
['a', 'b']
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SchedulingInPastError, SimulationError
from repro.netsim.events import Event, EventPriority


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial clock value in seconds (default 0.0).
    """

    #: Heaps smaller than this are never compacted: a rebuild costs
    #: more than the tombstones it would reclaim.
    COMPACTION_FLOOR = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._sequence = 0
        self._running = False
        self._processed = 0
        self._cancelled_pending = 0
        self.compactions = 0

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled events included)."""
        return len(self._queue)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots (tombstones)."""
        return self._cancelled_pending

    # -- scheduling ------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = EventPriority.NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, whose :meth:`~Event.cancel` method
        can be used to retract it before it fires.
        """
        if delay < 0:
            raise SchedulingInPastError(
                f"negative delay {delay!r} at t={self._now}"
            )
        return self.schedule_at(self._now + delay, callback, *args,
                                priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = EventPriority.NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SchedulingInPastError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        event = Event(time=float(time), priority=int(priority),
                      sequence=self._sequence, callback=callback, args=args,
                      on_cancel=self._note_cancel)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    # -- tombstone management ---------------------------------------------

    def _note_cancel(self, event: Event) -> None:
        """Account one cancellation; compact when tombstones dominate.

        Long chaos runs retract far more events than they fire (retry
        timers, lease renewals); without a bound the heap would grow
        with every *cancelled* event too.  Compaction triggers lazily
        when over half the heap is tombstones, so the amortized cost
        per cancellation stays O(log n).
        """
        self._cancelled_pending += 1
        if (len(self._queue) >= self.COMPACTION_FLOOR
                and self._cancelled_pending * 2 > len(self._queue)):
            self.queue_compaction()

    def queue_compaction(self) -> int:
        """Drop every cancelled event from the heap; returns how many.

        Event ordering is total — ``(time, priority, sequence)`` — so
        re-heapifying the survivors preserves the exact firing order.
        """
        before = len(self._queue)
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        removed = before - len(self._queue)
        self._cancelled_pending = 0
        if removed:
            self.compactions += 1
        return removed

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = event.time
            self._processed += 1
            event.fire()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        ``until`` is an absolute simulation time; when given, the clock
        is advanced to exactly ``until`` even if the queue drains early,
        which makes fixed-horizon experiments reproducible.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    return
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    self._cancelled_pending -= 1
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Run for ``duration`` seconds of simulated time from now."""
        if duration < 0:
            raise SimulationError(f"duration must be >= 0, got {duration}")
        self.run(until=self._now + duration)
