"""Event records for the discrete-event simulator.

Events are ordered by (time, priority, sequence).  The sequence number
makes ordering total and deterministic: two events scheduled for the
same instant fire in the order they were scheduled.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable


class EventPriority(enum.IntEnum):
    """Tie-break priority for events scheduled at the same instant.

    Lower values fire first.  ``CONTROL`` lets control-plane actions
    (rule installation, teardown) take effect before data-plane packets
    scheduled for the same instant.
    """

    CONTROL = 0
    NORMAL = 1
    BACKGROUND = 2


@dataclasses.dataclass(order=True)
class Event:
    """A single scheduled callback.

    Comparison uses only ``(time, priority, sequence)`` so events are
    heap-orderable regardless of their callback payloads.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[..., None] = dataclasses.field(compare=False)
    args: tuple[Any, ...] = dataclasses.field(compare=False, default=())
    cancelled: bool = dataclasses.field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (the simulator calls this)."""
        self.callback(*self.args)
