"""Event records for the discrete-event simulator.

Events are ordered by (time, priority, sequence).  The sequence number
makes ordering total and deterministic: two events scheduled for the
same instant fire in the order they were scheduled.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable


class EventPriority(enum.IntEnum):
    """Tie-break priority for events scheduled at the same instant.

    Lower values fire first.  ``CONTROL`` lets control-plane actions
    (rule installation, teardown) take effect before data-plane packets
    scheduled for the same instant.
    """

    CONTROL = 0
    NORMAL = 1
    BACKGROUND = 2


@dataclasses.dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    Comparison uses only ``(time, priority, sequence)`` so events are
    heap-orderable regardless of their callback payloads.  The class is
    slotted: events are the hottest allocation in the simulator, and a
    fixed layout drops the per-event ``__dict__``.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[..., None] = dataclasses.field(compare=False)
    args: tuple[Any, ...] = dataclasses.field(compare=False, default=())
    cancelled: bool = dataclasses.field(compare=False, default=False)
    #: Set by the owning simulator so it can count live tombstones and
    #: trigger heap compaction (see ``Simulator.queue_compaction``).
    on_cancel: Callable[["Event"], None] | None = dataclasses.field(
        compare=False, default=None, repr=False,
    )

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel(self)

    def fire(self) -> None:
        """Invoke the callback (the simulator calls this)."""
        self.callback(*self.args)
