"""E9 — §3.1/§3.3 auditing dishonest providers.

"To detect dishonest ISPs, we require that devices are able to audit
their own PVN deployments ... Should PVNs be successful, ISPs would be
incentivized to act honestly or face loss of revenue from
blacklisting."

Run the device's full audit battery against an honest provider and
the five dishonest profiles (covert shaping, content injection,
skipped middleboxes, path inflation, config tampering).  Report which
test catches each profile, detection rates across repeated audits,
false positives on the honest provider, and how many audit rounds it
takes to blacklist each cheater.
"""

from __future__ import annotations

from repro.analysis.stats import fraction
from repro.core import DishonestyProfile, PvnSession, default_pvnc
from repro.experiments.harness import ExperimentResult, main
from repro.workloads.adversary import ALL_DISHONEST_PROFILES

MAX_ROUNDS = 12


def _run_profile(name: str, profile: DishonestyProfile, seed: int):
    session = PvnSession.build(seed=seed, dishonesty=profile)
    outcome = session.connect(default_pvnc())
    assert outcome.deployed, outcome.reason
    caught_by: set[str] = set()
    rounds_with_violation = 0
    rounds_to_blacklist = 0
    for round_index in range(1, MAX_ROUNDS + 1):
        violated = session.audit()
        caught_by.update(violated)
        if violated:
            rounds_with_violation += 1
        if (rounds_to_blacklist == 0
                and session.device.reputation.blacklisted(
                    session.provider.name)):
            rounds_to_blacklist = round_index
    attestation_ok = session.device.connection.attestation_verified
    return caught_by, rounds_with_violation, rounds_to_blacklist, attestation_ok


#: A provider cheating on every axis at once — the blacklisting case.
EGREGIOUS = DishonestyProfile(
    skip_services=frozenset({"pii_detector"}),
    shape_video_to_bps=1.5e6,
    modify_content=True,
    inflate_path_by=0.150,
)


def run(seed: int = 0) -> ExperimentResult:
    profiles = (
        ("honest", DishonestyProfile()),
        *ALL_DISHONEST_PROFILES,
        ("egregious", EGREGIOUS),
    )
    rows = []
    metrics: dict[str, float] = {}
    for name, profile in profiles:
        caught_by, violation_rounds, blacklist_round, attestation_ok = (
            _run_profile(name, profile, seed)
        )
        detection_rate = fraction(violation_rounds, MAX_ROUNDS)
        caught = sorted(caught_by)
        if name == "tampering" and not attestation_ok:
            caught.append("attestation")
        rows.append((
            name,
            ", ".join(caught) if caught else "(none)",
            f"{detection_rate:.0%}",
            blacklist_round if blacklist_round else "-",
            "yes" if attestation_ok else "NO",
        ))
        metrics[f"detection_rate_{name}"] = detection_rate
        metrics[f"caught_{name}"] = float(
            bool(caught) if name != "honest" else not caught
        )
        if name != "honest" and blacklist_round:
            metrics[f"blacklist_rounds_{name}"] = float(blacklist_round)
    metrics["false_positive_rate_honest"] = metrics["detection_rate_honest"]
    metrics["all_cheaters_caught"] = float(all(
        metrics[f"caught_{name}"] for name, _ in ALL_DISHONEST_PROFILES
    ) and metrics["caught_egregious"])
    return ExperimentResult(
        experiment_id="E9",
        title="§3.1/§3.3 auditing: dishonest-provider detection over "
              f"{MAX_ROUNDS} audit rounds",
        columns=["provider profile", "caught by", "rounds w/ violation",
                 "blacklisted after", "attestation verified"],
        rows=rows,
        metrics=metrics,
        notes=[
            "each audit round runs differentiation, content-modification, "
            "path-inflation, and middlebox-execution (path-proof) tests",
            "config tampering is caught before any traffic flows: the "
            "provider cannot produce a verifiable attestation",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
