"""E5 — §2.3/§4 PII detection and blocking, by enforcement point.

"Recent approaches that identify PII in network traffic show promising
results, but require either tunneling traffic to a remote network at
the cost of extra delay or analyzing network traffic on a device, at
the cost of battery life and network performance.  An alternative
approach is to deploy in-network functionality that provides improved
privacy without performance costs."

Run a labelled leak corpus through four enforcement points and report
detection recall, what an eavesdropper beyond the enforcement point
still saw, per-request added latency, and device energy.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import fraction
from repro.experiments.harness import ExperimentResult, main
from repro.middleboxes.pii_detector import PiiDetector
from repro.netproto.http import HttpRequest
from repro.netsim.packet import Packet
from repro.nfv.middlebox import ProcessingContext, VerdictKind
from repro.workloads.adversary import Eavesdropper
from repro.workloads.device_cost import (
    EnergyModel,
    cloud_tunnel_enforcement_cost,
    in_network_enforcement_cost,
    on_device_enforcement_cost,
)
from repro.workloads.pii import synth_request_stream, synth_user

#: Enforcement-point latency model (per request).
LATENCY = {
    "none": 0.0,
    "on-device": 0.004,        # DPI on a phone CPU, ~2KB at 2us/byte
    "pvn (in-network)": 45e-6, # one middlebox container hop
    "cloud tunnel": 0.080,     # hairpin RTT to the remote deployment
}


def _run_point(point: str, requests, detector_mode: str,
               model: EnergyModel) -> dict:
    eve = Eavesdropper()
    detector = PiiDetector(mode=detector_mode) if point != "none" else None
    blocked = 0
    detected = 0
    total_bytes = 0
    for labelled in requests:
        request = HttpRequest("POST", labelled.host, body=labelled.body,
                              https=False)
        total_bytes += request.size_bytes
        packet = Packet(src="10.10.0.2", dst="203.0.113.80", dst_port=80,
                        owner="alice", payload=request)
        if detector is not None:
            context = ProcessingContext(now=0.0, owner="alice")
            verdict = detector.process(packet, context)
            if verdict.kind is VerdictKind.DROP:
                blocked += 1
                continue
            if verdict.kind is VerdictKind.REWRITE:
                detected += 1
        eve.observe(packet)
    return {
        "eve": eve,
        "blocked": blocked,
        "detected": detected + blocked,
        "bytes": total_bytes,
    }


def run(seed: int = 0, n_requests: int = 400,
        leak_probability: float = 0.35) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    user = synth_user(rng, "alice")
    requests = synth_request_stream(user, rng, n_requests=n_requests,
                                    leak_probability=leak_probability,
                                    https_fraction=0.0)
    n_leaky = sum(1 for r in requests if r.leaks)
    pii_values = list(user.pii_values().values())
    model = EnergyModel()

    rows = []
    metrics: dict[str, float] = {"leaky_requests": float(n_leaky)}
    for point in ("none", "on-device", "pvn (in-network)", "cloud tunnel"):
        outcome = _run_point(point, requests, detector_mode="scrub",
                             model=model)
        leaked_values = sum(
            1 for value in pii_values if outcome["eve"].saw(value)
        )
        nbytes = outcome["bytes"]
        if point == "none":
            cost = in_network_enforcement_cost(nbytes, model)
            cost.cpu_joules = 0.0
        elif point == "on-device":
            cost = on_device_enforcement_cost(nbytes, model)
        elif point == "cloud tunnel":
            cost = cloud_tunnel_enforcement_cost(nbytes, model)
        else:
            cost = in_network_enforcement_cost(nbytes, model)
        detection = fraction(outcome["detected"], n_leaky)
        rows.append((
            point,
            f"{detection:.0%}" if point != "none" else "-",
            leaked_values,
            LATENCY[point] * 1e3,
            cost.total_joules,
            f"{model.battery_fraction(cost.total_joules) * 100:.4f}%",
        ))
        key = point.split(" ")[0].replace("-", "_")
        metrics[f"detection_{key}"] = detection
        metrics[f"leaked_values_{key}"] = float(leaked_values)
        metrics[f"latency_ms_{key}"] = LATENCY[point] * 1e3
        metrics[f"energy_j_{key}"] = cost.total_joules

    return ExperimentResult(
        experiment_id="E5",
        title="§2.3/§4 PII: detection, exposure, latency, and device "
              "energy by enforcement point",
        columns=["enforcement", "leaks handled", "PII values still "
                 "exposed", "added latency (ms)", "device energy (J)",
                 "battery"],
        rows=rows,
        metrics=metrics,
        notes=[
            "in-network PVN matches on-device/cloud detection while "
            "paying neither phone CPU energy nor tunnel latency",
            "'PII values still exposed' counts the user's distinct PII "
            "values an eavesdropper past the enforcement point observed",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
