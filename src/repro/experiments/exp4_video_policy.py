"""E4 — §2.2 network management: Binge On vs per-flow user policy.

"T-Mobile's Binge On program ... zero-rates all participating video
provider's traffic, but also throttles it to 1.5 Mbps (often leading
to sub-HD quality) ... users cannot decide to stream at high
resolution (without zero rating) at the time the video is loaded;
rather, there is one policy that applies to all of their video
traffic."

Three schemes stream the same two videos (one the user wants in HD,
one they're happy to save quota on):

* **no policy** — everything full rate, everything billed;
* **Binge On** — everything shaped to 1.5 Mbps via a token bucket,
  everything zero-rated;
* **PVN per-flow** — the user's PVNC zero-rates+shapes the casual
  video but opts the important one out, exactly the choice the paper
  says blanket policies remove.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, main
from repro.netsim.flows import stream_video
from repro.netsim.queueing import TokenBucket

BINGE_ON_BPS = 1_500_000.0


def _shaped_rate(link_bps: float, shape_bps: float,
                 duration: float = 30.0) -> float:
    """Long-run rate through a 1.5 Mbps token bucket on ``link_bps``.

    Verifies the shaper actually enforces the cap rather than assuming
    it: send segments as fast as the bucket allows and measure.
    """
    bucket = TokenBucket(rate_bps=shape_bps, burst_bytes=16_000)
    now, sent = 0.0, 0
    segment = 15_000
    while now < duration:
        wait = bucket.delay_for(segment, now)
        now += max(wait, segment * 8.0 / link_bps)
        sent += segment
    return min(link_bps, sent * 8.0 / now)


def run(seed: int = 0, link_bps: float = 20e6,
        session_seconds: float = 120.0) -> ExperimentResult:
    shaped = _shaped_rate(link_bps, BINGE_ON_BPS)

    schemes = {}
    # Scheme 1: no policy.
    important = stream_video(session_seconds, link_bps, zero_rated=False)
    casual = stream_video(session_seconds, link_bps, zero_rated=False)
    schemes["no policy"] = (important, casual)
    # Scheme 2: Binge On — one blanket shaped+zero-rated policy.
    important_b = stream_video(session_seconds, shaped, zero_rated=True)
    casual_b = stream_video(session_seconds, shaped, zero_rated=True)
    schemes["binge-on (blanket)"] = (important_b, casual_b)
    # Scheme 3: PVN per-flow policy — user opts the important flow out.
    important_p = stream_video(session_seconds, link_bps, zero_rated=False)
    casual_p = stream_video(session_seconds, shaped, zero_rated=True)
    schemes["pvn (per-flow)"] = (important_p, casual_p)

    rows = []
    metrics: dict[str, float] = {"shaped_rate_mbps": shaped / 1e6}
    for name, (flow_a, flow_b) in schemes.items():
        hd_count = int(flow_a.is_hd) + int(flow_b.is_hd)
        quota = flow_a.bytes_charged_to_quota + flow_b.bytes_charged_to_quota
        rows.append((
            name,
            flow_a.chosen_label, flow_b.chosen_label,
            hd_count,
            quota / 1e6,
            (flow_a.bytes_downloaded + flow_b.bytes_downloaded) / 1e6,
        ))
        key = name.split(" ")[0].replace("-", "_")
        metrics[f"hd_flows_{key}"] = float(hd_count)
        metrics[f"quota_mb_{key}"] = quota / 1e6

    metrics["binge_on_is_sub_hd"] = (
        1.0 if metrics["hd_flows_binge_on"] == 0 else 0.0
    )
    return ExperimentResult(
        experiment_id="E4",
        title="§2.2 video policy: blanket Binge On throttle vs PVN "
              "per-flow choice (important + casual stream)",
        columns=["scheme", "important video", "casual video", "HD flows",
                 "quota used (MB)", "bytes moved (MB)"],
        rows=rows,
        metrics=metrics,
        notes=[
            "1.5 Mbps shaping locks every stream below 720p (sub-HD), "
            "matching the Binge On measurement the paper cites",
            "the PVN policy gets HD where the user wants it while still "
            "zero-rating the casual stream — per-flow choice",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
