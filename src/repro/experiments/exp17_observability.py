"""E17 — the observability layer's own cost.

An observability layer that bends the numbers it reports is worse than
none.  This experiment measures the overhead of :mod:`repro.obs` on
the hottest path in the repo — the E16 switch fast path — in three
modes:

* **off** — observability disabled (the default); instrumentation
  sites reduce to one module-global read and a ``None`` test.
* **metrics** — registry enabled, span tracing and per-middlebox
  profiling disabled; data-plane counters still fold in only at
  publish time, so the per-packet path is unchanged.
* **full** — spans *and* per-middlebox wall-time profiling on.

It also measures the span-synthesis cost on the PVN datapath by
processing the same packets untraced (no span context) and traced
(context injected, per-hop spans synthesized), since only traced
packets pay for tracing.

The bench suite asserts the acceptance bars: *off* within noise of
the uninstrumented baseline, *full* no more than ~10% slower.
"""

from __future__ import annotations

import time

from repro.experiments.exp16_datapath import (
    FLOWS,
    _build_switch,
    _packet_schedule,
    _replay,
)
from repro.experiments.harness import ExperimentResult, main
from repro.netsim.packet import Packet
from repro.netsim.trace import Tracer
from repro.obs import runtime as obs_runtime
from repro.obs import spans as obs_spans

#: Installed PVN rules for the switch-path sweep.
RULES = 256
#: Packets per datapath-tracing measurement.
DATAPATH_PACKETS = 512


def _switch_pps(repeats: int) -> float:
    tracer = Tracer()
    packets = _packet_schedule(RULES)
    switch = _build_switch(RULES, tracer)
    pps = max(_replay(switch, packets) for _ in range(repeats))
    switch.publish_counters(switch.sim.now)
    return pps


def _datapath_pps(session, traced: bool) -> tuple[float, int]:
    """Wall-clock packets/sec through the live PVN datapath."""
    packets = [
        Packet(src=f"10.0.{i % FLOWS}.1", dst="198.51.100.7",
               dst_port=443, owner=session.device.user)
        for i in range(DATAPATH_PACKETS)
    ]
    obs = obs_runtime.current()
    if traced and obs is not None:
        root = obs.spans.start_span("e17.traced_batch", session.sim.now)
        for packet in packets:
            obs_spans.inject(packet.metadata, root)
    deployment = session.device.connection.deployment
    process = deployment.datapath.process
    now = session.sim.now
    start = time.perf_counter()
    for packet in packets:
        process(packet, now=now)
    elapsed = time.perf_counter() - start
    if traced and obs is not None:
        obs.spans.end_span(root, session.sim.now)
    spans = len(obs.spans) if obs is not None else 0
    return (len(packets) / elapsed if elapsed > 0 else float("inf")), spans


def run(seed: int = 0, repeats: int = 3) -> ExperimentResult:
    from repro.core.session import PvnSession, default_pvnc

    # -- switch fast path under the three modes -------------------------
    # Modes are interleaved round-robin (not measured back to back) so
    # machine drift hits every mode equally; best-of-N absorbs the rest.
    pps_off = pps_metrics = pps_full = 0.0
    for _ in range(repeats):
        obs_runtime.disable()
        pps_off = max(pps_off, _switch_pps(1))
        with obs_runtime.enabled(trace_spans=False,
                                 profile_middleboxes=False):
            pps_metrics = max(pps_metrics, _switch_pps(1))
        with obs_runtime.enabled():
            pps_full = max(pps_full, _switch_pps(1))

    # -- span synthesis on the PVN datapath -----------------------------
    untraced_pps = traced_pps = 0.0
    spans_before = spans_after = 0
    with obs_runtime.enabled():
        session = PvnSession.build(seed=seed)
        session.connect(default_pvnc())
        for _ in range(repeats):
            pps, spans_before = _datapath_pps(session, traced=False)
            untraced_pps = max(untraced_pps, pps)
            pps, spans_after = _datapath_pps(session, traced=True)
            traced_pps = max(traced_pps, pps)
        session.teardown()
    obs_runtime.disable()

    def overhead(off: float, on: float) -> float:
        return 100.0 * (off - on) / off if off else 0.0

    rows = [
        ("switch, obs off", f"{pps_off:,.0f}", "baseline"),
        ("switch, metrics only", f"{pps_metrics:,.0f}",
         f"{overhead(pps_off, pps_metrics):+.1f}%"),
        ("switch, fully on", f"{pps_full:,.0f}",
         f"{overhead(pps_off, pps_full):+.1f}%"),
        ("datapath, untraced pkts", f"{untraced_pps:,.0f}", "baseline"),
        ("datapath, traced pkts", f"{traced_pps:,.0f}",
         f"{overhead(untraced_pps, traced_pps):+.1f}%"),
    ]
    return ExperimentResult(
        experiment_id="E17",
        title="observability overhead: spans + metrics on the fast path",
        columns=["path / mode", "pkts/s", "overhead"],
        rows=rows,
        metrics={
            "switch_pps_off": pps_off,
            "switch_pps_metrics": pps_metrics,
            "switch_pps_full": pps_full,
            "switch_overhead_full_pct": overhead(pps_off, pps_full),
            "datapath_pps_untraced": untraced_pps,
            "datapath_pps_traced": traced_pps,
            "datapath_overhead_traced_pct": overhead(untraced_pps,
                                                     traced_pps),
            "spans_synthesized": float(spans_after - spans_before),
        },
        notes=[
            "data-plane counters stay plain ints folded into the registry "
            "only at publish time, so per-packet metrics cost is zero by "
            "construction",
            "only packets carrying a span context pay span synthesis; "
            "untraced traffic is one dict lookup away from the obs-off "
            "path",
            "timing rows are wall-clock and vary run to run; the bench "
            "suite asserts off==baseline (within noise) and full <=10% "
            "overhead",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
