"""E14 — chaos: fault injection, repair, and graceful degradation.

The §3.3 availability question run as an experiment: subject one PVN
session to a scripted chaos scenario — middlebox crashes, link flaps,
a loss burst, provider silence, dropped discovery messages, and
finally the death of every NFV host — and measure whether the
robustness layer keeps the user's policies alive:

* every crash is **detected** and **repaired** while capacity remains,
* when repair becomes impossible the deployment **degrades** to the
  VPN tunneling fallback instead of silently hanging,
* the auditor's evidence ledger accounts for **100 %** of injected
  faults, and
* the whole run is **deterministic**: the experiment executes the
  scenario twice and compares normalised event-trace digests.
"""

from __future__ import annotations

import hashlib

from repro.core import PvnSession, default_pvnc
from repro.core.deployment.manager import DeploymentState
from repro.core.deployment.recovery import RecoveryPolicy
from repro.core.discovery.retry import RetryPolicy
from repro.experiments.harness import ExperimentResult, main
from repro.faults import FaultKind, make_event, normalise_ids
from repro.netsim.packet import Packet

#: The scripted chaos scenario: three middlebox crashes, two link
#: flaps, a loss burst, provider silence, host-level chaos (heartbeat
#: loss, a control-plane partition, an abrupt host crash), and total
#: host failure — the full fault taxonomy.
CHAOS_SCRIPT = """
# -- phase 1: crashes the provider can repair in place ----------------
at 1.0 crash tls_validator
at 1.5 crash pii_detector
at 2.0 crash transcoder

# -- phase 2: the network misbehaves ----------------------------------
at 2.2 link-down agg ap1
at 2.3 link-down gw home
at 2.4 loss-burst agg core rate=0.3 duration=0.3
at 2.6 link-up agg ap1
at 2.7 link-up gw home
at 2.8 silence duration=0.5

# -- phase 3: host-level chaos the health plane must classify ---------
at 3.0 heartbeat-loss nfv0 count=2     # live host merely looks slow
at 3.1 partition nfv1 duration=0.3     # window heals; no false eviction
at 3.5 host-crash nfv1                 # abrupt death: containers + reservations gone

# -- phase 4: unrecoverable — every NFV host dies ---------------------
at 3.8 host-down nfv0
at 3.9 host-down nfv1
"""


def _execute(seed: int) -> dict:
    """One full chaos run; returns raw observations."""
    session = PvnSession.build(seed=seed)

    # Two DMs are eaten before the first flood: discovery must retry
    # with backoff to get connected at all.
    injector = session.inject_faults("")
    injector.inject_now(make_event(0.0, FaultKind.DM_DROP, count=2))
    outcome = session.connect(
        default_pvnc(), retry_policy=RetryPolicy(max_attempts=4)
    )
    assert outcome.deployed, outcome.reason
    deployment = session.provider.manager.deployments[outcome.deployment_id]

    supervisor = session.enable_robustness(
        RecoveryPolicy(check_interval=0.25, max_repair_attempts=3)
    )
    session.inject_faults(CHAOS_SCRIPT)

    probe = Packet(src=outcome.connection.device_ip, dst="198.51.100.5",
                   owner=session.device.user, payload=b"probe")

    # Run through the repairable phases, probing the data path.
    session.sim.run(until=2.9)
    mid_probe = session.send(probe)
    repairs_mid = deployment.repairs

    # Run through total host failure to the degradation verdict.
    session.sim.run(until=5.0)
    end_probe = session.send(probe)

    tunnel = supervisor.tunnels.get(outcome.deployment_id)
    ledger = session.device.ledger

    # Accounting: every applied fault must appear in the audit ledger.
    recorded = {
        (r.time, r.test) for r in ledger.fault_records(session.provider.name)
    }
    accounted = sum(
        1 for a in injector.applied
        if (a.time, f"fault:{a.kind.value}") in recorded
    )

    blob = "\n".join([
        injector.trace(),
        *(f"{e.time:.6f} {e.deployment_id} {e.kind} {e.detail}"
          for e in supervisor.events),
        *(f"{r.time:.6f} {r.deployment_id} {r.test} {r.detail}"
          for r in ledger.fault_records()),
    ])
    digest = hashlib.sha256(normalise_ids(blob).encode()).hexdigest()

    counts = injector.counts()
    return {
        "digest": digest,
        "attempts": outcome.connection.negotiation.attempts,
        "faults_injected": len(injector.applied),
        "accounted": accounted,
        "crashes": counts.get("middlebox_crash", 0),
        "host_failures": counts.get("host_down", 0),
        "flaps": min(counts.get("link_down", 0), counts.get("link_up", 0)),
        "repairs": deployment.repairs,
        "repairs_mid": repairs_mid,
        "mid_action": mid_probe.action,
        "end_action": end_probe.action,
        "end_endpoint": end_probe.tunnel_endpoint,
        "state": deployment.state,
        "degraded_to": deployment.degraded_to,
        "tunnel_rtt": (tunnel.effective_path("origin").rtt
                       if tunnel is not None else float("nan")),
        "unresolved": len(supervisor.unresolved()),
        "supervisor_events": len(supervisor.events),
    }


def run(seed: int = 0) -> ExperimentResult:
    first = _execute(seed)
    second = _execute(seed)
    deterministic = first["digest"] == second["digest"]

    r = first
    degraded = r["state"] is DeploymentState.DEGRADED
    rows = [
        ("discovery under DM loss",
         f"connected after {r['attempts']} flood attempts"),
        ("middlebox crashes",
         f"{r['crashes']} injected, {r['repairs_mid']} repairs in place"),
        ("link flaps + loss burst",
         f"{r['flaps']} flaps survived, probe {r['mid_action']}ed mid-chaos"),
        ("total NFV host failure",
         f"{r['host_failures']} hosts down -> "
         f"degraded to {r['degraded_to']!r} "
         f"(probe now {r['end_action']}s via {r['end_endpoint']})"),
        ("audit accounting",
         f"{r['accounted']}/{r['faults_injected']} injected faults in "
         "evidence ledger"),
        ("determinism",
         "two executions, identical normalised trace digests"
         if deterministic else "TRACE DIVERGED between executions"),
    ]
    metrics = {
        "faults_injected": float(r["faults_injected"]),
        "fault_accounting": (r["accounted"] / r["faults_injected"]
                             if r["faults_injected"] else 0.0),
        "middlebox_crashes": float(r["crashes"]),
        "link_flaps": float(r["flaps"]),
        "repairs": float(r["repairs"]),
        "degraded_to_tunnel": float(degraded),
        "unresolved_outages": float(r["unresolved"]),
        "discovery_attempts": float(r["attempts"]),
        "tunnel_rtt_ms": r["tunnel_rtt"] * 1e3,
        "deterministic": float(deterministic),
    }
    return ExperimentResult(
        experiment_id="E14",
        title="chaos: crash repair, link flaps, and graceful degradation "
              "to tunneling",
        columns=["chaos phase", "outcome"],
        rows=rows,
        metrics=metrics,
        notes=[
            f"trace digest {r['digest'][:16]}… (seed {seed}; normalised "
            "for process-global deployment counters)",
            "repair budget 3: after three failed repair attempts the "
            "supervisor tears down the broken chain and redirects the "
            "data path through the VPN fallback — policies survive, "
            "in-network optimisation is lost",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
