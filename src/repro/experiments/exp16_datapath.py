"""E16 — §4 scalability of the per-packet datapath itself.

The paper's §4 asks whether access ISPs can afford a virtual network
per device.  E1 answers for memory and instantiation latency; this
experiment answers for the *per-packet* cost: with one PVN steering
rule per subscriber installed at the ingress switch, a naive datapath
pays a linear scan over all installed rules for every packet — per-
packet cost grows with total PVN count, the opposite of what scaling
to millions of users needs.

The microflow cache (:mod:`repro.sdn.flowcache`) memoizes the winning
rule and its compiled action closure per exact flow, making the steady-
state cost O(1) in the rule count.  This experiment sweeps the
installed-PVN count, replays the same packet schedule through the
linear path (cache disabled) and the cached fast path, and reports
packets/sec for both plus the cache-counter snapshot published through
the :class:`~repro.netsim.trace.Tracer` (hits, misses, invalidations —
a PVN teardown mid-run exercises the invalidation fence).

Timing rows are wall-clock measurements and vary run to run; the
*shape* (cached throughput flat in the rule count, linear throughput
falling) is what the bench suite asserts.
"""

from __future__ import annotations

import time

from repro.experiments.harness import ExperimentResult, main
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator
from repro.netsim.trace import Tracer
from repro.sdn.actions import Drop
from repro.sdn.flowtable import FlowRule
from repro.sdn.match import Match
from repro.sdn.switch import SdnSwitch

#: Distinct concurrent microflows in the replayed schedule.
FLOWS = 64
#: Packets per sweep point (each flow repeats PACKETS / FLOWS times).
PACKETS = 4096


def _build_switch(n_rules: int, tracer: Tracer) -> SdnSwitch:
    sim = Simulator()
    switch = SdnSwitch(sim, "ingress", tracer=tracer)
    for i in range(n_rules):
        switch.table.install(FlowRule(
            match=Match(owner=f"user{i}"),
            actions=(Drop(reason="bench"),),
            pvn_id=f"user{i}/pvn{i}",
        ))
    return switch

def _packet_schedule(n_rules: int) -> list[Packet]:
    packets = []
    for i in range(PACKETS):
        flow = i % FLOWS
        # Spread the flows evenly across the whole rule table so the
        # linear path's average scan depth tracks the installed count.
        owner = f"user{(flow * n_rules) // FLOWS % n_rules}"
        packets.append(Packet(
            src=f"10.0.{flow % 256}.1", dst="198.51.100.5",
            dst_port=443, owner=owner,
        ))
    return packets


def _replay(switch: SdnSwitch, packets: list[Packet]) -> float:
    """Wall-clock packets/sec for one replay of the schedule."""
    process = switch.process
    start = time.perf_counter()
    for packet in packets:
        process(packet)
    elapsed = time.perf_counter() - start
    return len(packets) / elapsed if elapsed > 0 else float("inf")


def run(
    seed: int = 0,
    rule_counts: tuple[int, ...] = (10, 100, 1000),
    repeats: int = 3,
) -> ExperimentResult:
    rows = []
    metrics: dict[str, float] = {}
    for n_rules in rule_counts:
        tracer = Tracer()
        packets = _packet_schedule(n_rules)

        linear_switch = _build_switch(n_rules, tracer)
        linear_switch.flow_cache.enabled = False
        linear_pps = max(_replay(linear_switch, packets)
                         for _ in range(repeats))

        cached_switch = _build_switch(n_rules, tracer)
        cached_pps = max(_replay(cached_switch, packets)
                         for _ in range(repeats))

        # Exercise the invalidation fence: tearing down one PVN's rules
        # flushes the cache, and the replay after it refills per flow.
        cached_switch.table.remove_pvn(f"user0/pvn{0}")
        _replay(cached_switch, packets)
        cached_switch.publish_counters(cached_switch.sim.now)

        snapshot = tracer.latest("flowcache", cached_switch.flow_cache.name)
        hits = float(snapshot.get("hits", 0))
        misses = float(snapshot.get("misses", 0))
        invalidations = float(snapshot.get("invalidations", 0))
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
        speedup = cached_pps / linear_pps if linear_pps else float("inf")

        rows.append((
            n_rules,
            f"{linear_pps:,.0f}",
            f"{cached_pps:,.0f}",
            f"{speedup:.1f}x",
            f"{100 * hit_rate:.1f}%",
            int(invalidations),
        ))
        metrics[f"linear_pps_at_{n_rules}"] = linear_pps
        metrics[f"cached_pps_at_{n_rules}"] = cached_pps
        metrics[f"speedup_at_{n_rules}"] = speedup
        metrics[f"cache_hit_rate_at_{n_rules}"] = hit_rate
        metrics[f"cache_invalidations_at_{n_rules}"] = invalidations

    return ExperimentResult(
        experiment_id="E16",
        title="§4 datapath fast path: microflow cache vs linear rule scan",
        columns=["installed PVN rules", "linear pkts/s", "cached pkts/s",
                 "speedup", "cache hit rate", "invalidations"],
        rows=rows,
        metrics=metrics,
        notes=[
            "linear per-packet cost grows with installed PVN count; the "
            "microflow cache makes steady-state lookup O(1), so cached "
            "throughput stays flat as subscribers scale (§4)",
            "a PVN teardown mid-run flushes the cache (invalidations "
            "counter) and the next packet of each flow refills it — "
            "cached lookups never serve removed rules",
            "timing rows are wall-clock and vary run to run; only the "
            "shape is asserted by the bench suite",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
