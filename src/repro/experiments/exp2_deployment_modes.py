"""E2 — §3.2 "Why not in the cloud or in home networks?".

"There are tunneling overheads in terms of additional interdomain
traffic and its associated latency; e.g., 10s of ms for well connected
networks, but potentially 100s of ms for poorly connected networks."

Compare page-load time for the same page over four deployments —
direct (no protection), in-network PVN, VPN to a cloud deployment, VPN
to a home deployment — on a well-connected and a poorly-connected
access network.  The PVN pays microseconds of chain delay; the
tunnels pay the full hairpin on every round trip.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.stats import summarize
from repro.core.pvnc import compile_pvnc
from repro.core.session import default_pvnc
from repro.core.tunneling import ENCAP_VARIANTS, FullTunnel, direct_path
from repro.experiments.harness import ExperimentResult, main
from repro.netsim.flows import page_load_time, synth_page
from repro.netsim.topology import attach_device, build_access_network, build_wide_area


@dataclasses.dataclass(frozen=True)
class AccessQuality:
    """One access-network quality scenario."""

    label: str
    cloud_rtt: float
    home_rtt: float
    wireless_loss: float


WELL_CONNECTED = AccessQuality("well-connected", cloud_rtt=0.030,
                               home_rtt=0.050, wireless_loss=0.002)
POORLY_CONNECTED = AccessQuality("poorly-connected", cloud_rtt=0.180,
                                 home_rtt=0.250, wireless_loss=0.01)


def _world(quality: AccessQuality):
    topo = build_wide_area(build_access_network(),
                           cloud_rtt=quality.cloud_rtt,
                           home_rtt=quality.home_rtt)
    attach_device(topo, "dev", loss_rate=quality.wireless_loss)
    return topo


def run(seed: int = 0, n_pages: int = 12) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    chain_delay = compile_pvnc(default_pvnc()).per_packet_delay

    rows = []
    metrics: dict[str, float] = {"pvn_chain_delay_us": chain_delay * 1e6}
    for quality in (WELL_CONNECTED, POORLY_CONNECTED):
        topo = _world(quality)
        paths = {
            "direct": (direct_path(topo, "dev", "origin",
                                   loss_rate=quality.wireless_loss), 0.0),
            "pvn (in-network)": (
                direct_path(topo, "dev", "origin",
                            loss_rate=quality.wireless_loss),
                chain_delay,
            ),
            "vpn->cloud": (
                FullTunnel(topo, "dev", "cloud").effective_path(
                    "origin", loss_rate=quality.wireless_loss),
                0.0,
            ),
            "vpn->home": (
                FullTunnel(topo, "dev", "home").effective_path(
                    "origin", loss_rate=quality.wireless_loss),
                0.0,
            ),
            # §3.2's second cost: "the tunneled traffic may be subject
            # to policies (e.g., shaping) that do not apply to
            # untunneled traffic".
            "vpn->cloud (shaped)": (
                FullTunnel(topo, "dev", "cloud",
                           shaped_to_bps=2e6).effective_path(
                    "origin", loss_rate=quality.wireless_loss),
                0.0,
            ),
            # Legacy cipher (no hardware support): per-packet CPU
            # charged per object fetch at a nominal 25 KB object
            # (~18 MTU packets).  The calibrated conclusion — cipher
            # CPU is noise next to the hairpin RTT — is itself the
            # paper's point about *where* tunnel overhead lives.
            "vpn->cloud (bf-cbc)": (
                FullTunnel(topo, "dev", "cloud",
                           encap="bf-cbc-sha1").effective_path(
                    "origin", loss_rate=quality.wireless_loss),
                18 * ENCAP_VARIANTS["bf-cbc-sha1"].cpu_seconds(1500),
            ),
        }
        direct_mean = None
        for mode, (path, overhead) in paths.items():
            samples = []
            for page_index in range(n_pages):
                page = synth_page(np.random.default_rng(seed * 1000 + page_index))
                samples.append(page_load_time(
                    page, path,
                    np.random.default_rng(seed * 2000 + page_index),
                    per_request_overhead=overhead,
                ))
            summary = summarize(samples)
            if mode == "direct":
                direct_mean = summary.mean
            slowdown = summary.mean / direct_mean if direct_mean else 1.0
            rows.append((
                quality.label, mode,
                path.rtt * 1e3,
                summary.mean, summary.median,
                f"x{slowdown:.2f}",
            ))
            mode_key = (mode.replace("->", "_").replace(" ", "_")
                        .replace("(", "").replace(")", ""))
            if mode_key.endswith("_in-network"):
                mode_key = "pvn"
            key = f"{quality.label.split('-')[0]}_{mode_key}"
            metrics[f"plt_{key}"] = summary.mean
    # Calibrated encap menu: wire efficiency and the single-core
    # throughput cap per cipher/compression variant (DESIGN.md §13).
    for name, spec in sorted(ENCAP_VARIANTS.items()):
        key = name.replace("-", "_")
        metrics[f"encap_{key}_goodput"] = spec.goodput_fraction()
        metrics[f"encap_{key}_core_mbps"] = spec.crypto_bps() / 1e6
    metrics["pvn_vs_direct_well"] = (
        metrics["plt_well_pvn"] / metrics["plt_well_direct"]
    )
    metrics["cloud_vs_direct_poor"] = (
        metrics["plt_poorly_vpn_cloud"] / metrics["plt_poorly_direct"]
    )
    return ExperimentResult(
        experiment_id="E2",
        title="§3.2 deployment modes: page-load time by enforcement point",
        columns=["access", "mode", "path RTT (ms)", "mean PLT (s)",
                 "median PLT (s)", "vs direct"],
        rows=rows,
        metrics=metrics,
        notes=[
            "in-network PVN adds only middlebox chain delay (~us); "
            "cloud/home VPNs pay the hairpin on every object fetch",
            "the penalty explodes on poorly connected access — the "
            "paper's '10s of ms ... 100s of ms' argument",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
