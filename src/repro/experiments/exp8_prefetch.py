"""E8 — §4 offloading computation and communication.

"Many apps pre-fetch content to reduce user-perceived delays, but
this can be costly in terms of data quota and battery life if the
pre-fetched content is not used.  Using PVNs, we can explore a middle
ground, where we run code on the middlebox that prefetches content to
move it closer to users, without consuming device resources."

A browsing session walks a linked page graph.  Three prefetch
strategies are compared: none, on-device prefetching (every linked
object crosses the wireless link whether used or not), and the PVN
prefetcher (linked objects move to the in-network cache; only used
objects cross the wireless link).  Report mean fetch latency, device
bytes, and device energy.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult, main
from repro.middleboxes.prefetcher import LruCache, Prefetcher
from repro.workloads.device_cost import EnergyModel

#: Latency components.
RTT_DEVICE_TO_MBOX = 0.020     # device <-> in-network middlebox
RTT_DEVICE_TO_ORIGIN = 0.090   # device <-> origin server


def _page_graph(rng: np.random.Generator, n_pages: int,
                links_per_page: int, object_bytes: int):
    """Pages, each linking to ``links_per_page`` others."""
    pages = {f"http://site.example/p{i}": b"x" * object_bytes
             for i in range(n_pages)}
    links = {
        url: [f"http://site.example/p{int(rng.integers(n_pages))}"
              for _ in range(links_per_page)]
        for url in pages
    }
    return pages, links


def _browse(rng: np.random.Generator, pages, links, n_clicks: int,
            follow_link_prob: float) -> list[str]:
    """The user's click stream: mostly follows links, sometimes jumps."""
    urls = sorted(pages)
    current = urls[0]
    visited = [current]
    for _ in range(n_clicks - 1):
        if rng.random() < follow_link_prob and links[current]:
            current = links[current][int(rng.integers(len(links[current])))]
        else:
            current = urls[int(rng.integers(len(urls)))]
        visited.append(current)
    return visited


def run(
    seed: int = 0,
    n_pages: int = 60,
    links_per_page: int = 4,
    n_clicks: int = 120,
    follow_link_prob: float = 0.7,
    object_bytes: int = 150_000,
) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    pages, links = _page_graph(rng, n_pages, links_per_page, object_bytes)
    clicks = _browse(np.random.default_rng(seed + 1), pages, links,
                     n_clicks, follow_link_prob)
    model = EnergyModel()

    rows = []
    metrics: dict[str, float] = {}
    for strategy in ("none", "on-device", "pvn prefetcher"):
        device_bytes = 0
        latencies = []
        if strategy == "pvn prefetcher":
            prefetcher = Prefetcher(cache=LruCache(capacity_bytes=10**9),
                                    fetch_callback=lambda url: pages[url],
                                    prefetch_depth=links_per_page)
        # Every strategy gets an ordinary browser cache for pages that
        # actually crossed the radio; the strategies differ only in
        # what happens speculatively.
        device_cache: set[str] = set()
        network_cache = (prefetcher.cache if strategy == "pvn prefetcher"
                         else None)
        for url in clicks:
            if url in device_cache:
                latencies.append(0.0)      # already on the device
            elif network_cache is not None and url in network_cache:
                latencies.append(RTT_DEVICE_TO_MBOX)
                device_bytes += len(pages[url])
                device_cache.add(url)
            else:
                latencies.append(RTT_DEVICE_TO_ORIGIN)
                device_bytes += len(pages[url])
                device_cache.add(url)
            # After the page loads, prefetch its links.
            if strategy == "on-device":
                for link in links[url]:
                    if link not in device_cache:
                        device_cache.add(link)
                        device_bytes += len(pages[link])  # over the radio!
            elif strategy == "pvn prefetcher":
                for link in links[url]:
                    if link not in network_cache:
                        network_cache.put(link, pages[link])
                        prefetcher.prefetches_issued += 1
                        prefetcher.prefetch_bytes += len(pages[link])
                network_cache.put(url, pages[url])

        energy = model.radio_energy(device_bytes)
        rows.append((
            strategy,
            float(np.mean(latencies)) * 1e3,
            device_bytes / 1e6,
            energy,
            f"{model.battery_fraction(energy) * 100:.4f}%",
        ))
        key = strategy.split(" ")[0].replace("-", "_")
        metrics[f"latency_ms_{key}"] = float(np.mean(latencies)) * 1e3
        metrics[f"device_mb_{key}"] = device_bytes / 1e6
        metrics[f"energy_j_{key}"] = energy

    return ExperimentResult(
        experiment_id="E8",
        title="§4 offloading: prefetch strategies — latency vs device "
              "bytes vs energy",
        columns=["strategy", "mean fetch latency (ms)",
                 "device bytes (MB)", "device energy (J)", "battery"],
        rows=rows,
        metrics=metrics,
        notes=[
            "on-device prefetch is fastest but moves every speculative "
            "object over the radio (quota + battery)",
            "the PVN prefetcher keeps speculative traffic on the network "
            "side: near-prefetch latency at no extra device cost",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
