"""F1A — Fig. 1(a): the PVNC example, compiled and enforced.

The paper's example configuration classifies traffic and interposes
per class: web text through the privacy module, video/image through a
transcoder and TCP proxy, HTTPS through TLS validation.  This
experiment deploys the canonical PVNC and pushes a labelled packet mix
through the live data path, reporting per-class interposition and the
fraction of packets that traversed exactly the modules Fig. 1(a)
prescribes.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import fraction
from repro.core import PvnSession, default_pvnc
from repro.experiments.harness import ExperimentResult, main
from repro.netproto.http import CONTENT_VIDEO, HttpRequest, HttpResponse
from repro.netsim.packet import Packet
from repro.workloads.apps import handshake_for

#: Class -> the modules Fig. 1(a) expects to interpose.
EXPECTED_PIPELINES = {
    "https": ("tls_validator",),
    "web_text": ("pii_detector",),
    "video_image": ("transcoder", "tcp_proxy"),
    "other": (),
}


def _packet_of_class(traffic_class: str, session: PvnSession,
                     rng: np.random.Generator) -> Packet:
    src = session.device.connection.device_ip
    if traffic_class == "https":
        handshake = handshake_for(session.tls_servers["bank.example.com"])
        return Packet(src=src, dst="198.51.100.5", dst_port=443,
                      owner="alice", payload=handshake)
    if traffic_class == "web_text":
        body = b"q=news" if rng.random() < 0.5 else b"email=a@b.example.com"
        return Packet(src=src, dst="198.51.100.6", dst_port=80,
                      owner="alice",
                      payload=HttpRequest("POST", "news.example.com",
                                          body=body))
    if traffic_class == "video_image":
        body = bytes(rng.integers(0, 256, size=10_000, dtype=np.uint8))
        return Packet(src=src, dst="198.51.100.7", dst_port=8080,
                      owner="alice",
                      payload=HttpResponse(body=body,
                                           content_type=CONTENT_VIDEO))
    return Packet(src=src, dst="198.51.100.8", dst_port=5353,
                  owner="alice", protocol="tcp")


def run(seed: int = 0, packets_per_class: int = 50) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    session = PvnSession.build(seed=seed)
    outcome = session.connect(default_pvnc())
    assert outcome.deployed, outcome.reason

    rows = []
    correct = 0
    total = 0
    for traffic_class, expected in EXPECTED_PIPELINES.items():
        interposed_ok = 0
        actions: dict[str, int] = {}
        for _ in range(packets_per_class):
            packet = _packet_of_class(traffic_class, session, rng)
            result = session.send(packet)
            actions[result.action] = actions.get(result.action, 0) + 1
            seen = tuple(
                reason.split(":")[0] for reason in result.verdict_reasons
            )
            if result.traffic_class == traffic_class and seen == expected:
                interposed_ok += 1
        correct += interposed_ok
        total += packets_per_class
        rows.append((
            traffic_class,
            packets_per_class,
            "->".join(expected) or "(direct)",
            interposed_ok,
            ", ".join(f"{k}={v}" for k, v in sorted(actions.items())),
        ))

    compiled = session.device.connection.deployment.compiled
    return ExperimentResult(
        experiment_id="F1A",
        title="Fig. 1(a): per-class interposition under the example PVNC",
        columns=["class", "packets", "expected pipeline",
                 "correctly interposed", "actions"],
        rows=rows,
        metrics={
            "correct_fraction": fraction(correct, total),
            "chain_delay_us": compiled.per_packet_delay * 1e6,
            "services_deployed": float(
                len(compiled.deployment_services)
            ),
        },
        notes=[
            "expected pipeline per Fig. 1(a); classifier runs first on "
            "every packet",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
