"""E23 — million-device population: hybrid fluid/packet engine.

The paper's economic case (§3.3) needs PVNs serveable at ISP scale.
E18 made the *control plane* O(1) per attach; this experiment scales
the *simulated population itself*.  Event-simulating every packet
costs O(packets) per flow, which caps honest experiments near 10^4
devices.  The hybrid engine (:mod:`repro.netsim.fluid`) advances
steady flows as aggregate max-min rate equations — recomputed only at
arrival/departure/migration epochs — and event-simulates only the
policy-relevant packets, so the same workload runs at 10^6 devices.

Three phases:

* **parity** (10^4 devices): the same seeded churn workload runs in
  fluid and pure-packet mode; the sha256 digest over all
  policy-relevant accounting (PII violations, audit evidence,
  attach/detach/migrate counts, flow completions) must match
  *exactly*, and per-flow completion times must agree within one
  tick.  This is what licenses the fluid abstraction.
* **speedup** (10^5 devices): identical workload in both modes;
  fluid must simulate ≥50x more device-seconds per wall-second.
* **sweep** (up to ≥10^6 devices): fluid-only scaling curve with a
  count-only ledger (record retention would dominate memory).

The sharded form exchanges **cross-shard flows** through the runner's
deterministic per-round queues: flows whose ``dst_device`` lives on
another shard produce plain-data messages at completion, routed by
``dst_device % shard_count`` and delivered at the next round
boundary; the receiver's ingress accounting lands in the merged
digest, so the CI gate ``--shards 2 == --shards 1`` proves the queue
protocol — not just disjoint worlds — is partition-independent.

Fluid rates also feed the closed observability loop:
:meth:`repro.core.deployment.telemetry.TelemetryFeed.watch_fluid`
samples per-cell carried rates into ``optimizer.report_load`` exactly
like datapath packet taps.
"""

from __future__ import annotations

import hashlib
import json
import time

from repro.core.deployment.telemetry import TelemetryFeed
from repro.experiments.harness import ExperimentResult, main
from repro.netsim.fluid import (
    MODE_FLUID,
    MODE_PACKET,
    HybridPopulationEngine,
    PolicyLedger,
)
from repro.netsim.randomness import shard_seed
from repro.netsim.simulator import Simulator
from repro.workloads.population import PopulationSpec, PopulationWorkload

EXPERIMENT_ID = "E23"
TITLE = "§3.3 population scale: hybrid fluid/packet simulation"

#: Engine tick (seconds); rates change only at tick granularity.
TICK = 0.1
#: Shared-backhaul capacity per cell (roomy enough that per-flow caps
#: usually bind; contention appears under migration hot spots).
CELL_CAPACITY_BPS = 200_000_000.0

#: The workload every phase runs (devices/horizon vary per phase).
BASE_SPEC = dict(
    cells=32,
    attach_ramp=4.0,
    flows_per_device_s=0.05,
    detach_rate=0.005,
    migrate_rate=0.004,
    audit_rate=0.002,
    cross_fraction=0.05,
    leak_probability=0.08,
    # 8 Mbps per device (LTE-class access): the per-flow packet rate
    # is what separates the modes' costs, so an unrealistically slow
    # access link would understate the packet pipeline's burden.
    device_rate_bps=8_000_000.0,
)

#: Defaults for the sharded session form (kept modest for CI smoke).
SHARD_DEFAULTS = dict(devices=2000, horizon=12.0, round_seconds=2.0)


def _spec(devices: int, horizon: float, **overrides) -> PopulationSpec:
    merged = dict(BASE_SPEC, devices=devices, horizon=horizon)
    merged.update(overrides)
    return PopulationSpec(**merged)


def build_population(
    spec: PopulationSpec,
    seed: int,
    mode: str = MODE_FLUID,
    keep_records: bool = True,
    shard_index: int = 0,
    shard_count: int = 1,
) -> HybridPopulationEngine:
    """One shard's engine + compiled workload, ready to run."""
    sim = Simulator()
    ledger = PolicyLedger(keep_records=keep_records)
    engine = HybridPopulationEngine(
        sim, spec.devices, spec.cells, CELL_CAPACITY_BPS,
        device_rate_bps=spec.device_rate_bps, tick=TICK, mode=mode,
        ledger=ledger,
    )
    workload = PopulationWorkload(
        spec, seed=seed, tick=TICK,
        shard_index=shard_index, shard_count=shard_count,
    )
    engine.bind(workload)
    return engine


def measure_mode(
    spec: PopulationSpec,
    seed: int,
    mode: str,
    keep_records: bool = True,
) -> dict:
    """Run one mode over the workload; wall time and accounting."""
    engine = build_population(spec, seed, mode=mode,
                              keep_records=keep_records)
    start = time.perf_counter()
    engine.run(spec.horizon)
    wall = time.perf_counter() - start
    device_seconds = spec.devices * spec.horizon
    out = {
        "mode": mode,
        "devices": spec.devices,
        "horizon": spec.horizon,
        "wall_seconds": wall,
        "device_seconds": device_seconds,
        "device_seconds_per_sec": device_seconds / wall if wall else 0.0,
        "counters": engine.counters(),
        "pii_violations": engine.ledger.count("pii_violation"),
        "engine": engine,
    }
    if keep_records:
        out["digest"] = engine.ledger.digest()
    return out


def parity_check(devices: int, horizon: float, seed: int) -> dict:
    """Fluid vs packet over identical churn: digests must match."""
    spec = _spec(devices, horizon)
    fluid = measure_mode(spec, seed, MODE_FLUID)
    packet = measure_mode(spec, seed, MODE_PACKET)
    fluid_times = fluid["engine"].completion_times
    packet_times = packet["engine"].completion_times
    common = set(fluid_times) & set(packet_times)
    max_dt = max(
        (abs(fluid_times[key] - packet_times[key]) for key in common),
        default=0.0,
    )
    return {
        "fluid": fluid,
        "packet": packet,
        "digests_match": fluid["digest"] == packet["digest"],
        "completions_compared": len(common),
        "max_completion_dt": max_dt,
        "speedup": (packet["wall_seconds"] / fluid["wall_seconds"]
                    if fluid["wall_seconds"] else float("inf")),
    }


def speedup_check(devices: int, horizon: float, seed: int) -> dict:
    """Fluid vs packet wall-clock over identical churn (count-only
    ledgers: record retention is not part of either mode's cost, and
    the counts still cross-check)."""
    spec = _spec(devices, horizon)
    fluid = measure_mode(spec, seed, MODE_FLUID, keep_records=False)
    packet = measure_mode(spec, seed, MODE_PACKET, keep_records=False)
    counts_match = (fluid["engine"].ledger.counts
                    == packet["engine"].ledger.counts)
    return {
        "fluid": fluid,
        "packet": packet,
        "counts_match": counts_match,
        "speedup": (packet["wall_seconds"] / fluid["wall_seconds"]
                    if fluid["wall_seconds"] else float("inf")),
    }


def sweep_point(devices: int, horizon: float, seed: int) -> dict:
    """One fluid-only scaling point with a count-only ledger."""
    result = measure_mode(
        _spec(devices, horizon, flows_per_device_s=0.02),
        seed, MODE_FLUID, keep_records=False)
    result.pop("engine")
    return result


class _NoDeployments:
    """Manager stub for a feed that only carries fluid taps."""

    deployments: dict = {}


class _LoadRecorder:
    """Optimizer stand-in capturing what the feed reports."""

    def __init__(self) -> None:
        self.loads: dict[str, float] = {}

    def report_load(self, deployment_id: str, rate: float,
                    now: float) -> None:
        self.loads[deployment_id] = rate


def fluid_telemetry(engine, now: float) -> dict[str, float]:
    """Close the loop: fluid cell rates through ``watch_fluid``.

    Each cell is attributed to a synthetic deployment id and one feed
    tick reports every cell's fluid rate to the optimizer — the same
    ``report_load`` path the packet-counter taps use, demonstrating
    that population-scale load steering needs no per-packet counters.
    """
    recorder = _LoadRecorder()
    feed = TelemetryFeed(_NoDeployments(), optimizer=recorder)
    for cell in range(engine.n_cells):
        feed.watch_fluid(f"pvn-cell-{cell:03d}", engine, cell)
    feed.tick(now)
    return recorder.loads


def run(
    seed: int = 0,
    parity_devices: int = 2_000,
    parity_horizon: float = 10.0,
    speedup_devices: int = 10_000,
    speedup_horizon: float = 6.0,
    sweep_devices: tuple[int, ...] = (10_000, 100_000),
    sweep_horizon: float = 10.0,
) -> ExperimentResult:
    """The CLI-sized E23 (the full-scale sweep is driven by the bench
    recording in ``BENCH_population.json``; CI runs this smoke size)."""
    parity = parity_check(parity_devices, parity_horizon, seed)
    speedup = speedup_check(speedup_devices, speedup_horizon, seed)
    loads = fluid_telemetry(parity["fluid"]["engine"], parity_horizon)

    rows = []
    metrics: dict[str, float] = {
        "telemetry_cells_reported": float(len(loads)),
        "telemetry_total_pps": float(sum(loads.values())),
        "parity_devices": float(parity_devices),
        "parity_digests_match": float(parity["digests_match"]),
        "parity_max_completion_dt": parity["max_completion_dt"],
        "speedup_devices": float(speedup_devices),
        "fluid_vs_packet_speedup": speedup["speedup"],
        "pii_violations": float(parity["fluid"]["pii_violations"]),
    }
    for label, measured in (("parity/fluid", parity["fluid"]),
                            ("parity/packet", parity["packet"]),
                            ("speedup/fluid", speedup["fluid"]),
                            ("speedup/packet", speedup["packet"])):
        rows.append((
            label, measured["devices"],
            f"{measured['wall_seconds']:.2f}s",
            f"{measured['device_seconds_per_sec']:,.0f}",
            measured["counters"]["flows_completed"],
            measured["pii_violations"],
        ))
    for devices in sweep_devices:
        point = sweep_point(devices, sweep_horizon, seed)
        rows.append((
            "sweep/fluid", devices,
            f"{point['wall_seconds']:.2f}s",
            f"{point['device_seconds_per_sec']:,.0f}",
            point["counters"]["flows_completed"],
            point["pii_violations"],
        ))
        metrics[f"device_seconds_per_sec_at_{devices}"] = (
            point["device_seconds_per_sec"])
    if not parity["digests_match"]:
        raise AssertionError(
            "fluid/packet policy digests diverged — the fluid "
            "abstraction lost policy-relevant packets")
    if not speedup["counts_match"]:
        raise AssertionError(
            "fluid/packet policy counts diverged at speedup scale")

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["phase", "devices", "wall", "device-seconds/s",
                 "flows done", "PII violations"],
        rows=rows,
        metrics=metrics,
        notes=[
            f"policy digest (fluid == packet at {parity_devices} "
            f"devices): {parity['fluid']['digest']}",
            "fluid mode advances steady flows as max-min rate "
            "equations recomputed only at churn epochs; only "
            "policy-relevant packets (PII, TLS, audits, punts) are "
            "event-simulated",
            "completion times agree exactly because both modes share "
            "the same packet-quantized per-tick progress arithmetic",
            "full-scale numbers (100k speedup bar, 10^6 sweep) are "
            "recorded in BENCH_population.json",
            f"fluid cell rates fed TelemetryFeed.report_load for "
            f"{len(loads)} cells (total "
            f"{sum(loads.values()):,.0f} pkt/s)",
        ],
    )


# -- the sharded session form (python -m repro run E23 --shards N) -----------


class PopulationSession:
    """One shard of a population with cross-shard flow exchange.

    The runner drives :meth:`run_round` in lockstep across shards and
    routes each round's outbox to the owning shards
    (``dst_device % shard_count``); messages produced in round *r*
    are delivered at the start of round *r + 1*, and :meth:`finish`
    delivers the final round's stragglers before payload extraction.
    """

    def __init__(self, shard_index: int, shard_count: int, seed: int,
                 params: dict | None = None) -> None:
        params = dict(SHARD_DEFAULTS, **(params or {}))
        self.shard_index = shard_index
        self.shard_count = shard_count
        spec = _spec(int(params["devices"]), float(params["horizon"]))
        round_seconds = float(params["round_seconds"])
        self._ticks_per_round = max(1, int(round(round_seconds / TICK)))
        # Isolate this shard's incidental draws; every output-affecting
        # draw is keyed per device inside the workload/engine.
        shard_seed(seed, shard_index)
        self.engine = build_population(
            spec, seed, mode=MODE_FLUID, keep_records=True,
            shard_index=shard_index, shard_count=shard_count)
        self.engine.start(spec.horizon)
        total_ticks = self.engine._ticks_total
        self.rounds = -(-total_ticks // self._ticks_per_round)
        self._total_ticks = total_ticks

    def run_round(self, round_index: int, inbox: list) -> list:
        self.engine.deliver(inbox)
        end_tick = min((round_index + 1) * self._ticks_per_round,
                       self._total_ticks)
        # k * tick is the exact float every engine event clamps to.
        self.engine.sim.run(until=end_tick * TICK)
        outbox = list(self.engine.outbox)
        self.engine.outbox.clear()
        return outbox

    def finish(self, inbox: list) -> dict:
        self.engine.deliver(inbox)
        ledger = self.engine.ledger
        return {
            "shard_index": self.shard_index,
            "records": [list(record) for record in ledger.records],
            "counts": dict(ledger.counts),
        }


def open_session(shard_index: int, shard_count: int, seed: int,
                 params: dict | None = None) -> PopulationSession:
    return PopulationSession(shard_index, shard_count, seed, params)


def merge_sessions(payloads: list[dict], seed: int = 0,
                   params: dict | None = None) -> ExperimentResult:
    """Deterministic merge: byte-identical for any shard count.

    All policy records are re-sorted (partition order discarded) and
    digested; per-kind counts are summed.  Coverage: exactly one
    attach record per scheduled device, across all shards.
    """
    params = dict(SHARD_DEFAULTS, **(params or {}))
    records = sorted(
        tuple(record) for payload in payloads
        for record in payload["records"]
    )
    digest = hashlib.sha256(
        json.dumps([list(r) for r in records], sort_keys=True).encode()
    ).hexdigest()
    counts: dict[str, int] = {}
    for payload in payloads:
        for kind, value in payload["counts"].items():
            counts[kind] = counts.get(kind, 0) + value

    attached_devices = {r[1] for r in records if r[0] == "attach"}
    if len(attached_devices) != counts.get("attach", 0):
        raise ValueError(
            "shards did not cover the attach schedule exactly once")

    rows = [(kind, counts[kind]) for kind in sorted(counts)]
    # No shard-count-dependent fields: CI diffs the full --shards 1
    # vs --shards 2 JSON byte for byte.
    metrics = {f"count_{kind}": float(value)
               for kind, value in counts.items()}
    metrics["devices"] = float(params["devices"])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=f"{TITLE}: sharded population, merged",
        columns=["policy event", "count"],
        rows=rows,
        metrics=metrics,
        notes=[
            f"policy digest {digest}",
            "cross-shard flows were exchanged through the runner's "
            "per-round queues (routed by dst_device % shard_count); "
            "xflow_in records prove delivery, and the digest is "
            "byte-identical for any --shards N",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
