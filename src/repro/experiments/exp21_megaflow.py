"""E21 — megaflow wildcard classification + batched datapath.

E16 showed the microflow cache makes *steady-state* per-packet cost
O(1) in the installed-PVN count.  Its blind spot is flow churn: every
new five-tuple misses the exact-match tier and pays the linear scan,
so open-loop workloads (new source port per connection) degenerate to
the uncached path exactly when the table is largest.  The megaflow
tier (:class:`~repro.sdn.flowcache.MegaflowCache`) fixes that: rule
cross-producting (:meth:`~repro.sdn.flowtable.FlowTable.classify`)
derives the minimal wildcard mask per classification, so all churning
flows of one subscriber collapse onto one cached megaflow and only the
*first* packet per subscriber ever scans the table.

This experiment replays a churning open-loop schedule (every packet a
fresh source port) at a sweep of installed-PVN counts through four
datapath configurations — linear (both tiers off), microflow-only,
microflow+megaflow, and megaflow+batched execution — and reports:

* full classifications (linear scans) per configuration; the headline
  claim is a >= 10x cut for the megaflow tier vs microflow-only at
  1000 installed PVNs,
* wall-clock packets/sec per configuration,
* the batched-execution speedup of :meth:`Pipeline.run_batch` over
  per-packet :meth:`Pipeline.run` at batch size 32,
* a sha256 equivalence digest over every packet-observable output
  (winner match stats, table misses, conservation counters) proving
  all four configurations classify identically.

Timing rows are wall-clock measurements and vary run to run; the
*shape* (classification cut, digest equality, batch speedup) is what
the bench suite asserts.
"""

from __future__ import annotations

import hashlib
import time

from repro.experiments.harness import ExperimentResult, main
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator
from repro.netsim.trace import Tracer
from repro.nfv.middlebox import ProcessingContext, Verdict
from repro.nfv.pipeline import Pipeline, PipelineStep
from repro.sdn.actions import Drop
from repro.sdn.flowtable import FlowRule
from repro.sdn.match import Match
from repro.sdn.switch import SdnSwitch

#: Churning packets per installed rule at each sweep point — every
#: packet is a fresh microflow, so this is also the megaflow tier's
#: best-case classification cut (>= the 10x bar).
CHURN_FACTOR = 16
#: Batch size for the vectored-execution legs (the acceptance bar's).
BATCH = 32


def _build_switch(n_rules: int, tracer: Tracer | None = None) -> SdnSwitch:
    sim = Simulator()
    switch = SdnSwitch(sim, "ingress", tracer=tracer)
    for i in range(n_rules):
        switch.table.install(FlowRule(
            match=Match(owner=f"user{i}"),
            actions=(Drop(reason="bench"),),
            pvn_id=f"user{i}/pvn{i}",
        ))
    return switch


def _churn_schedule(n_rules: int, n_packets: int) -> list[Packet]:
    """Open-loop churn: every packet is a brand-new five-tuple (fresh
    source port), owners cycling over every installed PVN."""
    return [
        Packet(
            src=f"10.0.{i % 256}.1", dst="198.51.100.5",
            src_port=1024 + i, dst_port=443,
            owner=f"user{i % n_rules}",
        )
        for i in range(n_packets)
    ]


def _configure(switch: SdnSwitch, micro: bool, mega: bool) -> None:
    switch.flow_cache.enabled = micro
    switch.megaflow_cache.enabled = mega


def _replay(switch: SdnSwitch, packets: list[Packet],
            batch: int = 0) -> float:
    """Wall-clock packets/sec for one replay (vectored when ``batch``)."""
    start = time.perf_counter()
    if batch:
        process_batch = switch.process_batch
        for i in range(0, len(packets), batch):
            process_batch(packets[i:i + batch])
    else:
        process = switch.process
        for packet in packets:
            process(packet)
    elapsed = time.perf_counter() - start
    return len(packets) / elapsed if elapsed > 0 else float("inf")


def _digest(switch: SdnSwitch) -> str:
    """Every packet-observable output of a replay, hashed.

    Covers the winner decisions (per-rule match stats), the table miss
    counter, and the switch conservation counters — the byte-identical
    bar the megaflow and batch tiers must clear against the linear
    scan.
    """
    # Keyed on pvn_id, not rule_id: rule ids come from a process-global
    # counter, so equivalent switches built in sequence differ on them.
    state = sorted(
        (rule.pvn_id, rule.packets_matched, rule.bytes_matched)
        for rule in switch.table.rules
    )
    blob = repr((state, switch.table.misses,
                 sorted(switch.counters().items())))
    return hashlib.sha256(blob.encode()).hexdigest()


#: Verdicts are frozen, so a trivial middlebox may return one shared
#: instance; this keeps the bench runner from measuring allocation of
#: its own return value instead of the execution engines under test.
_PASS = Verdict.passed()


def _pipeline(n_steps: int = 3) -> Pipeline:
    """A chain-shaped pipeline of cheap PASS hops (batch-overhead probe)."""
    def runner(packet: Packet, context: ProcessingContext) -> Verdict:
        return _PASS

    return Pipeline(
        "bench/chain",
        tuple(PipelineStep(name=f"mbox{i}", runner=runner, delay=45e-6)
              for i in range(n_steps)),
    )


def _batch_speedup(n_packets: int, repeats: int) -> float:
    """pps of Pipeline.run_batch at BATCH vs per-packet Pipeline.run."""
    packets = [
        Packet(src="10.0.0.1", dst="198.51.100.5", src_port=1024 + i,
               dst_port=443, owner="user0")
        for i in range(n_packets)
    ]
    scalar = _pipeline()
    best_scalar = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for packet in packets:
            scalar.run(packet, scalar.context(0.0, packet.owner))
        best_scalar = max(best_scalar,
                          n_packets / (time.perf_counter() - start))
    vector = _pipeline()
    best_vector = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for i in range(0, n_packets, BATCH):
            chunk = packets[i:i + BATCH]
            vector.run_batch(chunk, vector.batch_contexts(chunk, 0.0))
        best_vector = max(best_vector,
                          n_packets / (time.perf_counter() - start))
    return best_vector / best_scalar if best_scalar else float("inf")


def run(
    seed: int = 0,
    rule_counts: tuple[int, ...] = (100, 1000),
    repeats: int = 3,
    batch_packets: int = 4096,
) -> ExperimentResult:
    rows = []
    metrics: dict[str, float] = {}
    configs = (
        ("linear", False, False, 0),
        ("micro", True, False, 0),
        ("micro+mega", True, True, 0),
        ("mega+batch", True, True, BATCH),
    )
    for n_rules in rule_counts:
        n_packets = CHURN_FACTOR * n_rules
        digests: dict[str, str] = {}
        scans: dict[str, int] = {}
        for label, micro, mega, batch in configs:
            switch = _build_switch(n_rules, Tracer())
            _configure(switch, micro, mega)
            # One replay serves both the timing and the digest: fresh
            # packet objects per configuration, since replays mutate
            # drop state and match statistics.
            pps = _replay(switch, _churn_schedule(n_rules, n_packets),
                          batch)
            switch.publish_counters(switch.sim.now)
            digests[label] = _digest(switch)
            scans[label] = switch.full_classifications
            rows.append((
                n_rules, label, f"{pps:,.0f}",
                switch.full_classifications,
                f"{100 * switch.flow_cache.hit_rate:.1f}%",
                f"{100 * switch.megaflow_cache.hit_rate:.1f}%",
                digests[label][:12],
            ))
            metrics[f"{label.replace('+', '_')}_pps_at_{n_rules}"] = pps
            metrics[f"{label.replace('+', '_')}_scans_at_{n_rules}"] = (
                scans[label]
            )
        # Under pure churn the microflow tier cannot help (every packet
        # is a fresh five-tuple), so its scan count is one per packet;
        # the megaflow tier's is one per subscriber.
        cut = scans["micro"] / max(1, scans["micro+mega"])
        metrics[f"classification_cut_at_{n_rules}"] = cut
        metrics[f"digest_match_at_{n_rules}"] = float(
            len(set(digests.values())) == 1
        )
    metrics["batch_speedup_at_32"] = _batch_speedup(batch_packets, repeats)
    return ExperimentResult(
        experiment_id="E21",
        title="§4 fast path completed: megaflow classification + batching",
        columns=["installed PVN rules", "datapath", "pkts/s",
                 "full classifications", "micro hit rate", "mega hit rate",
                 "digest"],
        rows=rows,
        metrics=metrics,
        notes=[
            "open-loop churn (every packet a fresh source port) defeats "
            "the exact-match tier; the megaflow tier collapses each "
            "subscriber's churning flows onto one wildcard entry, so "
            "full classifications drop from one-per-packet to "
            "one-per-subscriber",
            "identical digests across all four configurations: winner "
            "decisions, match statistics, and conservation counters are "
            "byte-identical to the uncached linear scan",
            "batch speedup compares Pipeline.run_batch at batch size "
            f"{BATCH} against per-packet Pipeline.run on a 3-hop chain",
            "timing rows are wall-clock and vary run to run; the bench "
            "suite asserts the shape (cut >= 10x at 1000 PVNs, batch "
            ">= 2x)",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
