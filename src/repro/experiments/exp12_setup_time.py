"""E12 — time-to-connect: what does joining a PVN network cost?

The paper's viability argument needs not only per-packet overhead
(E1) but join-time overhead to be tolerable.  This experiment breaks
down the simulated time from radio association to first PVN-protected
packet, compared against a plain (non-PVN) attach:

* DHCP DORA (2 exchanges over the wireless link),
* discovery message + offer (1 exchange),
* deployment request + container instantiation (the 30 ms),
* the post-ACK DHCP refresh (1 exchange).

Every message exchange is costed at the access network's device<->
gateway RTT.
"""

from __future__ import annotations

from repro.core.pvnc import compile_pvnc
from repro.core.session import default_pvnc
from repro.experiments.harness import ExperimentResult, main
from repro.netsim.topology import attach_device, build_access_network
from repro.nfv.container import ContainerSpec


def run(seed: int = 0) -> ExperimentResult:
    topo = build_access_network()
    attach_device(topo, "dev")
    rtt = topo.rtt("dev", "gw")
    spec = ContainerSpec()
    compiled = compile_pvnc(default_pvnc())

    phases = [
        ("DHCP discover/offer", rtt, True),
        ("DHCP request/ack (+PVN option)", rtt, True),
        ("discovery message -> offer", rtt, False),
        ("deployment request -> install", rtt + spec.instantiation_time,
         False),
        ("DHCP refresh into PVN subnet", rtt, False),
    ]
    rows = []
    plain_total = 0.0
    pvn_total = 0.0
    for label, duration, in_plain in phases:
        pvn_total += duration
        if in_plain:
            plain_total += duration
        rows.append((label, duration * 1e3,
                     "yes" if in_plain else "PVN only"))
    rows.append(("TOTAL plain attach", plain_total * 1e3, ""))
    rows.append(("TOTAL PVN attach", pvn_total * 1e3, ""))

    added = pvn_total - plain_total
    metrics = {
        "rtt_ms": rtt * 1e3,
        "plain_attach_ms": plain_total * 1e3,
        "pvn_attach_ms": pvn_total * 1e3,
        "pvn_added_ms": added * 1e3,
        "pvn_added_vs_instantiation": added / spec.instantiation_time,
        "services": float(len(compiled.deployment_services)),
    }
    return ExperimentResult(
        experiment_id="E12",
        title="time-to-connect: plain attach vs full PVN establishment",
        columns=["phase", "duration (ms)", "in plain attach"],
        rows=rows,
        metrics=metrics,
        notes=[
            "containers instantiate in parallel, so the install phase "
            "costs one RTT plus one 30 ms instantiation regardless of "
            "how many modules the PVNC requests",
            "the PVN adds ~one instantiation + 3 RTTs to a join — "
            "comparable to a single captive-portal redirect",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
