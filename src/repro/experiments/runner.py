"""Sharded multi-process experiment runner.

``python -m repro run E18 --shards N`` partitions an experiment's
device population across ``N`` worker processes.  Each shard runs in
complete isolation — its own topology, hosts, caches, simulator, and
stream factory seeded via
:func:`repro.netsim.randomness.shard_seed` — and returns a plain-data
payload; the experiment's ``merge_shards`` reassembles the payloads
into one :class:`~repro.experiments.harness.ExperimentResult`.

The determinism contract
------------------------

Merged output must be **byte-identical for any shard count**, so:

* every output-affecting random draw is keyed per *entity*
  (``derive_seed(root, "device:i")``), never per shard — the shard seed
  only isolates in-shard stream factories;
* shard payloads carry no wall-clock timings, global counter values,
  or cache statistics (all of which vary with the partition);
* the merge step discards partition order (records are re-keyed by
  entity index) and verifies exact coverage.

CI enforces the contract by diffing the ``--shards 1`` and
``--shards 2`` JSON outputs for the same seed.

Workers use the ``fork`` start method so shard functions need no
pickling of anything beyond the task tuple; where ``fork`` is
unavailable the runner silently degrades to in-process sequential
execution — same results, no parallelism.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import multiprocessing
import os
import sys
from typing import Callable

from repro.experiments import exp18_control_plane
from repro.experiments.harness import ExperimentResult


@dataclasses.dataclass(frozen=True)
class ShardedExperiment:
    """One experiment that knows how to run as a partitioned population."""

    experiment_id: str
    run_shard: Callable[[int, int, int, dict | None], dict]
    merge: Callable[..., ExperimentResult]


SHARDED_EXPERIMENTS: dict[str, ShardedExperiment] = {
    "E18": ShardedExperiment(
        "E18",
        exp18_control_plane.run_shard,
        exp18_control_plane.merge_shards,
    ),
}


def _run_shard_task(task: tuple) -> dict:
    """Top-level (picklable) worker body: run one shard."""
    experiment_id, shard_index, shard_count, seed, params = task
    entry = SHARDED_EXPERIMENTS[experiment_id]
    return entry.run_shard(shard_index, shard_count, seed, params)


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return None


def run_sharded(
    experiment_id: str,
    seed: int = 0,
    shards: int = 1,
    params: dict | None = None,
) -> ExperimentResult:
    """Run ``experiment_id`` over ``shards`` workers and merge.

    Raises :class:`KeyError` for experiments without a sharded form.
    """
    experiment_id = experiment_id.upper()
    entry = SHARDED_EXPERIMENTS.get(experiment_id)
    if entry is None:
        raise KeyError(
            f"experiment {experiment_id!r} has no sharded form; "
            f"shardable: {sorted(SHARDED_EXPERIMENTS)}"
        )
    if shards < 1:
        raise ValueError(f"--shards must be >= 1, got {shards}")
    tasks = [
        (experiment_id, shard_index, shards, seed, params)
        for shard_index in range(shards)
    ]
    context = _fork_context() if shards > 1 else None
    workers = min(shards, os.cpu_count() or 1)
    if context is None or workers < 2:
        # One worker would serialize the shards anyway; skip the fork
        # overhead and run them in-process (identical results).
        payloads = [_run_shard_task(task) for task in tasks]
    else:
        with context.Pool(processes=workers) as pool:
            payloads = pool.map(_run_shard_task, tasks)
    return entry.merge(payloads, seed=seed, params=params)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Run a sharded experiment across worker processes.",
    )
    parser.add_argument(
        "experiment", metavar="ID",
        help=f"shardable experiment id; known: "
             f"{', '.join(sorted(SHARDED_EXPERIMENTS))}",
    )
    parser.add_argument("--shards", type=int, default=1,
                        help="worker process count (default 1)")
    parser.add_argument("--seed", type=int, default=0,
                        help="experiment seed (default 0)")
    parser.add_argument("--devices", type=int, default=None,
                        help="population size override")
    parser.add_argument("--json", action="store_true",
                        help="emit the merged result as JSON")
    parser.add_argument("--out", default="",
                        help="also write the JSON result to this file")
    args = parser.parse_args(argv)

    params: dict = {}
    if args.devices is not None:
        params["devices"] = args.devices
    try:
        result = run_sharded(args.experiment, seed=args.seed,
                             shards=args.shards, params=params)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    document = json.dumps(result.to_dict(), indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(document + "\n")
    if args.json:
        print(document)
    else:
        print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
