"""Sharded multi-process experiment runner.

``python -m repro run E18 --shards N`` partitions an experiment's
device population across ``N`` worker processes.  Each shard runs in
complete isolation — its own topology, hosts, caches, simulator, and
stream factory seeded via
:func:`repro.netsim.randomness.shard_seed` — and returns a plain-data
payload; the experiment's ``merge_shards`` reassembles the payloads
into one :class:`~repro.experiments.harness.ExperimentResult`.

The determinism contract
------------------------

Merged output must be **byte-identical for any shard count**, so:

* every output-affecting random draw is keyed per *entity*
  (``derive_seed(root, "device:i")``), never per shard — the shard seed
  only isolates in-shard stream factories;
* shard payloads carry no wall-clock timings, global counter values,
  or cache statistics (all of which vary with the partition);
* the merge step discards partition order (records are re-keyed by
  entity index) and verifies exact coverage.

CI enforces the contract by diffing the ``--shards 1`` and
``--shards 2`` JSON outputs for the same seed.

Two sharded forms exist:

* **independent shards** (``run_shard``): each shard runs to
  completion in isolation and returns one payload (E18's attach
  storm).  Workers are a ``fork`` pool.
* **round sessions** (``open_session``): shards that exchange
  *cross-shard traffic* (E23's population engine, where a flow may
  target a device owned by another shard).  The runner drives every
  session through lock-step **rounds**: each round advances the
  shard's simulator to the next round boundary and returns an outbox
  of plain-data messages; the runner routes them to the owning shard
  (``dst_device % shard_count``) and delivers them — sorted, so
  arrival order carries no partition information — at the start of
  the next round.  With one shard the messages loop back through the
  same queue, which is why the merged digest is shard-count
  independent *with* cross traffic, not just for disjoint worlds.

Workers use the ``fork`` start method so shard functions need no
pickling of anything beyond the task tuple; on a single-CPU host (or
where ``fork`` is unavailable) the runner runs shards in-process
instead — byte-identical results, none of the fork/IPC overhead that
would make ``--shards 2`` *slower* than ``--shards 1``.  ``--shards
auto`` picks ``os.cpu_count()`` shards.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import multiprocessing
import os
import sys
from typing import Callable

from repro.experiments import exp18_control_plane, exp23_population
from repro.experiments.harness import ExperimentResult


@dataclasses.dataclass(frozen=True)
class ShardedExperiment:
    """One experiment that knows how to run as a partitioned population.

    Exactly one of ``run_shard`` (independent shards) or
    ``open_session`` (lock-step rounds with cross-shard queues) must
    be set.  Sessions expose ``rounds``, ``run_round(index, inbox)
    -> outbox`` and ``finish(inbox) -> payload``.
    """

    experiment_id: str
    run_shard: Callable[[int, int, int, dict | None], dict] | None
    merge: Callable[..., ExperimentResult]
    open_session: Callable[[int, int, int, dict | None], object] | None = None


SHARDED_EXPERIMENTS: dict[str, ShardedExperiment] = {
    "E18": ShardedExperiment(
        "E18",
        exp18_control_plane.run_shard,
        exp18_control_plane.merge_shards,
    ),
    "E23": ShardedExperiment(
        "E23",
        None,
        exp23_population.merge_sessions,
        open_session=exp23_population.open_session,
    ),
}


def _run_shard_task(task: tuple) -> dict:
    """Top-level (picklable) worker body: run one shard."""
    experiment_id, shard_index, shard_count, seed, params = task
    entry = SHARDED_EXPERIMENTS[experiment_id]
    return entry.run_shard(shard_index, shard_count, seed, params)


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return None


def resolve_shards(value: int | str) -> int:
    """``--shards`` argument: an int, or ``auto`` = ``os.cpu_count()``."""
    if isinstance(value, str):
        if value.lower() == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            value = int(value)
        except ValueError:
            raise ValueError(
                f"--shards must be an integer or 'auto', got {value!r}"
            ) from None
    if value < 1:
        raise ValueError(f"--shards must be >= 1, got {value}")
    return value


def _route(outboxes: list[list], shard_count: int) -> list[list]:
    """Route one round's messages to their owning shards.

    Inboxes are sorted so the delivery order a receiver sees carries
    no information about which shard produced each message.
    """
    inboxes: list[list] = [[] for _ in range(shard_count)]
    for outbox in outboxes:
        for dst_device, payload in outbox:
            inboxes[dst_device % shard_count].append(payload)
    for inbox in inboxes:
        inbox.sort()
    return inboxes


def _run_sessions_inprocess(entry: ShardedExperiment, shards: int,
                            seed: int, params: dict | None) -> list[dict]:
    sessions = [
        entry.open_session(shard_index, shards, seed, params)
        for shard_index in range(shards)
    ]
    rounds = sessions[0].rounds
    inboxes: list[list] = [[] for _ in range(shards)]
    for round_index in range(rounds):
        outboxes = [
            session.run_round(round_index, inboxes[shard_index])
            for shard_index, session in enumerate(sessions)
        ]
        inboxes = _route(outboxes, shards)
    return [session.finish(inboxes[shard_index])
            for shard_index, session in enumerate(sessions)]


def _session_worker(conn, experiment_id: str, shard_index: int,
                    shard_count: int, seed: int,
                    params: dict | None) -> None:  # pragma: no cover - forked
    entry = SHARDED_EXPERIMENTS[experiment_id]
    session = entry.open_session(shard_index, shard_count, seed, params)
    conn.send(("ready", session.rounds))
    while True:
        op, payload = conn.recv()
        if op == "round":
            round_index, inbox = payload
            conn.send(("outbox", session.run_round(round_index, inbox)))
        else:
            conn.send(("payload", session.finish(payload)))
            conn.close()
            return


def _run_sessions_forked(context, entry: ShardedExperiment, shards: int,
                         seed: int, params: dict | None) -> list[dict]:
    """One persistent worker per shard, barrier-synchronized rounds."""
    pipes, workers = [], []
    try:
        for shard_index in range(shards):
            parent_conn, child_conn = context.Pipe()
            worker = context.Process(
                target=_session_worker,
                args=(child_conn, entry.experiment_id, shard_index,
                      shards, seed, params),
            )
            worker.start()
            child_conn.close()
            pipes.append(parent_conn)
            workers.append(worker)
        rounds = {conn.recv()[1] for conn in pipes}
        if len(rounds) != 1:
            raise RuntimeError(f"shards disagree on round count: {rounds}")
        inboxes: list[list] = [[] for _ in range(shards)]
        for round_index in range(rounds.pop()):
            for conn, inbox in zip(pipes, inboxes):
                conn.send(("round", (round_index, inbox)))
            outboxes = [conn.recv()[1] for conn in pipes]
            inboxes = _route(outboxes, shards)
        for conn, inbox in zip(pipes, inboxes):
            conn.send(("finish", inbox))
        return [conn.recv()[1] for conn in pipes]
    finally:
        for conn in pipes:
            conn.close()
        for worker in workers:
            worker.join()


def run_sharded(
    experiment_id: str,
    seed: int = 0,
    shards: int | str = 1,
    params: dict | None = None,
) -> ExperimentResult:
    """Run ``experiment_id`` over ``shards`` workers and merge.

    Raises :class:`KeyError` for experiments without a sharded form.
    """
    experiment_id = experiment_id.upper()
    entry = SHARDED_EXPERIMENTS.get(experiment_id)
    if entry is None:
        raise KeyError(
            f"experiment {experiment_id!r} has no sharded form; "
            f"shardable: {sorted(SHARDED_EXPERIMENTS)}"
        )
    shards = resolve_shards(shards)
    context = _fork_context() if shards > 1 else None
    workers = min(shards, os.cpu_count() or 1)
    # On a 1-CPU host forked workers only add IPC + fork overhead on
    # top of serialized execution (the wall-clock regression recorded
    # in BENCH_control_plane.json) — run in-process instead; results
    # are byte-identical either way.
    in_process = context is None or workers < 2

    if entry.open_session is not None:
        if in_process:
            payloads = _run_sessions_inprocess(entry, shards, seed, params)
        else:
            payloads = _run_sessions_forked(context, entry, shards, seed,
                                            params)
        return entry.merge(payloads, seed=seed, params=params)

    tasks = [
        (experiment_id, shard_index, shards, seed, params)
        for shard_index in range(shards)
    ]
    if in_process:
        payloads = [_run_shard_task(task) for task in tasks]
    else:
        with context.Pool(processes=workers) as pool:
            payloads = pool.map(_run_shard_task, tasks)
    return entry.merge(payloads, seed=seed, params=params)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Run a sharded experiment across worker processes.",
    )
    parser.add_argument(
        "experiment", metavar="ID",
        help=f"shardable experiment id; known: "
             f"{', '.join(sorted(SHARDED_EXPERIMENTS))}",
    )
    parser.add_argument("--shards", default="1",
                        help="worker process count, or 'auto' for "
                             "os.cpu_count() (default 1)")
    parser.add_argument("--seed", type=int, default=0,
                        help="experiment seed (default 0)")
    parser.add_argument("--devices", type=int, default=None,
                        help="population size override")
    parser.add_argument("--json", action="store_true",
                        help="emit the merged result as JSON")
    parser.add_argument("--out", default="",
                        help="also write the JSON result to this file")
    args = parser.parse_args(argv)

    params: dict = {}
    if args.devices is not None:
        params["devices"] = args.devices
    try:
        result = run_sharded(args.experiment, seed=args.seed,
                             shards=args.shards, params=params)
    except (KeyError, ValueError) as exc:
        parser.error(str(exc.args[0]))
    document = json.dumps(result.to_dict(), indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(document + "\n")
    if args.json:
        print(document)
    else:
        print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
