"""Experiment harness: a uniform result type and runner.

Every experiment module exposes ``run(seed=0, **params) -> ExperimentResult``
and can be executed directly (``python -m repro.experiments.fig1a``).
The benchmark suite calls the same ``run`` functions, asserting the
*shape* of each result (who wins, by roughly what factor) rather than
absolute numbers.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.analysis.tables import render_table


@dataclasses.dataclass
class ExperimentResult:
    """One experiment's output: a printable table plus headline metrics."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[tuple]
    metrics: dict[str, float] = dataclasses.field(default_factory=dict)
    notes: list[str] = dataclasses.field(default_factory=list)

    def render(self) -> str:
        parts = [render_table(self.columns, self.rows,
                              title=f"[{self.experiment_id}] {self.title}")]
        if self.notes:
            parts.append("")
            parts.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(parts)

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"{self.experiment_id} has no metric {name!r}; "
                f"available: {sorted(self.metrics)}"
            ) from None

    def to_dict(self) -> dict:
        """A JSON-serialisable form (for ``python -m repro --json``)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "metrics": dict(self.metrics),
            "notes": list(self.notes),
        }


def install_fault_plan(plan, sim, provider, ledger=None):
    """Attach a fault plan to an experiment's world.

    ``plan`` is a :class:`~repro.faults.FaultPlan` or DSL text; the
    events are scheduled on ``sim`` against ``provider`` and — when a
    ``ledger`` is given — recorded as audit evidence.  Returns the
    :class:`~repro.faults.FaultInjector` so experiments can read the
    applied-fault trace afterwards.
    """
    from repro.faults import FaultInjector

    injector = FaultInjector(sim, provider, ledger=ledger)
    injector.schedule_plan(plan)
    return injector


def main(run: Callable[..., ExperimentResult], **kwargs: Any) -> None:
    """Standard ``__main__`` body for experiment modules."""
    result = run(**kwargs)
    print(result.render())
    if result.metrics:
        print()
        for name in sorted(result.metrics):
            print(f"  {name} = {result.metrics[name]:.6g}")
