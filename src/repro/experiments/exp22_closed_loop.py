"""E22 — closed-loop observability: telemetry-driven control + alerts.

Two phases over the E19 orchestration world, both fully deterministic
in the seed:

**Phase 1 — telemetry parity.**  The same population and flash crowd
is autoscaled twice: a *reference* world fed experiment-supplied
per-user rates (exactly E19's mechanics) and a *telemetry* world where
nobody tells the optimizer anything — each user's deployment processes
its offered load as real packets through the PR-3/PR-8 datapath and a
:class:`~repro.core.deployment.telemetry.TelemetryFeed` derives rates
from ``packets_total`` deltas.  Because measured == offered exactly
(integer packets per tick, interval 1.0), the autoscaler must take the
*same decision sequence*; the phase asserts sha256 digest equality over
the canonicalized event streams (deployment serial numbers are
world-local, so ids are normalized to their user before hashing) and
world-cost equality.  This closes ROADMAP item 3's "feed live datapath
telemetry into ``report_load``".

**Phase 2 — incident lifecycle.**  A smaller world with one latency
SLO (p-chain round trip <= 60 ms, 99% objective) and one availability
SLO (99.9% delivery).  At ``surge_tick`` a fixed user prefix multiplies
its traffic: shared-instance contention saturates, latency samples
blow the error budget, and the burn-rate alert FIREs (fast 5-tick +
slow 60-tick windows both over threshold).  The FIRING transition
freezes a flight-recorder incident bundle; the
:class:`~repro.health.overload.BurnRateCoupling` applies admission
pressure (attaches shed at a stricter floor) and trips the discovery
circuit breaker.  Meanwhile the telemetry-fed autoscaler — the same
closed loop — rebalances the hot instances, latency recovers, the fast
window drains, and the alert RESOLVEs.  The availability SLO never
fires (nothing was dropped), and an EWMA/z-score anomaly detector on
mean chain latency fires and resolves alongside the burn alert.
"""

from __future__ import annotations

import hashlib
import re

from repro.core.deployment.manager import DeploymentManager
from repro.core.deployment.orchestrator import (
    Autoscaler,
    AutoscalePolicy,
    CostModel,
    PlacementOptimizer,
    SharedMiddleboxPool,
)
from repro.core.deployment.telemetry import TelemetryFeed
from repro.experiments import exp19_orchestration as e19
from repro.experiments.harness import ExperimentResult, main
from repro.health.overload import (
    PRIORITY_ATTACH,
    PRIORITY_CRITICAL,
    AdmissionController,
    BurnRateCoupling,
    CircuitBreaker,
    SheddingPolicy,
)
from repro.netsim.packet import Packet
from repro.obs import runtime as obs_runtime
from repro.obs.alerts import AlertManager, EwmaDetector
from repro.obs.recorder import FlightRecorder, attach
from repro.obs.slo import SloEngine, SloSpec
from repro.obs.spans import SpanTracer, inject

#: Chain round-trip SLO (seconds) — same bar as E19.
SLO_LATENCY = e19.SLO_LATENCY

#: Attach attempts offered to the admission controller per tick in the
#: incident phase (more than the bucket refills, so the floor bites).
ATTACHES_PER_TICK = 24

_ID_RE = re.compile(r"/pvn\d+")


def _int_rate(seed: int, user: int, base_rate: float) -> float:
    """E19's jittered per-user rate, rounded to whole packets per tick
    so a telemetry feed measuring real packets reproduces it exactly."""
    return float(max(1, int(round(e19._rate_for(seed, user, base_rate)))))


def _canonical_digest(events) -> str:
    """sha256 over the event stream with world-local deployment serial
    numbers stripped (``u3/pvn17`` -> ``u3``); everything else —
    tick, service, action, instance id, load units — must match."""
    canon = [
        (event.now, event.service, event.action, event.instance,
         _ID_RE.sub("", event.detail))
        for event in events
    ]
    return hashlib.sha256(repr(canon).encode()).hexdigest()


def _build_opt_world(provider: str, max_members: int,
                     migrations_per_tick: int):
    topo, hosts = e19._build_world()
    optimizer = PlacementOptimizer(
        topo, hosts, model=CostModel(),
        pool=SharedMiddleboxPool(max_members=max_members),
    )
    manager = DeploymentManager(provider=provider, topo=topo, hosts=hosts,
                                compile_cache=None, optimizer=optimizer)
    autoscaler = Autoscaler(
        manager, optimizer,
        AutoscalePolicy(max_migrations_per_tick=migrations_per_tick))
    return topo, hosts, optimizer, manager, autoscaler


def _drive(manager, current: dict[int, str], rates: dict[int, float],
           now: float) -> tuple[int, int]:
    """Offer each user's rate as real packets; returns (good, bad)."""
    forwarded = dropped = 0
    for user in sorted(current):
        datapath = manager.deployment(current[user]).datapath
        packet_count = int(rates[user])
        for index in range(packet_count):
            outcome = datapath.process(
                Packet(src=f"10.0.{user % 256}.{index % 250 + 1}",
                       dst="198.51.100.5", dst_port=443,
                       owner=f"u{user}"),
                now,
            )
            if outcome.action == "forward":
                forwarded += 1
            else:
                dropped += 1
    return forwarded, dropped


def _probe(manager, deployment_id: str, user: int, now: float,
           tracer: SpanTracer | None = None) -> None:
    """One traced probe packet per tick: the probe span (and, with the
    ambient obs runtime on, the datapath's per-hop ``mbox.*`` spans)
    becomes the incident bundle's causal evidence.  Always sent (even
    with no tracer) so packet counts — and therefore the telemetry-fed
    decisions — are identical with observability on or off."""
    datapath = manager.deployment(deployment_id).datapath
    packet = Packet(src=f"10.0.{user % 256}.254", dst="198.51.100.5",
                    dst_port=443, owner=f"u{user}")
    if tracer is not None:
        with tracer.span("e22.probe", lambda: now, user=f"u{user}",
                         tick=now) as span:
            inject(packet.metadata, span)
            datapath.process(packet, now)
    else:
        datapath.process(packet, now)


def _phase_parity(seed: int, users: int, base_rate: float,
                  flash_users: int, flash_factor: float,
                  ticks: int) -> dict[str, float]:
    rates = {user: _int_rate(seed, user, base_rate)
             for user in range(users)}
    surged = dict(rates)
    for user in list(range(users))[:flash_users]:
        surged[user] = float(int(rates[user] * flash_factor))

    # -- reference: experiment-supplied rates (E19 mechanics) -------------
    topo_ref, hosts_ref, opt_ref, mgr_ref, scaler_ref = _build_opt_world(
        "isp-ref", e19.MAX_MEMBERS, migrations_per_tick=16)
    placed_ref, nacks_ref = e19._deploy_population(mgr_ref, users, seed)
    for user, deployment_id in placed_ref.items():
        opt_ref.report_load(deployment_id, surged[user], 0.0)
    for tick in range(1, ticks + 1):
        scaler_ref.tick(float(tick))

    # -- telemetry: nobody reports; the feed measures ---------------------
    topo_tel, hosts_tel, opt_tel, mgr_tel, scaler_tel = _build_opt_world(
        "isp-tel", e19.MAX_MEMBERS, migrations_per_tick=16)
    placed_tel, nacks_tel = e19._deploy_population(mgr_tel, users, seed)
    feed = TelemetryFeed(mgr_tel, opt_tel, interval=1.0)
    for tick in range(1, ticks + 1):
        now = float(tick)
        current = e19._current_ids(mgr_tel, placed_tel)
        _drive(mgr_tel, current, surged, now)
        feed.tick(now)
        scaler_tel.tick(now)

    digest_ref = _canonical_digest(scaler_ref.events)
    digest_tel = _canonical_digest(scaler_tel.events)
    model = CostModel()
    return {
        "parity_digest_match": float(digest_ref == digest_tel),
        "parity_events_ref": float(len(scaler_ref.events)),
        "parity_events_tel": float(len(scaler_tel.events)),
        "parity_migrations": float(scaler_tel.migrations),
        "parity_nacks": float(nacks_ref + nacks_tel),
        "parity_cost_ref": model.world_cost(topo_ref, hosts_ref),
        "parity_cost_tel": model.world_cost(topo_tel, hosts_tel),
        "parity_feed_ticks": float(feed.ticks),
    }


def _phase_incident(seed: int, users: int, base_rate: float,
                    surge_tick: int, surge_factor: float,
                    horizon: int) -> tuple[dict[str, float], list]:
    max_members = max(2, users // 2)
    flash_users = max(1, users // 4)
    topo, hosts, optimizer, manager, autoscaler = _build_opt_world(
        "isp-loop", max_members, migrations_per_tick=4)
    placed, nacks = e19._deploy_population(manager, users, seed)
    feed = TelemetryFeed(manager, optimizer, interval=1.0)

    # The judgment layer: ambient obs handles when enabled (so the CLI
    # exports exactly what the run saw), private ones headless.
    obs = obs_runtime.current()
    if obs is not None:
        engine, alerts, recorder = obs.slo, obs.alerts, obs.recorder
        registry = obs.metrics
        tracer = obs.spans if obs.trace_spans else None
    else:
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        engine = SloEngine(metrics=registry)
        alerts = AlertManager(metrics=registry)
        recorder = FlightRecorder()
        tracer = SpanTracer()   # probe spans as evidence even headless
        attach(alerts, recorder, tracer=tracer)
    engine.register(SloSpec(
        name="chain_latency", objective=0.99, kind="latency",
        threshold=SLO_LATENCY,
        description="one chain round trip under the E19 SLO bar"))
    engine.register(SloSpec(
        name="delivery_availability", objective=0.999,
        description="offered packets that were forwarded"))
    alerts.burn_rate(engine, "chain_latency")
    alerts.burn_rate(engine, "delivery_availability")
    latency_mean = {"value": 0.0}
    alerts.anomaly(
        "latency_anomaly", lambda: latency_mean["value"],
        detector=EwmaDetector(alpha=0.3, warmup=4, std_floor=0.005),
        z_fire=4.0, z_resolve=1.0, consecutive=1)

    # Burn-rate state drives the health plane: stricter admission floors
    # and a tripped discovery breaker while any alert fires.
    admission = AdmissionController(
        SheddingPolicy(capacity=32.0, refill_rate=16.0,
                       floors=(0.0, 0.25, 0.5, 0.9)))
    breaker = CircuitBreaker(failure_threshold=3, cooldown=2.0)
    coupling = BurnRateCoupling(admission=admission, breakers=(breaker,),
                                pressure_shift=1)
    alerts.listeners.append(coupling.on_alert)

    rates = {user: _int_rate(seed, user, base_rate)
             for user in range(users)}
    surge_prefix = list(range(users))[:flash_users]
    probe_user = surge_prefix[0]

    fired_at = resolved_at = 0.0
    anomaly_fired = anomaly_resolved = 0.0
    availability_fired = 0.0
    violations_peak = 0
    shed_by_tick: dict[int, int] = {}
    critical_shed = 0
    for tick in range(1, horizon + 1):
        now = float(tick)
        offered = dict(rates)
        if tick >= surge_tick:
            for user in surge_prefix:
                offered[user] = float(int(rates[user] * surge_factor))
        current = e19._current_ids(manager, placed)
        good, bad = _drive(manager, current, offered, now)
        _probe(manager, current[probe_user], probe_user, now, tracer)
        feed.tick(now)
        autoscaler.tick(now)

        # Score this tick's SLIs from the world the loop produced.
        latencies = [e19._chain_latency(manager, optimizer, current[user])
                     for user in sorted(current)]
        for latency in latencies:
            engine.observe("chain_latency", latency)
        engine.record("delivery_availability", good=good, bad=bad)
        latency_mean["value"] = sum(latencies) / len(latencies)
        violations = sum(1 for latency in latencies
                         if latency > SLO_LATENCY)
        violations_peak = max(violations_peak, violations)
        recorder.note("ticks", now, violations=violations,
                      mean_latency=round(latency_mean["value"], 6),
                      offered=sum(int(rate) for rate in offered.values()),
                      migrations=autoscaler.migrations)
        recorder.capture_metrics(
            registry, now,
            prefixes=("repro_telemetry", "repro_orchestrator",
                      "repro_slo", "repro_autoscale"))

        engine.tick(now)
        for event in alerts.tick(now):
            if event.name == "burn_rate:chain_latency":
                if event.state == "firing":
                    fired_at = event.now
                else:
                    resolved_at = event.now
            elif event.name == "burn_rate:delivery_availability":
                availability_fired = 1.0
            elif event.name == "latency_anomaly":
                if event.state == "firing":
                    anomaly_fired = event.now
                else:
                    anomaly_resolved = event.now

        # Control-plane traffic rides the same burn-rate state: under
        # pressure the attach floor rises and the breaker fails fast.
        shed_before = sum(admission.shed.values())
        for _ in range(ATTACHES_PER_TICK):
            admission.admit(now, PRIORITY_ATTACH)
        for _ in range(2):
            if not admission.admit(now, PRIORITY_CRITICAL):
                critical_shed += 1
        shed_by_tick[tick] = sum(admission.shed.values()) - shed_before
        if breaker.allow(now):
            breaker.record_success(now)

    current = e19._current_ids(manager, placed)
    violations_final = e19._violations(manager, optimizer, current,
                                       SLO_LATENCY)
    incident_ticks = {tick for tick in shed_by_tick
                      if fired_at and resolved_at
                      and fired_at <= tick < resolved_at}
    calm_ticks = set(shed_by_tick) - incident_ticks
    shed_during = (sum(shed_by_tick[t] for t in sorted(incident_ticks))
                   / max(1, len(incident_ticks)))
    shed_calm = (sum(shed_by_tick[t] for t in sorted(calm_ticks))
                 / max(1, len(calm_ticks)))
    bundle = recorder.incidents[0] if recorder.incidents else None
    metrics = {
        "incident_fired_at": fired_at,
        "incident_resolved_at": resolved_at,
        "anomaly_fired_at": anomaly_fired,
        "anomaly_resolved_at": anomaly_resolved,
        "availability_alert_fired": availability_fired,
        "incident_bundles": float(len(recorder.incidents)),
        "bundle_records": float(len(bundle.records) if bundle else 0),
        "bundle_spans": float(len(bundle.spans) if bundle else 0),
        "violations_peak": float(violations_peak),
        "violations_final": float(violations_final),
        "loop_migrations": float(autoscaler.migrations),
        "shed_per_tick_incident": shed_during,
        "shed_per_tick_calm": shed_calm,
        "critical_shed": float(critical_shed),
        "breaker_trips": float(breaker.trips),
        "breaker_fast_failures": float(breaker.fast_failures),
        "coupling_engagements": float(coupling.engagements),
        "incident_nacks": float(nacks),
    }
    return metrics, alerts.history


def run(
    seed: int = 0,
    parity_users: int = 96,
    parity_rate: float = 8.0,
    parity_flash: int = 24,
    parity_flash_factor: float = 6.0,
    parity_ticks: int = 8,
    incident_users: int = 96,
    incident_rate: float = 8.0,
    surge_tick: int = 8,
    surge_factor: float = 6.0,
    incident_horizon: int = 28,
) -> ExperimentResult:
    parity = _phase_parity(seed, parity_users, parity_rate, parity_flash,
                           parity_flash_factor, parity_ticks)
    incident, timeline = _phase_incident(seed, incident_users,
                                         incident_rate, surge_tick,
                                         surge_factor, incident_horizon)

    metrics = {**parity, **incident}
    rows = [
        ("parity", "decision digests match",
         "yes" if parity["parity_digest_match"] else "NO"),
        ("parity", "autoscale events (ref == telemetry)",
         f"{parity['parity_events_ref']:g} == "
         f"{parity['parity_events_tel']:g}"),
        ("parity", "world cost (ref / telemetry)",
         f"{parity['parity_cost_ref']:.1f} / "
         f"{parity['parity_cost_tel']:.1f}"),
        ("incident", "burn alert FIRING -> RESOLVED",
         f"t={incident['incident_fired_at']:g} -> "
         f"t={incident['incident_resolved_at']:g}"),
        ("incident", "anomaly alert FIRING -> RESOLVED",
         f"t={incident['anomaly_fired_at']:g} -> "
         f"t={incident['anomaly_resolved_at']:g}"),
        ("incident", "availability alert fired",
         "no" if not incident["availability_alert_fired"] else "YES"),
        ("incident", "incident bundle records",
         f"{incident['bundle_records']:g}"),
        ("incident", "SLO violations peak -> final",
         f"{incident['violations_peak']:g} -> "
         f"{incident['violations_final']:g}"),
        ("incident", "attach sheds/tick calm -> incident",
         f"{incident['shed_per_tick_calm']:.1f} -> "
         f"{incident['shed_per_tick_incident']:.1f}"),
        ("incident", "breaker trips / fast failures",
         f"{incident['breaker_trips']:g} / "
         f"{incident['breaker_fast_failures']:g}"),
    ]
    notes = [
        "parity: the telemetry world's optimizer is told nothing — a "
        "TelemetryFeed derives rates from datapath packets_total deltas, "
        "and the autoscaler's decision stream must digest-match the "
        "experiment-fed reference (deployment serials normalized to "
        "users)",
        "incident: a traffic surge saturates shared-instance contention; "
        "the chain-latency burn-rate alert fires (fast 5-tick + slow "
        "60-tick windows), freezes a flight-recorder bundle, tightens "
        "admission floors, and trips the discovery breaker; the "
        "telemetry-fed autoscaler rebalances and the alert resolves",
        f"SLO: chain round trip under {SLO_LATENCY * 1000:g} ms at 99%; "
        "delivery availability 99.9% (never fires: nothing is dropped)",
        "alert timeline entries: " + (", ".join(
            f"{event.name}:{event.state}@{event.now:g}"
            for event in timeline) or "none"),
    ]
    return ExperimentResult(
        experiment_id="E22",
        title="Closed-loop observability: telemetry-driven control "
              "and burn-rate alerting",
        columns=["phase", "aspect", "outcome"],
        rows=rows,
        metrics=metrics,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
