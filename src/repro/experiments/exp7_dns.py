"""E7 — §4 DNS validation.

"Even if the ISP does not support DNSSEC, a PVN DNSSEC module can
provide secure DNS resolution on behalf of the user.  Further, when
accessing name entries that are not secured, the PVN can use a
collection of open resolvers to ensure that clients are not
maliciously sent to invalid addresses."

The device resolves a mixed workload (signed and unsigned names)
through a forging ISP resolver, with and without the PVN validator.
Report how many forged mappings the client ends up using, and how
many the validator corrected vs blocked.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import fraction
from repro.experiments.harness import ExperimentResult, main
from repro.middleboxes.dns_validator import DnsValidator
from repro.netproto.dns import (
    DnsQuery,
    ForgingResolver,
    Resolver,
    TrustAnchor,
    Zone,
    ZoneSigner,
)
from repro.netsim.packet import Packet
from repro.nfv.middlebox import ProcessingContext, VerdictKind


def _world():
    signer = ZoneSigner("secure.example", key=b"zk")
    signed_zone = Zone("secure.example", signer=signer)
    unsigned_zone = Zone("legacy.example")
    signed_names, unsigned_names, truth = [], [], {}
    for index in range(10):
        name = f"host{index}.secure.example"
        ip = f"198.51.100.{index + 1}"
        signed_zone.add(name, "A", ip)
        signed_names.append(name)
        truth[name] = ip
    for index in range(10):
        name = f"host{index}.legacy.example"
        ip = f"203.0.113.{index + 1}"
        unsigned_zone.add(name, "A", ip)
        unsigned_names.append(name)
        truth[name] = ip
    anchor = TrustAnchor()
    anchor.add_zone("secure.example", b"zk")
    zones = [signed_zone, unsigned_zone]
    return zones, anchor, signed_names, unsigned_names, truth


def run(
    seed: int = 0,
    n_queries: int = 500,
    forged_fraction: float = 0.3,
) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    zones, anchor, signed_names, unsigned_names, truth = _world()
    all_names = signed_names + unsigned_names
    forged_targets = {
        name: "6.6.6.6" for name in all_names
        if rng.random() < forged_fraction
    }
    evil_resolver = ForgingResolver("isp-dns", zones, forged=forged_targets)
    open_resolvers = [Resolver(f"open{i}", zones) for i in range(3)]

    rows = []
    metrics: dict[str, float] = {"forged_names": float(len(forged_targets))}
    for pvn_on in (False, True):
        validator = DnsValidator(anchor, open_resolvers)
        poisoned = 0
        corrected = 0
        blocked = 0
        lookups_of_forged = 0
        for _ in range(n_queries):
            name = all_names[int(rng.integers(len(all_names)))]
            response = evil_resolver.resolve(DnsQuery(name))
            is_forged = name in forged_targets
            if is_forged:
                lookups_of_forged += 1
            accepted = response.first_value()
            if pvn_on:
                packet = Packet(src="10.10.0.2", dst="10.10.0.1",
                                protocol="udp", src_port=53, dst_port=5353,
                                owner="alice", payload=response)
                verdict = validator.process(
                    packet, ProcessingContext(now=0.0, owner="alice")
                )
                if verdict.kind is VerdictKind.DROP:
                    blocked += 1
                    continue
                if verdict.kind is VerdictKind.REWRITE:
                    corrected += 1
                accepted = packet.payload.first_value()
            if accepted != truth[name]:
                poisoned += 1

        label = "pvn validator" if pvn_on else "no pvn"
        rows.append((
            label, n_queries, lookups_of_forged, poisoned,
            corrected, blocked,
            f"{fraction(poisoned, lookups_of_forged):.0%}"
            if lookups_of_forged else "-",
        ))
        key = "pvn" if pvn_on else "none"
        metrics[f"poisoned_{key}"] = float(poisoned)
        metrics[f"corrected_{key}"] = float(corrected)

    return ExperimentResult(
        experiment_id="E7",
        title="§4 DNS: forged mappings accepted with/without the PVN "
              "validator (DNSSEC + open-resolver cross-check)",
        columns=["config", "queries", "to forged names",
                 "poisoned answers used", "corrected", "blocked",
                 "forgery success"],
        rows=rows,
        metrics=metrics,
        notes=[
            "signed names are verified against the trust anchor; "
            "unsigned names fall back to the 3-resolver majority vote",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
