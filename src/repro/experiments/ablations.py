"""Ablations of the design choices DESIGN.md §4 calls out.

A1  physical-middlebox reuse on/off — containers, memory, setup time.
A2  selective-tunnel fraction sweep — latency penalty vs needy share.
A3  chain placement: stretch-minimising vs first-fit host choice.
A4  negotiation strategy: time-to-connect and price across zones.
A5  audit probe budget: probes per round vs rounds-to-detection for a
    stealthy (intermittent) shaper.
"""

from __future__ import annotations

import numpy as np

from repro.core import DishonestyProfile, PvnSession, default_pvnc
from repro.core.auditor.measurements import differentiation_test
from repro.core.deployment.embedding import embed_pvn
from repro.core.pvnc import compile_pvnc
from repro.experiments.harness import ExperimentResult, main
from repro.netsim.topology import attach_device, build_access_network, build_wide_area
from repro.nfv.hypervisor import NfvHost
from repro.nfv.placement import place_chain


def placement_ablation() -> ExperimentResult:
    """A3: greedy stretch-minimising placement vs naive first-fit."""
    compiled = compile_pvnc(default_pvnc())
    topo = build_wide_area(build_access_network())
    attach_device(topo, "dev")

    hosts = {n: NfvHost(n) for n in topo.nodes_of_kind("nfv")}
    greedy = place_chain(topo, list(compiled.placement_requests),
                         "dev", "gw", hosts, prefer_reuse=False)

    # First-fit: dump every middlebox on the first host with space.
    hosts_ff = {n: NfvHost(n) for n in topo.nodes_of_kind("nfv")}
    first = sorted(hosts_ff)[0]
    from repro.sdn.routing import path_stretch

    ff_waypoints = [first] * len(compiled.placement_requests)
    ff_stretch = path_stretch(topo, "dev", "gw", ff_waypoints)

    rows = [
        ("greedy (stretch-min)", f"x{greedy.stretch:.3f}"),
        ("first-fit", f"x{ff_stretch:.3f}"),
    ]
    return ExperimentResult(
        experiment_id="A3",
        title="Ablation: chain placement strategy vs path stretch",
        columns=["placement", "stretch"],
        rows=rows,
        metrics={
            "greedy_stretch": greedy.stretch,
            "first_fit_stretch": ff_stretch,
        },
    )


def audit_budget_ablation(seed: int = 0,
                          budgets: tuple[int, ...] = (1, 3, 5, 9)
                          ) -> ExperimentResult:
    """A5: probes per audit round vs detecting a stealthy shaper.

    The shaper only throttles a fraction of flows; a single-probe audit
    often misses it, more probes raise the per-round detection odds.
    """
    stealth_fraction = 0.5   # only half the video flows are throttled
    rounds = 40
    rows = []
    metrics: dict[str, float] = {}
    for budget in budgets:
        rng = np.random.default_rng(seed + budget)

        def throughput(kind: str) -> float:
            base = 40e6 * rng.uniform(0.9, 1.0)
            if kind == "video" and rng.random() < stealth_fraction:
                return min(base, 1.5e6)
            return base

        detections = sum(
            1 for _ in range(rounds)
            if differentiation_test(throughput, trials=budget).violated
        )
        rate = detections / rounds
        rows.append((budget, 2 * budget, f"{rate:.0%}"))
        metrics[f"detection_rate_probes_{budget}"] = rate
    return ExperimentResult(
        experiment_id="A5",
        title="Ablation: audit probe budget vs detection of a stealthy "
              "(50%-of-flows) shaper",
        columns=["probe pairs per round", "transfers per round",
                 "rounds detected"],
        rows=rows,
        metrics=metrics,
        notes=["detection uses the median, so >half the shaped kind's "
               "probes must hit the throttle for a round to flag"],
    )


def reuse_ablation() -> ExperimentResult:
    """A1: the Fig. 1(b) reuse knob, summarised (full table in F1B)."""
    compiled = compile_pvnc(default_pvnc())
    results = {}
    for label, prefer in (("reuse", True), ("fresh", False)):
        topo = build_wide_area(build_access_network())
        attach_device(topo, "dev")
        hosts = {n: NfvHost(n) for n in topo.nodes_of_kind("nfv")}
        results[label] = embed_pvn(compiled, topo, hosts, "dev",
                                   prefer_reuse=prefer)
    rows = [
        (label, r.plan.fresh_containers, r.plan.fresh_containers * 6,
         f"x{r.stretch:.3f}")
        for label, r in results.items()
    ]
    return ExperimentResult(
        experiment_id="A1",
        title="Ablation: physical-middlebox reuse",
        columns=["mode", "fresh containers", "memory (MB)", "stretch"],
        rows=rows,
        metrics={
            "containers_reuse": float(results["reuse"].plan.fresh_containers),
            "containers_fresh": float(results["fresh"].plan.fresh_containers),
        },
    )


def wait_for_better_ablation() -> ExperimentResult:
    """A4b: accept-first vs waiting for a later, cheaper provider.

    A pricey provider is visible immediately; a cheap one appears 10 s
    into the dwell.  Waiting longer buys a better deal at the cost of
    unprotected dwell time.
    """
    from repro.core.discovery import (
        DeploymentAck,
        DiscoveryClient,
        DiscoveryService,
        PricingPolicy,
        negotiate_over_time,
    )
    from repro.core.session import default_pvnc

    pvnc = default_pvnc()
    estimate = compile_pvnc(pvnc).estimate

    def service(name, multiplier):
        return DiscoveryService(
            provider=name,
            supported_services=tuple(sorted(
                set(pvnc.used_services()) | {"classifier"}
            )),
            pricing=PricingPolicy(load_multiplier=multiplier),
            deploy=lambda request: DeploymentAck("x", "10.200.0.0/24"),
        )

    rows = []
    metrics: dict[str, float] = {}
    for deadline in (1.0, 5.0, 15.0, 30.0):
        pricey = service("pricey", 3.0)
        cheap = service("cheap", 1.0)
        outcome = negotiate_over_time(
            DiscoveryClient("alice:mac"),
            schedule=[(0.0, [pricey]), (10.0, [pricey, cheap])],
            pvnc=pvnc, estimate=estimate, deadline=deadline,
        )
        price = outcome.plan.price if outcome.accepted else float("nan")
        rows.append((f"{deadline:g}s", outcome.provider or "-", price,
                     outcome.rounds))
        metrics[f"price_deadline_{deadline:g}"] = price
    return ExperimentResult(
        experiment_id="A4b",
        title="Ablation: wait-for-better deadline vs price paid",
        columns=["dwell deadline", "provider", "price", "rounds"],
        rows=rows,
        metrics=metrics,
        notes=["the cheap provider appears 10s into the dwell: waiting "
               "past it cuts the price, at the cost of unprotected time"],
    )


def run(seed: int = 0) -> ExperimentResult:
    """Aggregate ablation report (A1, A3, A4b, A5; A2 lives in F1C,
    A4 in E10)."""
    parts = [reuse_ablation(), placement_ablation(),
             wait_for_better_ablation(), audit_budget_ablation(seed)]
    rows = []
    metrics: dict[str, float] = {}
    for part in parts:
        rows.append((part.experiment_id, part.title, ""))
        for row in part.rows:
            rows.append(("", *[str(v) for v in row][:1],
                         "  ".join(str(v) for v in row[1:])))
        metrics.update(metrics | part.metrics)
    return ExperimentResult(
        experiment_id="ABL",
        title="Design-choice ablations (A2 = F1C sweep, A4 = E10)",
        columns=["id", "what", "values"],
        rows=rows,
        metrics=metrics,
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
