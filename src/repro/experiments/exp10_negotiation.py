"""E10 — §3.1/§3.3 discovery and negotiation.

"We need a way to negotiate a compromise between what the network
provider allows and what the user requests."

A device with the canonical PVNC (required: tls_validator +
pii_detector; preferred: transcoder + tcp_proxy; budget 10) negotiates
in four provider zones — full-support, expensive, partial-support, and
a zone with no PVN support at all — under each strategy.  Report
acceptance, price, rounds, and the services obtained.
"""

from __future__ import annotations

from repro.core.discovery import (
    ALL_STRATEGIES,
    DeploymentAck,
    DiscoveryClient,
    DiscoveryService,
    PricingPolicy,
    negotiate,
)
from repro.core.pvnc import compile_pvnc
from repro.core.session import default_pvnc
from repro.experiments.harness import ExperimentResult, main

FULL = ("classifier", "tls_validator", "dns_validator", "pii_detector",
        "transcoder", "tcp_proxy", "prefetcher", "tracker_blocker")
PARTIAL = ("classifier", "tls_validator", "pii_detector")


def _service(name, services, multiplier=1.0, free=("classifier",)):
    return DiscoveryService(
        provider=name,
        supported_services=services,
        pricing=PricingPolicy(load_multiplier=multiplier, free_tier=free),
        deploy=lambda request: DeploymentAck(
            deployment_id=f"{request.pvnc.user}/x",
            pvn_subnet="10.200.9.0/24"),
    )


def _zones():
    return {
        "full zone": [_service("isp-full", FULL)],
        "expensive zone": [_service("isp-pricey", FULL, multiplier=4.0)],
        "partial zone": [_service("isp-partial", PARTIAL)],
        "mixed zone": [
            _service("isp-partial", PARTIAL),
            _service("isp-full", FULL, multiplier=1.5),
        ],
        "no-pvn zone": [_service("isp-none", ())],
    }


def run(seed: int = 0) -> ExperimentResult:
    pvnc = default_pvnc()
    estimate = compile_pvnc(pvnc).estimate
    rows = []
    metrics: dict[str, float] = {}
    for zone_name, providers in _zones().items():
        for strategy in ALL_STRATEGIES:
            client = DiscoveryClient("alice:mac")
            outcome = negotiate(client, providers, pvnc, estimate,
                                now=0.0, strategy=strategy)
            if outcome.accepted:
                services = len(outcome.plan.services)
                dropped = len(outcome.plan.dropped)
                rows.append((
                    zone_name, strategy, outcome.provider,
                    services, dropped, outcome.plan.price,
                    outcome.rounds,
                ))
            else:
                rows.append((
                    zone_name, strategy, "-", 0, 0, 0.0, outcome.rounds,
                ))
            key = f"{zone_name.split(' ')[0].replace('-', '_')}_{strategy}"
            metrics[f"accepted_{key}"] = float(outcome.accepted)
            if outcome.accepted:
                metrics[f"price_{key}"] = outcome.plan.price
                metrics[f"rounds_{key}"] = float(outcome.rounds)
                metrics[f"dropped_{key}"] = float(len(outcome.plan.dropped))

    # "Shopping around wins": in the mixed zone, best-of-zone achieves
    # strictly better coverage than taking the first (partial) offer.
    metrics["mixed_best_beats_first"] = float(
        metrics.get("dropped_mixed_best_of_zone", 9e9)
        < metrics.get("dropped_mixed_accept_first", 0.0)
        or metrics.get("accepted_mixed_accept_first") == 0.0
    )
    return ExperimentResult(
        experiment_id="E10",
        title="§3.1/§3.3 negotiation: acceptance/price/rounds by provider "
              "zone and device strategy",
        columns=["zone", "strategy", "provider", "services bought",
                 "dropped", "price", "rounds"],
        rows=rows,
        metrics=metrics,
        notes=[
            "the partial zone forces compromise: preferred services are "
            "dropped, required ones kept (or the device walks away)",
            "the no-PVN zone yields no offers — the device falls back to "
            "tunneling (F1C / repro.core.tunneling)",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
