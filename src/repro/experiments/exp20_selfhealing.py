"""E20 — self-healing: chaos soak, reconciliation, overload protection.

The §3.3 availability claim, pushed past E14's single-session chaos:
a provider world of several NFV hosts and a few hundred subscribers is
soaked in *host-level* failures — abrupt crashes and control-plane
partitions — while the declarative reconciler
(:mod:`repro.core.deployment.reconciler`) converges the world back to
every user's declared policy:

* the phi-accrual health plane classifies each signal correctly: a
  crash is evacuated, a healing partition and a transient heartbeat
  loss are **not** (zero false evacuations);
* every evacuation is a journaled make-before-break migration whose
  lost middlebox state is restored from the replicator's last
  snapshot;
* after the soak, an auditor probes *every* user's chain: the run
  passes only if 100 % of deployments forward through their full
  declared chain — zero policy-bypass packets — and the repair-time
  distribution (crash to restored chain) is reported with a bounded
  p99;
* a flash crowd of attach requests arriving *during* recovery is run
  through the overload-protection primitives
  (:mod:`repro.health.overload`): token-bucket admission with
  priority-class shedding keeps goodput well above the unprotected
  baseline, which collapses classically (the server burns its capacity
  serving requests whose callers already gave up).

Everything is deterministic in the seed: fault targets derive from
:func:`~repro.netsim.randomness.derive_seed`, the flash-crowd arrival
pattern is fixed, and no wall-clock numbers appear.
"""

from __future__ import annotations

from repro.core.deployment.manager import DeploymentManager, DeploymentState
from repro.core.deployment.orchestrator import (
    CostModel,
    PlacementOptimizer,
    SharedMiddleboxPool,
)
from repro.core.deployment.reconciler import (
    DesiredState,
    ReconcilePolicy,
    Reconciler,
)
from repro.core.discovery.messages import DeploymentAck, DeploymentRequest
from repro.core.pvnc.compiler import UserEnvironment
from repro.core.pvnc.model import ClassRule, ModuleSpec, Pvnc
from repro.experiments.harness import ExperimentResult, main
from repro.health import (
    PRIORITY_ATTACH,
    PRIORITY_CRITICAL,
    PRIORITY_RENEW,
    AdmissionController,
    HealthService,
    SheddingPolicy,
)
from repro.netsim.packet import Packet
from repro.netsim.randomness import derive_seed
from repro.netsim.simulator import Simulator
from repro.netsim.topology import AccessNetworkSpec, build_access_network
from repro.nfv.hypervisor import HostCapacity, NfvHost
from repro.obs.quantiles import percentile

#: Access points users attach through.
N_APS = 4
#: NFV hosts the provider operates (enough that losing two still
#: leaves comfortable evacuation headroom).
N_HOSTS = 8
#: Subscriber population under chaos.
N_USERS = 200
#: Per-host memory: ~83 default containers per host; the population
#: needs ~50, so two dead hosts still fit.
HOST_MEMORY = 1_000_000_000
#: The soak runs this long on the simulation clock.
SOAK_HORIZON = 10.0
#: The dedicated (stateful, per-user) chain element.
DEDICATED_SERVICE = "tracker_blocker"
#: The shareable (provider-operated) chain element.
SHARED_SERVICE = "malware_detector"

#: The chain services an auditor probe must traverse; forwarding
#: without all of them is a policy bypass.
CHAIN_SERVICES = (SHARED_SERVICE, DEDICATED_SERVICE)


def _pvnc_for(user: str) -> Pvnc:
    """Mixed chain: one shareable element (the user consents to a
    provider-operated instance) and one dedicated stateful element."""
    return Pvnc(
        user=user,
        name="e20",
        modules=(
            ModuleSpec.make(SHARED_SERVICE, allow_physical_reuse=True),
            ModuleSpec.make(DEDICATED_SERVICE),
        ),
        class_rules=(
            ClassRule("default", CHAIN_SERVICES),
        ),
    )


def _ap_for(seed: int, user: int) -> str:
    return f"ap{derive_seed(seed, f'device:{user}') % N_APS}"


# -- phase A: the chaos soak ------------------------------------------------


def _build_world(seed: int):
    sim = Simulator()
    topo = build_access_network(
        AccessNetworkSpec(n_aps=N_APS, n_nfv_hosts=N_HOSTS)
    )
    hosts = {
        n: NfvHost(n, HostCapacity(memory_bytes=HOST_MEMORY, cpu_cores=64.0))
        for n in topo.nodes_of_kind("nfv")
    }
    optimizer = PlacementOptimizer(
        topo, hosts, model=CostModel(),
        pool=SharedMiddleboxPool(max_members=64),
    )
    manager = DeploymentManager(
        provider="isp-heal", topo=topo, hosts=hosts, sim=sim,
        compile_cache=None, optimizer=optimizer,
    )
    return sim, topo, hosts, manager


def _deploy_population(manager, seed: int):
    env = UserEnvironment()
    placed: dict[int, str] = {}
    nacks = 0
    for user in range(N_USERS):
        pvnc = _pvnc_for(f"u{user}")
        request = DeploymentRequest(
            device_id=f"u{user}:mac", offer_id=1, pvnc=pvnc,
            accepted_services=pvnc.used_services(), payment=10.0,
        )
        ack = manager.deploy(request, env, _ap_for(seed, user), now=0.0)
        if isinstance(ack, DeploymentAck):
            placed[user] = ack.deployment_id
        else:
            nacks += 1
    return placed, nacks


def _pick_fault_targets(seed: int, host_names: list[str]):
    """Deterministic, pairwise-distinct fault targets."""
    pool = list(host_names)
    picks = []
    for label in ("crash:a", "crash:b", "partition", "beatloss"):
        victim = pool[derive_seed(seed, label) % len(pool)]
        pool.remove(victim)
        picks.append(victim)
    return picks


def _probe_packet(user: int, dst: str) -> Packet:
    return Packet(
        src=f"10.9.{user // 250}.{user % 250 + 1}", dst=dst,
        owner=f"u{user}", payload=b"probe",
    )


def _audit_probes(manager, now: float) -> dict[str, int]:
    """Probe every user's surviving chain once.

    A probe counts as *restored* only when it forwards AND its verdict
    reasons show every declared chain service ran; a forward missing a
    service is a policy bypass (there are none by construction — the
    datapath drops on crashed containers rather than skipping them —
    and this audit is what enforces that claim end to end).
    """
    by_user = {
        d.user: d for d in manager.deployments.values()
        if d.state is DeploymentState.ACTIVE
    }
    counts = {"restored": 0, "bypass": 0, "dropped": 0, "tunneled": 0,
              "missing": 0}
    for user in range(N_USERS):
        deployment = by_user.get(f"u{user}")
        if deployment is None:
            counts["missing"] += 1
            continue
        outcome = deployment.datapath.process(
            _probe_packet(user, "198.51.100.7"), now
        )
        if outcome.action == "forward":
            ran = {label.split(":", 1)[0]
                   for label in outcome.verdict_reasons}
            if all(service in ran for service in CHAIN_SERVICES):
                counts["restored"] += 1
            else:
                counts["bypass"] += 1
        elif outcome.action == "tunnel":
            counts["tunneled"] += 1
        else:
            counts["dropped"] += 1
    return counts


def _run_soak(seed: int) -> dict:
    sim, topo, hosts, manager = _build_world(seed)
    placed, nacks = _deploy_population(manager, seed)

    health = HealthService(sim, topo, hosts)
    desired = DesiredState.capture(manager)
    reconciler = Reconciler(
        manager, sim, health, desired=desired,
        policy=ReconcilePolicy(max_evacuations_per_tick=24),
    )
    reconciler.start()

    host_names = sorted(hosts)
    crash_a, crash_b, part_host, beat_host = _pick_fault_targets(
        seed, host_names
    )
    crash_times = {crash_a: 2.0, crash_b: 5.5}
    sim.schedule_at(2.0, lambda: hosts[crash_a].crash(sim.now))
    sim.schedule_at(3.0, lambda: health.partition(part_host, 1.2, sim.now))
    sim.schedule_at(5.5, lambda: hosts[crash_b].crash(sim.now))
    sim.schedule_at(7.0, lambda: health.drop_heartbeats(beat_host, 2))
    sim.run(until=SOAK_HORIZON)

    probes = _audit_probes(manager, sim.now)

    # Repair time = crash instant -> evacuation committed (detection
    # latency included), per evacuated deployment.
    repair_times = [
        record.resolved_at - crash_times[record.host]
        for record in reconciler.repairs
        if record.action == "evacuated" and record.host in crash_times
    ]
    dead_hosts = {e.subject for e in reconciler.events_of("host_dead")}
    false_evacuations = sum(
        1 for h in dead_hosts if h not in crash_times
    )
    return {
        "nacks": nacks,
        "users": len(placed),
        "probes": probes,
        "repair_times": repair_times,
        "evacuated": len(reconciler.events_of("evacuated")),
        "degraded": len(reconciler.events_of("degraded")),
        "deferred": len(reconciler.events_of("deferred")),
        "false_evacuations": false_evacuations,
        "replica_restores": sum(
            1 for e in reconciler.events_of("evacuated")
            if "from replica" in e.detail
        ),
        "converged": reconciler.converged(),
        "ticks": reconciler.ticks,
        "crash_hosts": (crash_a, crash_b),
        "partition_host": part_host,
        "beat_host": beat_host,
    }


# -- phase B: flash crowd during recovery -----------------------------------

#: Queue-model resolution (seconds per tick).
DT = 0.05
#: Control-plane service capacity (attaches per second).
CAPACITY = 200.0
#: Callers abandon after waiting this long; serving them afterwards is
#: wasted work.
PATIENCE = 0.5
#: The storm: this many arrivals per second for ``STORM_LEN`` seconds,
#: then the trickle rate.
STORM_RATE = 1600.0
STORM_LEN = 2.0
TRICKLE_RATE = 100.0
HORIZON_B = 6.0


def _arrivals_at(tick: int) -> list[int]:
    """Deterministic per-tick arrival batch as priority classes.

    1 in 16 requests is CRITICAL (reconciler/renewal control traffic),
    3 in 16 are RENEW, the rest ATTACH — the flash crowd is almost
    entirely new attach attempts.
    """
    now = tick * DT
    rate = STORM_RATE if now < STORM_LEN else TRICKLE_RATE
    count = int(rate * DT)
    priorities = []
    for i in range(count):
        slot = (tick * 7 + i) % 16
        if slot == 0:
            priorities.append(PRIORITY_CRITICAL)
        elif slot < 4:
            priorities.append(PRIORITY_RENEW)
        else:
            priorities.append(PRIORITY_ATTACH)
    return priorities


def _run_crowd(protected: bool) -> dict:
    """One flash-crowd run through a FIFO control-plane queue.

    The server serves ``CAPACITY`` requests per second head-of-line.
    Service is *spent* whether or not the caller is still there —
    the textbook congestion collapse: unprotected, the queue grows
    past the patience horizon and the server ends up serving only
    ghosts.  Protected, the admission controller sheds above-floor
    work at the door, the queue stays inside the token bucket's
    burst, and nearly every admitted request completes in time.
    """
    admission = AdmissionController(SheddingPolicy(
        capacity=32.0, refill_rate=CAPACITY,
    )) if protected else None
    queue: list[tuple[float, int]] = []      # (arrival time, priority)
    served_good = 0
    served_wasted = 0
    shed = 0
    offered = 0
    critical_offered = 0
    critical_served = 0
    budget = 0.0
    for tick in range(int(HORIZON_B / DT)):
        now = tick * DT
        for priority in _arrivals_at(tick):
            offered += 1
            if priority == PRIORITY_CRITICAL:
                critical_offered += 1
            if admission is not None and not admission.admit(now, priority):
                shed += 1
                continue
            queue.append((now, priority))
        budget += CAPACITY * DT
        while budget >= 1.0 and queue:
            budget -= 1.0
            arrived, priority = queue.pop(0)
            if now - arrived <= PATIENCE:
                served_good += 1
                if priority == PRIORITY_CRITICAL:
                    critical_served += 1
            else:
                served_wasted += 1
        budget = min(budget, CAPACITY * DT)
    return {
        "offered": offered,
        "goodput": served_good,
        "wasted": served_wasted,
        "shed": shed,
        "critical_offered": critical_offered,
        "critical_served": critical_served,
    }


# -- the experiment ---------------------------------------------------------


def run(seed: int = 0) -> ExperimentResult:
    soak = _run_soak(seed)
    protected = _run_crowd(protected=True)
    unprotected = _run_crowd(protected=False)

    probes = soak["probes"]
    restored_fraction = probes["restored"] / float(N_USERS)
    p99_repair = (percentile(soak["repair_times"], 0.99)
                  if soak["repair_times"] else 0.0)
    goodput_ratio = (protected["goodput"] / unprotected["goodput"]
                     if unprotected["goodput"] else float("inf"))
    critical_rate = (protected["critical_served"]
                     / protected["critical_offered"]
                     if protected["critical_offered"] else 1.0)

    rows = [
        ("population",
         f"{soak['users']} users deployed, {soak['nacks']} NACKs"),
        ("host crashes",
         f"{' + '.join(soak['crash_hosts'])} crashed -> "
         f"{soak['evacuated']} evacuations "
         f"({soak['replica_restores']} with replica-restored state), "
         f"{soak['degraded']} degraded"),
        ("partition vs crash",
         f"{soak['partition_host']} partitioned 1.2s: "
         f"{soak['deferred']} deferral(s), "
         f"{soak['false_evacuations']} false evacuation(s)"),
        ("heartbeat loss",
         f"{soak['beat_host']} dropped 2 beats: SUSPECT at worst, "
         "never DEAD"),
        ("auditor probes",
         f"{probes['restored']}/{N_USERS} forward through the full "
         f"chain; {probes['bypass']} policy bypasses"),
        ("repair time",
         f"p99 {p99_repair:.2f}s over {len(soak['repair_times'])} "
         "evacuations (crash -> chain restored)"),
        ("flash crowd",
         f"goodput {protected['goodput']} protected vs "
         f"{unprotected['goodput']} unprotected "
         f"({goodput_ratio:.1f}x); {protected['shed']} shed at the "
         f"door, critical traffic {100 * critical_rate:.0f}% served"),
    ]
    metrics = {
        "users": float(soak["users"]),
        "deploy_nacks": float(soak["nacks"]),
        "restored_fraction": restored_fraction,
        "policy_bypass_packets": float(probes["bypass"]),
        "missing_deployments": float(probes["missing"]),
        "evacuations": float(soak["evacuated"]),
        "replica_restores": float(soak["replica_restores"]),
        "degraded": float(soak["degraded"]),
        "partition_deferrals": float(soak["deferred"]),
        "false_evacuations": float(soak["false_evacuations"]),
        "converged": float(soak["converged"]),
        "repair_p99_s": p99_repair,
        "goodput_protected": float(protected["goodput"]),
        "goodput_unprotected": float(unprotected["goodput"]),
        "goodput_ratio": goodput_ratio,
        "critical_served_rate": critical_rate,
        "crowd_shed": float(protected["shed"]),
        "crowd_wasted_unprotected": float(unprotected["wasted"]),
    }
    return ExperimentResult(
        experiment_id="E20",
        title="self-healing: chaos soak, declarative reconciliation, "
              "and overload protection",
        columns=["aspect", "outcome"],
        rows=rows,
        metrics=metrics,
        notes=[
            f"soak: {N_USERS} users on {N_HOSTS} hosts; two seeded host "
            "crashes, one healing partition, one transient heartbeat "
            f"loss, {SOAK_HORIZON:g}s horizon (seed {seed})",
            "the reconciler defers DEAD-but-partitioned hosts (the "
            "partition/crash distinction) and evacuates confirmed "
            "crashes through journaled migrations with replica-"
            "restored middlebox state",
            "flash crowd: token-bucket admission with priority floors; "
            "the unprotected baseline collapses because service is "
            "spent on callers that already abandoned",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
