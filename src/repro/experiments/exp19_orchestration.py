"""E19 — orchestration as optimization: offered load vs SLO and cost.

The §3.3 economics question: what does it cost a provider to honor
every subscriber's PVNC as the subscriber population (and its traffic)
grows?  Two provisioning modes are swept over the same offered-load
points:

* **first-fit** — the seed behaviour: every user gets dedicated
  containers, placed greedily by path stretch
  (``DeploymentManager(optimizer=None)``).  Cheap to compute, expensive
  to run: the container bill grows linearly with users, and once hosts
  fill, further deploys NACK (counted as SLO violations — the user got
  no service at all);
* **optimized** — the :mod:`repro.core.deployment.orchestrator` stack:
  multi-objective placement packs users onto *shared* middlebox
  instances, and the load-driven autoscaler splits hot instances
  (make-before-break via the PR-2 migration coordinator) when a flash
  crowd pushes per-instance utilization over the high watermark.

A user's SLO is one round trip through their chain under
``slo_latency`` seconds: the embedding's expected RTT plus two passes
of each shared instance's contention delay (the M/M/1-shaped penalty
from :class:`~repro.core.deployment.orchestrator.CostModel`).  Cost is
:meth:`CostModel.world_cost` — every live container reservation at its
host's rate plus an energy charge per powered host, identically priced
for both modes.

Everything is deterministic: per-user rates derive from
``derive_seed(seed, "rate:i")``, no wall-clock numbers appear, and the
flash-crowd phase doubles down on a fixed user prefix.  The bench bar
(``benchmarks/test_bench_orchestration.py``) asserts strict dominance:
at the highest load point the optimized mode must beat first-fit on
cost *and* not lose on SLO violations.
"""

from __future__ import annotations

from repro.core.deployment.manager import DeploymentManager
from repro.core.deployment.orchestrator import (
    Autoscaler,
    AutoscalePolicy,
    CostModel,
    PlacementOptimizer,
    SharedMiddleboxPool,
)
from repro.core.discovery.messages import DeploymentAck, DeploymentRequest
from repro.core.pvnc.compiler import UserEnvironment
from repro.core.pvnc.model import ClassRule, ModuleSpec, Pvnc
from repro.experiments.harness import ExperimentResult, main
from repro.netsim.randomness import derive_seed
from repro.netsim.topology import AccessNetworkSpec, build_access_network
from repro.nfv.hypervisor import HostCapacity, NfvHost

#: Access points users attach through.
N_APS = 4
#: NFV hosts the provider operates.
N_HOSTS = 3
#: Per-host memory: small enough that dedicated-container first-fit
#: saturates at the highest sweep point (3 x 1 GB = ~250 users at
#: 2 x 6 MB each, swept up to 300), while shared instances never come
#: close.
HOST_MEMORY = 1_000_000_000
#: One chain round trip must finish inside this (seconds).
SLO_LATENCY = 0.06
#: Users per shared instance (the isolation cap).
MAX_MEMBERS = 64


def _pvnc_for(user: str) -> Pvnc:
    # ``allow_physical_reuse=True`` is the user's consent to
    # provider-operated boxes — the flag that makes these chain
    # elements shareable (first-fit mode gains nothing from it: the
    # topology has no physical box for either service).
    return Pvnc(
        user=user,
        name="e19",
        modules=(
            ModuleSpec.make("malware_detector", allow_physical_reuse=True),
            ModuleSpec.make("tracker_blocker", allow_physical_reuse=True),
        ),
        class_rules=(
            ClassRule("default", ("malware_detector", "tracker_blocker")),
        ),
    )


def _ap_for(seed: int, user: int) -> str:
    return f"ap{derive_seed(seed, f'device:{user}') % N_APS}"


def _rate_for(seed: int, user: int, base_rate: float) -> float:
    """Deterministic per-user offered load: base +/- 25% jitter."""
    jitter = derive_seed(seed, f"rate:{user}") % 1000 / 1000.0
    return base_rate * (0.75 + 0.5 * jitter)


def _build_world():
    topo = build_access_network(
        AccessNetworkSpec(n_aps=N_APS, n_nfv_hosts=N_HOSTS)
    )
    hosts = {
        n: NfvHost(n, HostCapacity(memory_bytes=HOST_MEMORY, cpu_cores=64.0))
        for n in topo.nodes_of_kind("nfv")
    }
    return topo, hosts


def _deploy_population(manager, users: int, seed: int):
    """Deploy one PVN per user; returns (user -> deployment_id, nacks)."""
    env = UserEnvironment()
    placed: dict[int, str] = {}
    nacks = 0
    for user in range(users):
        pvnc = _pvnc_for(f"u{user}")
        request = DeploymentRequest(
            device_id=f"u{user}:mac", offer_id=1, pvnc=pvnc,
            accepted_services=pvnc.used_services(), payment=10.0,
        )
        ack = manager.deploy(request, env, _ap_for(seed, user), now=0.0)
        if isinstance(ack, DeploymentAck):
            placed[user] = ack.deployment_id
        else:
            nacks += 1
    return placed, nacks


def _chain_latency(manager, optimizer, deployment_id: str) -> float:
    """One round trip: embedding RTT + 2x each shared hop's contention."""
    deployment = manager.deployment(deployment_id)
    latency = deployment.embedding.expected_rtt
    if optimizer is not None:
        for instance in optimizer.pool.memberships(deployment_id):
            latency += 2.0 * optimizer.model.contention_delay(instance.load)
    return latency


def _violations(manager, optimizer, placed: dict[int, str],
                slo: float) -> int:
    return sum(
        1 for deployment_id in placed.values()
        if _chain_latency(manager, optimizer, deployment_id) > slo
    )


def _current_ids(manager, placed: dict[int, str]) -> dict[int, str]:
    """Follow migrations: map each user to their *surviving* PVN."""
    by_user = {
        d.user: d.deployment_id
        for d in manager.deployments.values()
        if d.state.value == "active"
    }
    return {
        user: by_user.get(f"u{user}", deployment_id)
        for user, deployment_id in placed.items()
    }


def run(
    seed: int = 0,
    sweep: tuple[tuple[int, float], ...] = ((60, 6.0), (180, 8.0),
                                            (300, 10.0)),
    flash_crowd_users: int = 32,
    flash_factor: float = 6.0,
    autoscale_ticks: int = 12,
) -> ExperimentResult:
    model = CostModel()
    rows = []
    metrics: dict[str, float] = {}
    dominated = 0

    for users, base_rate in sweep:
        # -- first-fit: dedicated containers, greedy placement ------------
        topo_ff, hosts_ff = _build_world()
        manager_ff = DeploymentManager(provider="isp-ff", topo=topo_ff,
                                       hosts=hosts_ff, compile_cache=None)
        placed_ff, nacks_ff = _deploy_population(manager_ff, users, seed)
        slo_ff = nacks_ff + _violations(manager_ff, None, placed_ff,
                                        SLO_LATENCY)
        cost_ff = model.world_cost(topo_ff, hosts_ff)

        # -- optimized: shared instances + autoscaler ---------------------
        topo_opt, hosts_opt = _build_world()
        optimizer = PlacementOptimizer(
            topo_opt, hosts_opt, model=model,
            pool=SharedMiddleboxPool(max_members=MAX_MEMBERS),
        )
        manager_opt = DeploymentManager(provider="isp-opt", topo=topo_opt,
                                        hosts=hosts_opt, compile_cache=None,
                                        optimizer=optimizer)
        autoscaler = Autoscaler(manager_opt, optimizer,
                                AutoscalePolicy(max_migrations_per_tick=16))
        placed_opt, nacks_opt = _deploy_population(manager_opt, users, seed)
        for user, deployment_id in placed_opt.items():
            optimizer.report_load(
                deployment_id, _rate_for(seed, user, base_rate)
            )

        # Flash crowd: a fixed prefix of users multiplies its traffic,
        # driving their shared instances over the high watermark.
        for user in list(placed_opt)[:flash_crowd_users]:
            optimizer.report_load(
                placed_opt[user],
                flash_factor * _rate_for(seed, user, base_rate),
            )
        before = _violations(manager_opt, optimizer,
                             _current_ids(manager_opt, placed_opt),
                             SLO_LATENCY)
        for tick in range(autoscale_ticks):
            if not autoscaler.tick(float(tick + 1)):
                break
        current = _current_ids(manager_opt, placed_opt)
        slo_opt = nacks_opt + _violations(manager_opt, optimizer, current,
                                          SLO_LATENCY)
        cost_opt = model.world_cost(topo_opt, hosts_opt)

        total = float(users)
        dominates = (cost_opt < cost_ff and slo_opt <= slo_ff
                     and (slo_opt < slo_ff or cost_opt < cost_ff))
        dominated += int(dominates)
        rows.append((
            users,
            f"{base_rate:g}",
            f"{100 * slo_ff / total:.1f}%",
            f"{100 * slo_opt / total:.1f}%",
            f"{cost_ff:.1f}",
            f"{cost_opt:.1f}",
            optimizer.pool.stats()["instances"],
            autoscaler.migrations,
            "yes" if dominates else "no",
        ))
        metrics[f"slo_violation_rate_ff_at_{users}"] = slo_ff / total
        metrics[f"slo_violation_rate_opt_at_{users}"] = slo_opt / total
        metrics[f"slo_violations_opt_preautoscale_at_{users}"] = float(
            nacks_opt + before
        )
        metrics[f"cost_ff_at_{users}"] = cost_ff
        metrics[f"cost_opt_at_{users}"] = cost_opt
        metrics[f"nacks_ff_at_{users}"] = float(nacks_ff)
        metrics[f"nacks_opt_at_{users}"] = float(nacks_opt)
        metrics[f"shared_instances_at_{users}"] = float(
            optimizer.pool.stats()["instances"]
        )
        metrics[f"autoscale_migrations_at_{users}"] = float(
            autoscaler.migrations
        )
    metrics["dominated_points"] = float(dominated)

    return ExperimentResult(
        experiment_id="E19",
        title="§3.3 orchestration: offered load vs SLO violations and cost",
        columns=["users", "rate/user", "SLO viol (first-fit)",
                 "SLO viol (optimized)", "cost (first-fit)",
                 "cost (optimized)", "shared instances",
                 "autoscale migrations", "dominates"],
        rows=rows,
        metrics=metrics,
        notes=[
            "first-fit gives every user dedicated containers: cost grows "
            "linearly and deploys NACK once hosts fill (each NACK counts "
            "as an SLO violation — the user got nothing)",
            "optimized placement packs users onto shared instances "
            "(multi-objective cost model) and the autoscaler splits hot "
            "instances make-before-break when the flash crowd pushes "
            "utilization past the high watermark",
            f"SLO: one chain round trip (embedding RTT + 2x per shared "
            f"hop contention delay) under {SLO_LATENCY * 1000:g} ms",
            "all quantities are deterministic in the seed; no wall-clock "
            "numbers appear",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
