"""F1B — Fig. 1(b): deployment over a physical network with
middlebox reuse.

"When a device specifies a TCP proxy, the network provider can route
its traffic through a physical TCP proxy."  This experiment embeds the
canonical PVNC twice — once allowed to reuse the provider's existing
physical middleboxes, once forced to instantiate everything fresh —
and reports where each element landed, the containers and memory
saved, and the path stretch of each embedding.
"""

from __future__ import annotations

from repro.core.deployment.embedding import embed_pvn
from repro.core.pvnc import compile_pvnc
from repro.core.session import default_pvnc
from repro.experiments.harness import ExperimentResult, main
from repro.netsim.topology import attach_device, build_access_network, build_wide_area
from repro.nfv.container import ContainerSpec
from repro.nfv.hypervisor import NfvHost


def run(seed: int = 0) -> ExperimentResult:
    compiled = compile_pvnc(default_pvnc())
    spec = ContainerSpec()

    rows = []
    results = {}
    for label, prefer_reuse in (("reuse", True), ("fresh", False)):
        topo = build_wide_area(build_access_network())
        attach_device(topo, "dev")
        hosts = {n: NfvHost(n) for n in topo.nodes_of_kind("nfv")}
        embedding = embed_pvn(compiled, topo, hosts, device_node="dev",
                              prefer_reuse=prefer_reuse)
        results[label] = embedding
        for decision in embedding.plan.decisions:
            rows.append((
                label,
                decision.service,
                decision.node,
                "physical (reused)" if decision.reused_physical
                else "fresh container",
            ))

    reuse_plan = results["reuse"].plan
    fresh_plan = results["fresh"].plan
    containers_saved = fresh_plan.fresh_containers - reuse_plan.fresh_containers
    memory_saved = containers_saved * spec.memory_bytes
    return ExperimentResult(
        experiment_id="F1B",
        title="Fig. 1(b): embedding with vs without physical-middlebox reuse",
        columns=["mode", "service", "placed on", "kind"],
        rows=rows,
        metrics={
            "fresh_containers_with_reuse": float(reuse_plan.fresh_containers),
            "fresh_containers_without_reuse": float(
                fresh_plan.fresh_containers
            ),
            "containers_saved": float(containers_saved),
            "memory_saved_mb": memory_saved / 1e6,
            "stretch_with_reuse": results["reuse"].stretch,
            "stretch_without_reuse": results["fresh"].stretch,
            "instantiation_saved_ms": (
                spec.instantiation_time * 1e3 if containers_saved else 0.0
            ),
        },
        notes=[
            "the provider's physical tcp_proxy (pmb_tcp_proxy) is reused "
            "when the PVNC allows it (reuse=yes)",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
