"""F1C — Fig. 1(c): selective redirection.

"PVNs can provide flexible tunneling options, e.g., to selectively
tunnel traffic needing TLS interception to trusted cloud-based VMs,
without tunneling all of a device's traffic."

Sweeping the fraction of flows that genuinely need trusted execution,
compare the mean per-flow latency penalty of (a) tunneling everything
(the VPN baseline) against (b) tunneling only what needs it.  The
selective penalty should scale with the needy fraction while the full
tunnel pays the detour on every flow.
"""

from __future__ import annotations

import numpy as np

from repro.core.tunneling import (
    FullTunnel,
    RedirectRule,
    SelectiveRedirector,
    needs_tls_interception,
)
from repro.experiments.harness import ExperimentResult, main
from repro.netsim.packet import Packet
from repro.netsim.topology import attach_device, build_access_network, build_wide_area


def _flow_packets(rng: np.random.Generator, n_flows: int,
                  needy_fraction: float) -> list[Packet]:
    packets = []
    for index in range(n_flows):
        needy = rng.random() < needy_fraction
        packet = Packet(
            src="10.10.0.2", dst="198.51.100.10",
            dst_port=443 if needy or rng.random() < 0.5 else 80,
            owner="alice", size=1400, flow_id=index,
        )
        if needy:
            packet.metadata["needs_inspection"] = True
        packets.append(packet)
    return packets


def run(seed: int = 0, n_flows: int = 400,
        fractions: tuple[float, ...] = (0.0, 0.05, 0.1, 0.25, 0.5, 1.0)
        ) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    topo = build_wide_area(build_access_network(), cloud_rtt=0.040)
    attach_device(topo, "dev")
    tunnel = FullTunnel(topo, "dev", "cloud")
    detour = tunnel.costs().added_rtt

    rows = []
    metrics: dict[str, float] = {"cloud_detour_ms": detour * 1e3}
    for needy_fraction in fractions:
        redirector = SelectiveRedirector([
            RedirectRule("tls", needs_tls_interception, "cloud"),
        ])
        packets = _flow_packets(rng, n_flows, needy_fraction)
        selective_penalties = []
        for packet in packets:
            endpoint = redirector.route(packet)
            selective_penalties.append(detour if endpoint else 0.0)
        selective_mean = float(np.mean(selective_penalties))
        full_mean = detour  # every flow pays the hairpin
        rows.append((
            f"{needy_fraction:.0%}",
            redirector.redirected,
            n_flows - redirector.redirected,
            full_mean * 1e3,
            selective_mean * 1e3,
            (full_mean - selective_mean) * 1e3,
        ))
        metrics[f"selective_penalty_ms_at_{int(needy_fraction * 100)}"] = (
            selective_mean * 1e3
        )
    metrics["full_tunnel_penalty_ms"] = detour * 1e3
    return ExperimentResult(
        experiment_id="F1C",
        title="Fig. 1(c): selective vs full tunneling, mean added latency "
              "per flow",
        columns=["needs-inspection", "tunneled", "kept in-network",
                 "full tunnel (ms)", "selective (ms)", "saved (ms)"],
        rows=rows,
        metrics=metrics,
        notes=[
            "full tunneling pays the cloud detour on every flow; "
            "selective redirection pays it only on flows whose policy "
            "needs trusted execution",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
