"""E3 — §2.2 split-connection TCP proxies.

"Previous work shows that splitting TCP connections should offer
better client-perceived performance than direct connections if the
proxy is on the same path ... However, recent work shows that the
impact of such proxies is mixed: devices with better link quality
benefited most from proxying, and the rest could receive worse
performance due to proxying overheads."

Sweep the wireless last-mile quality (loss rate) and the transfer
size, comparing direct transfers against split transfers through an
in-network proxy.  The expected shape: big wins for bulk transfers
on lossy links (local loss recovery), shrinking to a *loss* for small
objects on clean links where the proxy's connection-setup overhead
dominates.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import speedup, summarize
from repro.experiments.harness import ExperimentResult, main
from repro.middleboxes.tcp_proxy import SplitTcpProxy
from repro.netsim.tcp import PathCharacteristics

#: Server -> proxy leg: wired, clean, fast (the proxy is in-network).
UPSTREAM = PathCharacteristics(rtt=0.080, loss_rate=0.0001,
                               bandwidth_bps=1e9)


def _downstream(loss: float) -> PathCharacteristics:
    return PathCharacteristics(rtt=0.025, loss_rate=loss,
                               bandwidth_bps=40e6)


def run(
    seed: int = 0,
    loss_rates: tuple[float, ...] = (0.0001, 0.001, 0.005, 0.01, 0.02, 0.05),
    bulk_bytes: int = 2_000_000,
    small_bytes: int = 20_000,
    trials: int = 12,
) -> ExperimentResult:
    # A warm proxy has its splice ready (2ms); a cold one pays the
    # full container spin-up the paper cites (30ms) before splicing.
    warm = SplitTcpProxy(connection_setup=0.002, name="warm")
    cold = SplitTcpProxy(connection_setup=0.032, name="cold")
    rows = []
    metrics: dict[str, float] = {}

    scenarios = (
        (bulk_bytes, "bulk", warm),
        (small_bytes, "small", warm),
        (small_bytes, "small-cold", cold),
    )
    for size, label, proxy in scenarios:
        for loss in loss_rates:
            downstream = _downstream(loss)
            direct = summarize([
                SplitTcpProxy.direct_transfer_time(
                    size, UPSTREAM, downstream,
                    np.random.default_rng(seed * 100 + t),
                ).duration
                for t in range(trials)
            ])
            split = summarize([
                proxy.transfer_time(
                    size, UPSTREAM, downstream,
                    np.random.default_rng(seed * 100 + t),
                ).duration
                for t in range(trials)
            ])
            gain = speedup(direct.mean, split.mean)
            rows.append((
                label, f"{loss:.2%}",
                direct.mean, split.mean, f"x{gain:.2f}",
                "split wins" if gain > 1.0 else "direct wins",
            ))
            metrics[f"speedup_{label}_loss_{loss:g}"] = gain

    crossover = any(
        metrics[f"speedup_small-cold_loss_{loss:g}"] < 1.0
        for loss in loss_rates[:2]
    )
    metrics["small_clean_crossover"] = 1.0 if crossover else 0.0
    return ExperimentResult(
        experiment_id="E3",
        title="§2.2 split-TCP: direct vs proxied download time across "
              "last-mile quality",
        columns=["transfer", "last-mile loss", "direct (s)", "split (s)",
                 "speedup", "winner"],
        rows=rows,
        metrics=metrics,
        notes=[
            "split connections recover last-mile losses over a 25ms loop "
            "instead of the full 105ms path; wins grow with loss",
            "for small objects on clean paths the proxy's setup overhead "
            "makes splitting a net loss — the paper's 'mixed results'",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
