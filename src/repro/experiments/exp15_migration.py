"""E15 — stateful migration under fire.

The §1 promise ("the illusion of a personal home network wherever the
device roams") stress-tested for *stateful* middleboxes: a prefetcher
whose in-network cache is the whole point of §4's offloading argument
must survive an AP handoff, and the handoff machinery itself must
survive the migration-window faults of :mod:`repro.faults`.

Four claims, each asserted:

* **state survival** — a cache warmed before the handoff still serves
  hits after it: checkpoints ship the prefetcher's LRU contents to the
  containers instantiated at the new AP;
* **commit-or-rollback atomicity** — under every injected
  migration-window fault (target crash in PREPARE, checkpoint-transfer
  loss, provider silence at COMMIT) the transaction either commits
  fully or rolls back fully: no partial embeddings, no orphaned
  containers, and the interrupted commit is rolled *forward* by the
  robustness supervisor's journal replay;
* **split-brain fencing** — after every cutover the superseded
  deployment processes zero packets: its data path rejects them on the
  stale epoch token and each rejection lands in the evidence ledger;
* **determinism** — the whole scenario executes twice and the
  normalised journal + fault-trace + fence digests are identical.

An inter-provider roam closes the table: crossing a provider boundary
re-deploys from scratch, so the cache starts cold — the contrast that
makes the intra-provider stateful handoff worth its machinery.
"""

from __future__ import annotations

import hashlib

from repro.core import AccessProvider, PvnSession
from repro.core.deployment.lifecycle import LeaseTable
from repro.core.deployment.manager import DeploymentState
from repro.core.deployment.recovery import RecoveryPolicy
from repro.core.pvnc.dsl import parse_pvnc
from repro.experiments.harness import ExperimentResult, main
from repro.faults import FaultKind, make_event, normalise_ids
from repro.netproto.http import HttpRequest, HttpResponse
from repro.netsim.packet import Packet

#: A PVNC whose value is its state: the §4 prefetcher cache.
STATEFUL_PVNC_TEXT = '''
pvnc "stateful-roaming" for alice
module prefetcher
module tracker_blocker
class web_text: tracker_blocker -> prefetcher -> forward
default: forward
require prefetcher tracker_blocker
budget 10.0
max-latency 1 ms
'''

WARM_URLS = tuple(f"http://site.example/p{i}" for i in range(4))


def _response_packet(url: str, device_ip: str, user: str) -> Packet:
    return Packet(
        src="198.51.100.6", dst=device_ip, src_port=80, owner=user,
        payload=HttpResponse(status=200, body=b"x" * 600),
        metadata={"url": url},
    )


def _request_packet(url: str, device_ip: str, user: str) -> Packet:
    host, _, path = url.removeprefix("http://").partition("/")
    return Packet(
        src=device_ip, dst="198.51.100.6", dst_port=80, owner=user,
        payload=HttpRequest("GET", host, "/" + path),
    )


def _live_container_count(session, user: str) -> int:
    """Containers of ``user`` still admitted on any NFV host."""
    return sum(
        1 for host in session.provider.hosts.values()
        for c in host.containers()
        if c.owner == user and c.state.value not in ("stopped",)
    )


def _execute(seed: int) -> dict:
    session = PvnSession.build(seed=seed)
    pvnc = parse_pvnc(STATEFUL_PVNC_TEXT)
    outcome = session.connect(pvnc)
    assert outcome.deployed, outcome.reason
    user = session.device.user
    device_ip = outcome.connection.device_ip
    manager = session.provider.manager
    leases = LeaseTable()
    leases.fund(outcome.deployment_id, until=3600.0)

    session.enable_robustness(RecoveryPolicy(check_interval=0.25))
    injector = session.inject_faults("")    # empty plan; armed via inject_now

    def prefetcher():
        deployment_id = session.device.connection.deployment_id
        return manager.deployment(deployment_id).datapath.middleboxes[
            "prefetcher"
        ]

    # -- warm the cache at the home AP ------------------------------------
    for url in WARM_URLS:
        session.send(_response_packet(url, device_ip, user))
    hit_probe = session.send(_request_packet(WARM_URLS[0], device_ip, user))
    assert "prefetcher:rewrite" in hit_probe.verdict_reasons
    hits_before = prefetcher().hits
    assert hits_before == 1

    fenced: list = []           # (datapath, packets_processed at cutover)

    def note_superseded(source_id: str) -> None:
        datapath = manager.deployment(source_id).datapath
        fenced.append((datapath, datapath.packets_processed))

    # -- 1. clean AP handoff: the cache must survive ----------------------
    source_id = session.device.connection.deployment_id
    clean = session.migrate("dev_alice_ap1", ap="ap1", leases=leases)
    assert clean.committed, clean.reason
    note_superseded(source_id)
    assert "prefetcher" in clean.restored_services
    assert leases.leases.get(clean.deployment_id, 0.0) == 3600.0
    hit_after = session.send(_request_packet(WARM_URLS[1], device_ip, user))
    assert "prefetcher:rewrite" in hit_after.verdict_reasons
    assert prefetcher().hits == hits_before + 1   # counter survived too
    cache_survived = prefetcher().cache.get(WARM_URLS[2]) is not None

    # -- 2. target crash during PREPARE: full rollback --------------------
    live_before = _live_container_count(session, user)
    injector.inject_now(make_event(session.sim.now,
                                   FaultKind.MIGRATION_TARGET_CRASH))
    crash = session.migrate("dev_alice_b", ap="ap0", leases=leases)
    assert not crash.committed and not crash.pending
    assert crash.deployment_id == clean.deployment_id     # source survives
    assert _live_container_count(session, user) == live_before
    crash_rolled_back = (
        session.device.connection.deployment_id == clean.deployment_id
        and manager.deployment(clean.deployment_id).healthy
    )

    # -- 3. transfer loss beyond the retry budget: full rollback ----------
    injector.inject_now(make_event(session.sim.now,
                                   FaultKind.MIGRATION_TRANSFER_LOSS,
                                   count=3))
    lost = session.migrate("dev_alice_c", ap="ap0", leases=leases)
    assert not lost.committed and lost.transfer_attempts == 3
    assert _live_container_count(session, user) == live_before
    # The bridge is lifted: the surviving chain serves in-network again.
    post_abort = session.send(
        _request_packet(WARM_URLS[2], device_ip, user)
    )
    assert post_abort.action == "forward"

    # -- 4. one lost transfer: retried within budget, commits -------------
    source_id = session.device.connection.deployment_id
    injector.inject_now(make_event(session.sim.now,
                                   FaultKind.MIGRATION_TRANSFER_LOSS))
    retried = session.migrate("dev_alice_b", ap="ap0", leases=leases)
    assert retried.committed and retried.transfer_attempts == 2
    note_superseded(source_id)

    # -- 5. provider silence at COMMIT: journal replay rolls forward ------
    source_id = session.device.connection.deployment_id
    injector.inject_now(make_event(session.sim.now,
                                   FaultKind.MIGRATION_COMMIT_SILENCE,
                                   duration=0.5))
    silent = session.migrate("dev_alice_d", ap="ap1", leases=leases)
    assert not silent.committed and silent.pending
    session.sim.run_for(0.5)    # next supervisor tick replays the journal
    coordinator = manager.migration_coordinator
    assert not coordinator.journal.open_transactions()
    replay_events = [e for e in session.supervisor.events
                     if e.kind == "migration_rolled_forward"]
    assert len(replay_events) == 1
    # Exactly one deployment survives the whole gauntlet (no partial
    # embeddings): the rolled-forward target.
    active = [d for d in manager.deployments_for(user)
              if d.state is DeploymentState.ACTIVE]
    assert len(active) == 1
    rolled_forward_id = active[0].deployment_id
    session.device.connection.deployment_id = rolled_forward_id
    note_superseded(source_id)
    assert leases.leases.get(rolled_forward_id, 0.0) == 3600.0
    final_hit = session.send(_request_packet(WARM_URLS[3], device_ip, user))
    assert "prefetcher:rewrite" in final_hit.verdict_reasons

    # -- split-brain fencing: superseded chains process nothing -----------
    stale_rejections = 0
    zero_stale_processing = True
    for datapath, processed_at_cutover in fenced:
        outcome_stale = datapath.process(
            _request_packet(WARM_URLS[0], device_ip, user),
            now=session.sim.now,
        )
        assert outcome_stale.verdict_reasons == ("fencing:stale_epoch",)
        stale_rejections += datapath.stale_rejections
        if datapath.packets_processed != processed_at_cutover:
            zero_stale_processing = False
    stale_evidence = sum(
        1 for r in session.device.ledger.fault_records(session.provider.name)
        if r.test == "fault:stale_epoch"
    )

    # -- inter-provider roam: fresh deployment, cold cache ----------------
    roam = AccessProvider("isp-roam", sim=session.sim, seed=seed + 1)
    roam.attach_device(session.device.node_name)
    roam_connection = session.device.establish_pvn([roam], pvnc)
    roam_prefetcher = roam.manager.deployment(
        roam_connection.deployment_id
    ).datapath.middleboxes["prefetcher"]
    roam_cold = len(roam_prefetcher.cache) == 0

    # -- determinism digest ------------------------------------------------
    blob = "\n".join([
        coordinator.journal.render(),
        injector.trace(),
        *(f"advance {lineage} -> {epoch}"
          for lineage, epoch in coordinator.fencing.advances),
        *(f"{t:.6f} reject {dep} {lineage}@{epoch}"
          for t, dep, lineage, epoch in coordinator.fencing.rejections),
        *(f"{r.time:.6f} {r.deployment_id} {r.test} {r.detail}"
          for r in session.device.ledger.fault_records()),
    ])
    digest = hashlib.sha256(normalise_ids(blob).encode()).hexdigest()

    committed_txns = sum(
        1 for e in coordinator.journal.entries if e.record == "committed"
    )
    aborted_txns = sum(
        1 for e in coordinator.journal.entries if e.record == "aborted"
    )
    return {
        "digest": digest,
        "cache_survived": cache_survived,
        "state_bytes": clean.state_bytes,
        "handoff_ms": clean.handoff_time * 1e3,
        "crash_rolled_back": crash_rolled_back,
        "retry_attempts": retried.transfer_attempts,
        "committed": committed_txns,
        "aborted": aborted_txns,
        "stale_rejections": stale_rejections,
        "stale_evidence": stale_evidence,
        "zero_stale_processing": zero_stale_processing,
        "live_containers": _live_container_count(session, user),
        "expected_live": len(
            manager.deployment(rolled_forward_id).containers
        ),
        "final_epoch": manager.deployment(rolled_forward_id).epoch,
        "roam_cold": roam_cold,
    }


def run(seed: int = 0) -> ExperimentResult:
    first = _execute(seed)
    second = _execute(seed)
    deterministic = first["digest"] == second["digest"]
    r = first

    no_orphans = r["live_containers"] == r["expected_live"]
    rows = [
        ("clean AP handoff",
         f"cache survived: {r['cache_survived']}, "
         f"{r['state_bytes']} B shipped in {r['handoff_ms']:.1f} ms"),
        ("target crash in PREPARE",
         f"full rollback: {r['crash_rolled_back']}, "
         "source deployment untouched"),
        ("transfer loss x3 (budget 3)",
         "aborted after 3 attempts; bridge lifted, chain serves again"),
        ("transfer loss x1",
         f"committed after {r['retry_attempts']} attempts"),
        ("provider silence at COMMIT",
         "journal replay rolled the intent forward on the next "
         "supervisor tick"),
        ("split-brain fencing",
         f"{r['stale_rejections']} stale-epoch rejections, "
         f"{r['stale_evidence']} ledgered, "
         f"zero stale processing: {r['zero_stale_processing']}"),
        ("orphan sweep",
         f"{r['live_containers']} live containers == "
         f"{r['expected_live']} in the surviving deployment"),
        ("inter-provider roam",
         f"fresh deployment, cache cold: {r['roam_cold']} — state does "
         "not cross the provider boundary"),
        ("determinism",
         "two executions, identical normalised digests"
         if deterministic else "DIGEST DIVERGED between executions"),
    ]
    metrics = {
        "cache_survived_handoff": float(r["cache_survived"]),
        "handoff_state_bytes": float(r["state_bytes"]),
        "handoff_ms": r["handoff_ms"],
        "migrations_committed": float(r["committed"]),
        "migrations_aborted": float(r["aborted"]),
        "rollback_atomicity": float(r["crash_rolled_back"] and no_orphans),
        "stale_epoch_rejections": float(r["stale_rejections"]),
        "zero_stale_processing": float(r["zero_stale_processing"]),
        "orphaned_containers": float(r["live_containers"]
                                     - r["expected_live"]),
        "final_epoch": float(r["final_epoch"]),
        "roam_cache_cold": float(r["roam_cold"]),
        "deterministic": float(deterministic),
    }
    return ExperimentResult(
        experiment_id="E15",
        title="stateful migration: checkpoint/restore, make-before-break "
              "handoff, and split-brain fencing under injected faults",
        columns=["scenario", "outcome"],
        rows=rows,
        metrics=metrics,
        notes=[
            f"journal+fence digest {r['digest'][:16]}… (seed {seed}; "
            "normalised for process-global deployment counters)",
            "every migration-window fault resolves to commit-or-rollback: "
            "an interrupted COMMIT rolls forward via WAL replay, "
            "everything earlier rolls back to the intact source",
            f"the surviving deployment sits at epoch {r['final_epoch']}; "
            "all superseded chains reject traffic on their stale token",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
