"""E13 — roaming: "the illusion of a personal home network wherever
the device roams" (§1).

Three mobility events, costed in time-to-protection (how long until
the user's policies are enforced again) and configuration fidelity
(which of the user's services survive):

* **intra-provider AP handoff** — a stateful make-before-break
  migration (:mod:`repro.core.deployment.migration`): fresh containers
  are instantiated at the new AP, middlebox state is checkpointed and
  shipped, and the cutover commits atomically behind an epoch fence —
  no renegotiation, and the chain's accumulated state survives;
* **inter-provider roam, full support** — fresh discovery +
  negotiation + deployment on the new network (the E12 join cost);
* **inter-provider roam, partial support** — same, but the new
  network only hosts a subset: the PVNC degrades gracefully to its
  required core;
* **baseline: no PVN anywhere** — zero handoff cost, zero protection.
"""

from __future__ import annotations

from repro.core import AccessProvider, PvnSession, default_pvnc
from repro.core.deployment.lifecycle import LeaseTable, migrate_device
from repro.experiments.harness import ExperimentResult, main
from repro.netsim.topology import attach_device
from repro.nfv.container import ContainerSpec


def run(seed: int = 0) -> ExperimentResult:
    spec = ContainerSpec()
    pvnc = default_pvnc()
    rows = []
    metrics: dict[str, float] = {}

    # -- home network ------------------------------------------------------
    session = PvnSession.build(seed=seed)
    outcome = session.connect(pvnc)
    assert outcome.deployed, outcome.reason
    home_services = set(session.device.connection.services)
    rtt = session.provider.topo.rtt(session.device.node_name, "gw")

    # -- event 1: intra-provider AP handoff --------------------------------
    # A stateful two-phase migration: the handoff pays container
    # instantiation at the new AP plus checkpoint transfer plus one
    # control-plane RTT for the commit — but the source chain serves
    # (then bridges) throughout, so time-to-protection never hits zero.
    home_deployment_id = session.device.connection.deployment_id
    leases = LeaseTable()
    leases.fund(home_deployment_id, until=3600.0)
    attach_device(session.provider.topo, "dev_alice_ap1", ap="ap1")
    migration = migrate_device(
        session.provider.manager,
        home_deployment_id,
        "dev_alice_ap1",
        now=session.sim.now,
        leases=leases,
        ledger=session.device.ledger,
    )
    assert migration.committed, migration.reason
    assert home_deployment_id not in leases.leases  # funding followed
    session.device.connection.deployment_id = migration.deployment_id
    handoff_cost = migration.handoff_time + rtt
    rows.append((
        "AP handoff (same provider)",
        handoff_cost * 1e3,
        f"{len(home_services)}/{len(home_services)}",
        f"restored {len(migration.restored_services)} middleboxes "
        f"({migration.state_bytes} B state), "
        f"stretch x{migration.new_stretch:.2f}, "
        f"epoch {migration.epoch}",
    ))
    metrics["handoff_ms"] = handoff_cost * 1e3
    metrics["handoff_keeps_all_services"] = 1.0
    metrics["handoff_state_bytes"] = float(migration.state_bytes)

    # -- event 2: roam to a full-support provider ---------------------------
    roam_full = AccessProvider("isp-roam-full", sim=session.sim,
                               seed=seed + 1)
    roam_full.attach_device(session.device.node_name)
    connection = session.device.establish_pvn([roam_full], pvnc)
    # Join cost: DORA (2 RTT) + DM (1) + deploy (1 RTT + instantiation)
    # + refresh (1) — the E12 breakdown.
    roam_cost = 5 * rtt + spec.instantiation_time
    rows.append((
        "roam (new provider, full support)",
        roam_cost * 1e3,
        f"{len(connection.services)}/{len(home_services)}",
        f"renegotiated at {connection.price_paid}",
    ))
    metrics["roam_full_ms"] = roam_cost * 1e3
    metrics["roam_full_services"] = float(len(connection.services))

    # -- event 3: roam to a partial-support provider -------------------------
    roam_partial = AccessProvider(
        "isp-roam-partial", sim=session.sim, seed=seed + 2,
        supported_services=("classifier", "tls_validator", "pii_detector"),
    )
    roam_partial.attach_device(session.device.node_name)
    degraded = session.device.establish_pvn([roam_partial], pvnc)
    rows.append((
        "roam (new provider, partial support)",
        roam_cost * 1e3,
        f"{len(degraded.services)}/{len(home_services)}",
        "degraded to required core: " + ", ".join(degraded.services),
    ))
    metrics["roam_partial_services"] = float(len(degraded.services))
    required_kept = set(pvnc.constraints.required_services) <= set(
        degraded.services
    )
    metrics["required_survive_partial_roam"] = float(required_kept)

    # -- baseline -------------------------------------------------------------
    rows.append(("no PVN anywhere", 0.0, "0/"
                 f"{len(home_services)}", "no protection at any stop"))
    metrics["services_at_home"] = float(len(home_services))
    return ExperimentResult(
        experiment_id="E13",
        title="roaming: time-to-protection and configuration fidelity "
              "across mobility events",
        columns=["event", "time to protection (ms)",
                 "services kept", "detail"],
        rows=rows,
        metrics=metrics,
        notes=[
            "intra-provider handoff is a stateful make-before-break "
            "migration: containers are instantiated at the new AP, "
            "middlebox state is checkpointed and restored, and the "
            "epoch-fenced cutover commits atomically — no renegotiation",
            "inter-provider roams pay the E12 join cost; partial "
            "support degrades to the PVNC's required services rather "
            "than failing",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
