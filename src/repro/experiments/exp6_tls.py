"""E6 — §4 HTTPS/TLS enhancements.

"A PVN middlebox can perform certificate validity checks beyond those
provided by mobile OSes and apps, and reject connections for those
using invalid certificates.  This protects against malicious servers
spoofing as their authentic ones, and can detect and prevent
unauthorized TLS interception."

A population of connections — some from careful apps, most from apps
that skip validation (the [23] measurement) — crosses a network where
a MITM intercepts a fraction of handshakes and some servers present
expired/revoked certificates.  Compare compromised-connection counts
with and without the PVN validator.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import fraction
from repro.experiments.harness import ExperimentResult, main
from repro.middleboxes.tls_validator import TlsValidator
from repro.netproto.tls import make_web_pki
from repro.netsim.packet import Packet
from repro.nfv.middlebox import ProcessingContext, VerdictKind
from repro.workloads.apps import BrowserApp, CarelessApp
from repro.workloads.adversary import mitm_scenario

NOW = 1_000_000.0


def run(
    seed: int = 0,
    n_connections: int = 600,
    careless_fraction: float = 0.7,
    mitm_fraction: float = 0.10,
    bad_cert_fraction: float = 0.05,
) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    root, store, servers = make_web_pki(NOW, ["bank.example.com"])
    server = servers["bank.example.com"]
    scenario = mitm_scenario(NOW)

    rows = []
    metrics: dict[str, float] = {}
    for pvn_on in (False, True):
        validator = TlsValidator(store, mode="block")
        compromised = 0
        blocked = 0
        attacks = 0
        for _ in range(n_connections):
            handshake = server.respond("bank.example.com")
            attacked = False
            if rng.random() < mitm_fraction:
                handshake = scenario.interceptor.intercept(handshake)
                attacked = True
            elif rng.random() < bad_cert_fraction:
                stale = root.issue("bank.example.com", now=NOW - 1e7,
                                   lifetime=100.0)
                handshake = type(handshake)(
                    sni="bank.example.com", presented_chain=(stale,),
                )
                attacked = True
            if attacked:
                attacks += 1

            if pvn_on:
                packet = Packet(src="10.10.0.2", dst="198.51.100.5",
                                dst_port=443, owner="alice",
                                payload=handshake)
                verdict = validator.process(
                    packet, ProcessingContext(now=NOW, owner="alice")
                )
                if verdict.kind is VerdictKind.DROP:
                    blocked += 1
                    continue

            careless = rng.random() < careless_fraction
            app = CarelessApp() if careless else BrowserApp(store)
            if app.connect(handshake, NOW).proceeded and attacked:
                compromised += 1

        label = "pvn validator" if pvn_on else "no pvn"
        rows.append((
            label, n_connections, attacks, blocked, compromised,
            f"{fraction(compromised, attacks):.0%}" if attacks else "-",
        ))
        key = "pvn" if pvn_on else "none"
        metrics[f"compromised_{key}"] = float(compromised)
        metrics[f"blocked_{key}"] = float(blocked)
        metrics[f"attacks_{key}"] = float(attacks)

    metrics["mitm_caught_by_pvn"] = float(
        metrics["blocked_pvn"] > 0 and metrics["compromised_pvn"] == 0
    )
    return ExperimentResult(
        experiment_id="E6",
        title="§4 TLS: compromised connections with/without the PVN "
              "certificate validator (70% of apps skip validation)",
        columns=["config", "connections", "attacked", "blocked by PVN",
                 "compromised", "attack success"],
        rows=rows,
        metrics=metrics,
        notes=[
            "without the PVN, every attacked connection from a careless "
            "app is compromised; the PVN blocks them app-agnostically",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
