"""E18 — §4 control-plane attach throughput at scale.

The paper needs PVNs cheap enough to instantiate "for each device that
connects" to an access network.  PR 3 made the *datapath* O(1) per
packet; this experiment measures the *control plane* — compile + embed
+ admit per attach — which is where E1's per-device cost now lives:

* **baseline** — every attach recompiles the PVNC from scratch
  (``cache=None``), re-runs the placement search (``index=None``), and
  admission rescans each host's full container table
  (``incremental=False``): marginal attach cost grows with the number
  of devices already attached;
* **optimized** — the content-addressed :class:`CompileCache` shares
  one compiled artifact across all devices with the same policy, the
  :class:`EmbeddingIndex` memoizes the placement against a feasibility
  snapshot, and hosts answer admission from O(1) residual counters.

Both modes are measured as *marginal* throughput: the world is
prefilled to the target device count, then a batch of further attaches
is timed.  Timing rows are wall-clock and vary run to run; the bench
suite asserts the shape (optimized throughput flat in the device count,
baseline falling).

The module also exposes the sharded form used by
``python -m repro run E18 --shards N`` (see
:mod:`repro.experiments.runner`): :func:`run_shard` attaches one
round-robin slice of the device population in an isolated world with
its own simulator, and :func:`merge_shards` reassembles the per-device
records into an :class:`ExperimentResult` that is byte-identical
regardless of the shard count — every output-affecting quantity is
keyed per device, never per shard, and no wall-clock numbers appear.
"""

from __future__ import annotations

import hashlib
import json
import time

from repro.core.deployment.embedding import EmbeddingIndex, embed_pvn
from repro.core.pvnc.compiler import CompileCache, compile_pvnc
from repro.core.pvnc.model import ClassRule, ModuleSpec, Pvnc
from repro.experiments.harness import ExperimentResult, main
from repro.netsim.randomness import derive_seed, seed_default_streams, shard_seed
from repro.netsim.simulator import Simulator
from repro.netsim.topology import (
    AccessNetworkSpec,
    build_access_network,
)
from repro.nfv.container import Container
from repro.nfv.hypervisor import HostCapacity, NfvHost
from repro.nfv.middlebox import Middlebox

#: Access points devices attach through (placement is keyed on the
#: attachment point, so this bounds the distinct placement problems).
N_APS = 4
#: Default population for the sharded run (kept modest for CI smoke).
DEFAULT_DEVICES = 512


def _pvnc_for(user: str) -> Pvnc:
    """The per-device policy: identical across users (the store-app
    case the compile cache is built for), unique owner."""
    return Pvnc(
        user=user,
        name="e18",
        modules=(
            ModuleSpec.make("malware_detector"),
            ModuleSpec.make("tracker_blocker"),
        ),
        class_rules=(
            ClassRule("default", ("malware_detector", "tracker_blocker")),
        ),
    )


def _ap_for(seed: int, device: int) -> str:
    """The device's attachment point — keyed per *device*, never per
    shard, so partitioning cannot change it."""
    return f"ap{derive_seed(seed, f'device:{device}') % N_APS}"


def _build_world() -> tuple:
    """An access network with ample NFV capacity.

    Capacity never binds, so placement is independent of attach order
    and of how a sharded run partitions the population — the
    determinism contract of :func:`merge_shards` depends on this.
    """
    topo = build_access_network(AccessNetworkSpec(n_aps=N_APS, n_nfv_hosts=2))
    hosts = {
        n: NfvHost(n, HostCapacity(memory_bytes=10**12, cpu_cores=10**6))
        for n in topo.nodes_of_kind("nfv")
    }
    return topo, hosts


def _attach(
    device: int,
    seed: int,
    topo,
    hosts,
    cache: CompileCache | None,
    index: EmbeddingIndex | None,
    sim: Simulator | None = None,
):
    """One control-plane attach: compile -> embed -> admit containers."""
    user = f"u{device}"
    compiled = compile_pvnc(_pvnc_for(user), cache=cache)
    embedding = embed_pvn(
        compiled, topo, hosts, device_node=_ap_for(seed, device), index=index,
    )
    for decision in embedding.plan.decisions:
        host = hosts.get(decision.node)
        if host is None or decision.reused_physical:
            continue
        host.launch(Container(Middlebox(decision.service), owner=user),
                    sim=sim, now=0.0)
    return embedding


# -- the wall-clock experiment ----------------------------------------------


def _attach_rate(first: int, batch: int, seed: int, topo, hosts,
                 cache, index) -> float:
    start = time.perf_counter()
    for device in range(first, first + batch):
        _attach(device, seed, topo, hosts, cache, index)
    elapsed = time.perf_counter() - start
    return batch / elapsed if elapsed > 0 else float("inf")


def run(
    seed: int = 0,
    device_counts: tuple[int, ...] = (250, 1000),
    measure_batch: int = 100,
    repeats: int = 2,
) -> ExperimentResult:
    rows = []
    metrics: dict[str, float] = {}
    for n_devices in device_counts:
        topo, hosts = _build_world()
        cache = CompileCache()
        index = EmbeddingIndex(topo, hosts)

        # Prefill to the target occupancy through the fast path (the
        # occupancy, not how it was reached, is what the marginal
        # attach cost depends on).
        for device in range(n_devices):
            _attach(device, seed, topo, hosts, cache, index)

        next_device = n_devices
        # Baseline: no compile cache, no placement memo, and admission
        # rescans the container table on every capacity check.
        for host in hosts.values():
            host.incremental = False
        base_pps = 0.0
        for _ in range(repeats):
            base_pps = max(base_pps, _attach_rate(
                next_device, measure_batch, seed, topo, hosts,
                cache=None, index=None,
            ))
            next_device += measure_batch
        for host in hosts.values():
            host.incremental = True

        cached_pps = 0.0
        for _ in range(repeats):
            cached_pps = max(cached_pps, _attach_rate(
                next_device, measure_batch, seed, topo, hosts,
                cache=cache, index=index,
            ))
            next_device += measure_batch

        speedup = cached_pps / base_pps if base_pps else float("inf")
        rows.append((
            n_devices,
            f"{base_pps:,.0f}",
            f"{cached_pps:,.0f}",
            f"{speedup:.1f}x",
            f"{100 * cache.hit_rate:.1f}%",
            index.hits,
        ))
        metrics[f"attach_per_sec_base_at_{n_devices}"] = base_pps
        metrics[f"attach_per_sec_cached_at_{n_devices}"] = cached_pps
        metrics[f"speedup_at_{n_devices}"] = speedup
        metrics[f"compile_cache_hit_rate_at_{n_devices}"] = cache.hit_rate
    return ExperimentResult(
        experiment_id="E18",
        title="§4 control-plane fast path: attach throughput vs device count",
        columns=["devices attached", "baseline attach/s", "cached attach/s",
                 "speedup", "compile hit rate", "embed memo hits"],
        rows=rows,
        metrics=metrics,
        notes=[
            "baseline marginal attach cost grows with occupancy (host "
            "rescans + repeated compiles); the compile cache, embedding "
            "memo, and incremental admission make it amortized O(1), so "
            "cached attach/s stays flat as devices scale (§4)",
            "both modes are measured as marginal throughput at the "
            "stated occupancy, after a fast-path prefill",
            "timing rows are wall-clock and vary run to run; only the "
            "shape is asserted by the bench suite",
        ],
    )


# -- the sharded form (python -m repro run E18 --shards N) -------------------


def run_shard(shard_index: int, shard_count: int, seed: int,
              params: dict | None = None) -> dict:
    """Attach one round-robin slice of the population; return records.

    The shard is fully isolated: its own topology, hosts, compile
    cache, embedding index, simulator, and stream factory (seeded via
    :func:`~repro.netsim.randomness.shard_seed`).  Records contain only
    per-device quantities — no wall-clock, no global counters, no
    cache statistics — because those are the things a different shard
    count would perturb.
    """
    params = params or {}
    devices = int(params.get("devices", DEFAULT_DEVICES))
    seed_default_streams(shard_seed(seed, shard_index))
    topo, hosts = _build_world()
    cache = CompileCache()
    index = EmbeddingIndex(topo, hosts)
    sim = Simulator()
    records = []
    for device in range(shard_index, devices, shard_count):
        embedding = _attach(device, seed, topo, hosts, cache, index, sim=sim)
        records.append([
            device,
            _ap_for(seed, device),
            [[d.service, d.node, bool(d.reused_physical)]
             for d in embedding.plan.decisions],
            embedding.expected_rtt,
            embedding.plan.stretch,
        ])
    # Drive every container to RUNNING on this shard's own simulator.
    sim.run(until=1.0)
    running = sum(host.container_count for host in hosts.values())
    return {
        "shard_index": shard_index,
        "records": records,
        "running_containers": running,
    }


def merge_shards(payloads: list[dict], seed: int = 0,
                 params: dict | None = None) -> ExperimentResult:
    """Deterministic merge: byte-identical for any shard count.

    Records are re-keyed by device index (the partition order is
    discarded), coverage is verified to be exactly one record per
    device, and the result carries a content digest over the merged
    records so CI can assert ``--shards N`` == ``--shards 1`` with a
    plain diff.
    """
    params = params or {}
    devices = int(params.get("devices", DEFAULT_DEVICES))
    records = sorted(
        (record for payload in payloads for record in payload["records"]),
        key=lambda record: record[0],
    )
    indices = [record[0] for record in records]
    if indices != list(range(devices)):
        raise ValueError(
            f"shards did not cover the population exactly once: "
            f"{len(indices)} records for {devices} devices"
        )
    digest = hashlib.sha256(
        json.dumps(records, sort_keys=True).encode()
    ).hexdigest()

    per_ap: dict[str, int] = {}
    containers = 0
    for record in records:
        per_ap[record[1]] = per_ap.get(record[1], 0) + 1
        containers += sum(1 for _, _, reused in record[2] if not reused)
    running = sum(payload["running_containers"] for payload in payloads)

    rows = [
        (ap, count, f"{100 * count / devices:.1f}%")
        for ap, count in sorted(per_ap.items())
    ]
    metrics: dict[str, float] = {
        "devices": float(devices),
        "containers_admitted": float(containers),
        "containers_running": float(running),
        "mean_expected_rtt": sum(r[3] for r in records) / devices,
        "mean_stretch": sum(r[4] for r in records) / devices,
    }
    return ExperimentResult(
        experiment_id="E18",
        title="§4 control-plane attach: sharded population, merged",
        columns=["attachment point", "devices", "share"],
        rows=rows,
        metrics=metrics,
        notes=[
            f"placement digest {digest}",
            "every output-affecting quantity is keyed per device "
            "(derive_seed(root, 'device:i')), never per shard, so this "
            "merged result is byte-identical for any --shards N",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
