"""Experiment modules, one per figure/claim (see DESIGN.md §3).

Each exposes ``run(seed=0, **params) -> ExperimentResult`` and is
runnable as ``python -m repro.experiments.<module>``.
"""

from repro.experiments import (  # noqa: F401 (re-exported modules)
    ablations,
    exp1_scalability,
    exp2_deployment_modes,
    exp3_split_tcp,
    exp4_video_policy,
    exp5_pii,
    exp6_tls,
    exp7_dns,
    exp8_prefetch,
    exp9_auditing,
    exp10_negotiation,
    exp11_harm,
    exp12_setup_time,
    exp13_mobility,
    exp14_chaos,
    exp15_migration,
    exp16_datapath,
    exp17_observability,
    exp18_control_plane,
    exp19_orchestration,
    exp20_selfhealing,
    exp21_megaflow,
    exp22_closed_loop,
    exp23_population,
    fig1a,
    fig1b,
    fig1c,
)
from repro.experiments.harness import ExperimentResult

ALL_EXPERIMENTS = {
    "F1A": fig1a.run,
    "F1B": fig1b.run,
    "F1C": fig1c.run,
    "E1": exp1_scalability.run,
    "E2": exp2_deployment_modes.run,
    "E3": exp3_split_tcp.run,
    "E4": exp4_video_policy.run,
    "E5": exp5_pii.run,
    "E6": exp6_tls.run,
    "E7": exp7_dns.run,
    "E8": exp8_prefetch.run,
    "E9": exp9_auditing.run,
    "E10": exp10_negotiation.run,
    "E11": exp11_harm.run,
    "E12": exp12_setup_time.run,
    "E13": exp13_mobility.run,
    "E14": exp14_chaos.run,
    "E15": exp15_migration.run,
    "ABL": ablations.run,
    # E16/E17 are registered last on purpose: they allocate simulator
    # objects with global id counters (packets, rules), and running them
    # after the seed experiments keeps E1-E15 id sequences — and
    # digests — stable.
    "E16": exp16_datapath.run,
    "E17": exp17_observability.run,
    "E18": exp18_control_plane.run,
    "E19": exp19_orchestration.run,
    "E20": exp20_selfhealing.run,
    "E21": exp21_megaflow.run,
    "E22": exp22_closed_loop.run,
    "E23": exp23_population.run,
}

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult"]
