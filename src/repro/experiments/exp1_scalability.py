"""E1 — §3.3 "Scalability and overhead".

"The PVN abstraction will be effective only if it can scale to serve
potentially large numbers of subscribers with overhead that is
negligible relative to non-PVN connections.  We argue that this is
feasible, e.g., recent work has shown that containers can be
instantiated in 30 milliseconds, add only 45 microseconds of delay,
and consume only 6 MB of memory."

Sweep the subscriber count, deploying one canonical 6-module PVN per
subscriber onto the provider's NFV tier, and report: instantiation
latency (constant — containers start in parallel), aggregate memory,
per-packet added delay, the added delay as a fraction of a typical
wireless RTT (the "negligible overhead" claim), and where admission
starts rejecting.
"""

from __future__ import annotations

from repro.core.deployment.embedding import estimate_max_subscribers
from repro.core.pvnc import compile_pvnc
from repro.core.session import default_pvnc
from repro.experiments.harness import ExperimentResult, main
from repro.nfv.container import Container, ContainerSpec
from repro.nfv.hypervisor import HostCapacity, NfvHost
from repro.nfv.middlebox import Middlebox

#: A typical wireless access RTT the overhead is judged against.
TYPICAL_RTT = 0.030


def run(
    seed: int = 0,
    subscriber_counts: tuple[int, ...] = (1, 10, 100, 500, 1000, 2000),
    n_hosts: int = 2,
    host_memory_bytes: int = 8_000_000_000,
    host_cpu_cores: float = 400.0,
) -> ExperimentResult:
    compiled = compile_pvnc(default_pvnc())
    spec = ContainerSpec(cpu_share=0.05)
    per_user_containers = compiled.estimate.containers
    per_user_memory = per_user_containers * spec.memory_bytes

    rows = []
    metrics: dict[str, float] = {
        "instantiation_ms": spec.instantiation_time * 1e3,
        "per_packet_delay_us": compiled.per_packet_delay * 1e6,
        "per_user_memory_mb": per_user_memory / 1e6,
        "overhead_fraction_of_rtt": compiled.per_packet_delay / TYPICAL_RTT,
    }
    for count in subscriber_counts:
        hosts = [
            NfvHost(f"nfv{i}", HostCapacity(host_memory_bytes, host_cpu_cores))
            for i in range(n_hosts)
        ]
        admitted = 0
        for user_index in range(count):
            containers = [
                Container(Middlebox(f"u{user_index}.m{m}"), spec=spec,
                          owner=f"user{user_index}")
                for m in range(per_user_containers)
            ]
            target = hosts[user_index % n_hosts]
            need_memory = sum(c.spec.memory_bytes for c in containers)
            need_cpu = sum(c.spec.cpu_share for c in containers)
            fits = (
                target.memory_in_use + need_memory
                <= target.capacity.memory_bytes
                and target.cpu_in_use + need_cpu <= target.capacity.cpu_cores
            )
            if fits:
                for container in containers:
                    target.launch(container, now=0.0)
                admitted += 1
        memory_total = sum(h.memory_in_use for h in hosts)
        rows.append((
            count,
            admitted,
            count - admitted,
            spec.instantiation_time * 1e3,
            compiled.per_packet_delay * 1e6,
            memory_total / 1e9,
            f"{100 * compiled.per_packet_delay / TYPICAL_RTT:.2f}%",
        ))
        metrics[f"admitted_at_{count}"] = float(admitted)

    fresh_hosts = {
        f"nfv{i}": NfvHost(f"nfv{i}",
                           HostCapacity(host_memory_bytes, host_cpu_cores))
        for i in range(n_hosts)
    }
    metrics["max_subscribers"] = float(estimate_max_subscribers(
        fresh_hosts,
        per_user_memory=per_user_memory,
        per_user_cpu=per_user_containers * spec.cpu_share,
    ))
    return ExperimentResult(
        experiment_id="E1",
        title="§3.3 scalability: per-subscriber PVNs on the NFV tier",
        columns=["subscribers", "admitted", "rejected",
                 "instantiation (ms)", "added delay (us)",
                 "memory (GB)", "delay vs 30ms RTT"],
        rows=rows,
        metrics=metrics,
        notes=[
            "containers instantiate in parallel: setup latency stays at "
            "the 30ms the paper cites regardless of subscriber count",
            "added per-packet delay is (pipeline length+1) x 45us — well "
            "under 1% of a typical wireless RTT (the 'negligible' claim)",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    main(run)
