"""Exception hierarchy for the PVN reproduction.

Every package raises subclasses of :class:`ReproError` so callers can
catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class SchedulingInPastError(SimulationError):
    """An event was scheduled before the current simulation time."""


class ProtocolError(ReproError):
    """A protocol message was malformed or arrived in the wrong state."""


class AddressError(ProtocolError):
    """An IPv4/MAC address or subnet string could not be parsed."""


class ConfigurationError(ReproError):
    """A PVNC or component configuration is invalid."""


class CompilationError(ConfigurationError):
    """A PVNC could not be compiled to flow rules and placements."""


class PolicyConflictError(ConfigurationError):
    """Two policies in a PVNC conflict and cannot both be installed."""


class NegotiationError(ReproError):
    """Discovery/negotiation failed to produce an acceptable offer."""


class DeploymentError(ReproError):
    """The provider could not install a PVN deployment."""


class AdmissionError(DeploymentError):
    """The provider lacks resources to admit the requested PVN."""


class EmbeddingError(DeploymentError):
    """No feasible embedding of the virtual topology exists."""


class IsolationError(DeploymentError):
    """A deployment would (or did) violate per-user isolation."""


class MigrationError(DeploymentError):
    """A stateful migration transaction was misused or interrupted."""


class AttestationError(ReproError):
    """An attestation was missing, malformed, or failed verification."""


class AuditError(ReproError):
    """An audit measurement could not be carried out."""


class TunnelError(ReproError):
    """Tunnel establishment or use failed."""


class StoreError(ReproError):
    """A PVN Store operation failed (unknown module, bad signature...)."""


class ModuleSignatureError(StoreError):
    """A store module's signature did not verify."""


class SandboxViolation(ReproError):
    """A middlebox attempted an operation its sandbox forbids."""


class CapacityError(ReproError):
    """An NFV host has insufficient capacity for a container."""
