"""Statistics and table rendering for experiment reports."""

from repro.analysis.stats import Summary, fraction, speedup, summarize
from repro.analysis.tables import render_table

__all__ = ["Summary", "fraction", "render_table", "speedup", "summarize"]
