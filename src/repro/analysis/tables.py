"""ASCII table rendering for experiment output.

Every experiment prints its results as an aligned table matching the
rows recorded in EXPERIMENTS.md, so `python -m repro.experiments.<id>`
output can be diffed against the documented values.
"""

from __future__ import annotations

from typing import Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    header = [str(c) for c in columns]
    body = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in header]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = []
    if title:
        out.append(title)
    out.append(line(header))
    out.append(rule)
    out.extend(line(row) for row in body)
    return "\n".join(out)
