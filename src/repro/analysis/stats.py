"""Summary statistics for experiment reporting."""

from __future__ import annotations

import dataclasses
import math
import statistics
from typing import Iterable

from repro.errors import ReproError


@dataclasses.dataclass(frozen=True)
class Summary:
    """Mean with a normal-approximation confidence interval."""

    count: int
    mean: float
    median: float
    stdev: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.mean:.4g} [{self.ci_low:.4g}, {self.ci_high:.4g}]"


def summarize(samples: Iterable[float], confidence: float = 0.95) -> Summary:
    """Mean/median/stdev plus a CI (normal approximation; exact enough
    for the tens-of-samples experiment scale)."""
    data = list(samples)
    if not data:
        raise ReproError("cannot summarize an empty sample")
    mean = statistics.fmean(data)
    median = statistics.median(data)
    stdev = statistics.stdev(data) if len(data) > 1 else 0.0
    z = {0.90: 1.645, 0.95: 1.96, 0.99: 2.576}.get(round(confidence, 2), 1.96)
    half_width = z * stdev / math.sqrt(len(data)) if len(data) > 1 else 0.0
    return Summary(
        count=len(data), mean=mean, median=median, stdev=stdev,
        ci_low=mean - half_width, ci_high=mean + half_width,
    )


def speedup(baseline: float, treatment: float) -> float:
    """How many times faster ``treatment`` is than ``baseline``.

    > 1 means the treatment wins; < 1 means it loses.
    """
    if treatment <= 0:
        raise ReproError("treatment duration must be positive")
    return baseline / treatment


def fraction(numerator: int, denominator: int) -> float:
    """A safe ratio (0.0 when the denominator is zero)."""
    return numerator / denominator if denominator else 0.0
