"""Synthetic traffic generation.

Produces labelled packet streams in the mixes the paper's motivation
describes: mobile traffic where browsers are a minority (§2.2 cites
"as little as 10%"), video dominates bytes, and a long tail of app,
DNS, and IoT traffic fills out the flow count.
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np

from repro.netproto.http import (
    CONTENT_IMAGE,
    CONTENT_TEXT,
    CONTENT_VIDEO,
    HttpRequest,
    HttpResponse,
)
from repro.netsim.packet import Packet

#: Default traffic mix by flow count (Xu et al. [43]-flavoured).
DEFAULT_MIX = (
    ("web", 0.25),
    ("video", 0.15),
    ("app_api", 0.35),
    ("dns", 0.15),
    ("iot", 0.10),
)

_flow_ids = itertools.count(1)


@dataclasses.dataclass(frozen=True)
class FlowSpec:
    """One generated flow."""

    flow_id: int
    kind: str
    size_bytes: int
    dst: str
    dst_port: int
    https: bool


def synth_flows(
    rng: np.random.Generator,
    n_flows: int = 100,
    mix: tuple[tuple[str, float], ...] = DEFAULT_MIX,
    owner: str = "alice",
) -> list[FlowSpec]:
    """Draw flows from the mix with kind-appropriate size distributions."""
    kinds = [kind for kind, _ in mix]
    weights = np.array([w for _, w in mix], dtype=float)
    weights /= weights.sum()
    flows: list[FlowSpec] = []
    for _ in range(n_flows):
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        flows.append(_flow_of_kind(kind, rng))
    return flows


def _flow_of_kind(kind: str, rng: np.random.Generator) -> FlowSpec:
    flow_id = next(_flow_ids)
    if kind == "web":
        size = int(rng.lognormal(np.log(400_000), 0.8))
        return FlowSpec(flow_id, kind, size, "198.51.100.20", 80,
                        https=bool(rng.random() < 0.6))
    if kind == "video":
        size = int(rng.lognormal(np.log(20_000_000), 0.5))
        return FlowSpec(flow_id, kind, size, "198.51.100.30", 443,
                        https=True)
    if kind == "app_api":
        size = int(rng.lognormal(np.log(8_000), 1.0))
        return FlowSpec(flow_id, kind, size, "198.51.100.40", 443,
                        https=bool(rng.random() < 0.8))
    if kind == "dns":
        return FlowSpec(flow_id, kind, 120, "198.51.100.53", 53, https=False)
    # iot
    size = int(rng.lognormal(np.log(2_000), 0.7))
    return FlowSpec(flow_id, kind, size, "198.51.100.60", 8883,
                    https=False)


def flow_to_packet(flow: FlowSpec, owner: str = "alice",
                   src: str = "10.10.0.2") -> Packet:
    """A representative packet for datapath-level experiments."""
    payload = None
    if flow.kind == "web":
        payload = HttpRequest("GET", "news.example.com", "/story",
                              https=flow.https)
    elif flow.kind == "video":
        payload = HttpRequest("GET", "video.example.com", "/clip.mp4",
                              https=flow.https)
    elif flow.kind == "app_api":
        payload = HttpRequest("POST", "api.example.com", "/sync",
                              body=b"state=ok", https=flow.https)
    return Packet(
        src=src, dst=flow.dst, protocol="udp" if flow.kind == "dns" else "tcp",
        src_port=40_000 + flow.flow_id % 20_000, dst_port=flow.dst_port,
        size=min(1500, flow.size_bytes), payload=payload,
        flow_id=flow.flow_id, owner=owner,
    )


def synth_responses(
    rng: np.random.Generator, n: int = 50, video_fraction: float = 0.3
) -> list[Packet]:
    """Response-direction packets (for transcoder/compressor benches)."""
    packets = []
    for index in range(n):
        if rng.random() < video_fraction:
            body = bytes(rng.integers(0, 256, size=int(
                rng.integers(50_000, 200_000)), dtype=np.uint8))
            payload = HttpResponse(body=body, content_type=CONTENT_VIDEO)
        elif rng.random() < 0.5:
            words = rng.choice(
                [b"the", b"quick", b"brown", b"fox", b"jumps"], size=2000
            )
            payload = HttpResponse(body=b" ".join(words),
                                   content_type=CONTENT_TEXT)
        else:
            body = bytes(rng.integers(0, 256, size=30_000, dtype=np.uint8))
            payload = HttpResponse(body=body, content_type=CONTENT_IMAGE)
        packets.append(Packet(
            src="198.51.100.20", dst="10.10.0.2", src_port=80,
            dst_port=40_000 + index, size=1500, payload=payload,
            owner="alice",
        ))
    return packets


def bytes_by_kind(flows: list[FlowSpec]) -> dict[str, int]:
    """Aggregate byte counts per kind (mix sanity checks and reports)."""
    totals: dict[str, int] = {}
    for flow in flows:
        totals[flow.kind] = totals.get(flow.kind, 0) + flow.size_bytes
    return totals
