"""App behaviour models.

The paper's security motivation (§2.1) is that *apps themselves* are
part of the problem: "many apps and browsers do not properly check
certificate validity, if at all".  These models generate the
client-side behaviour the PVN protects:

* :class:`BrowserApp` — fetches pages, validates certificates properly.
* :class:`CarelessApp` — skips certificate validation (the [23] case).
* :class:`LeakyApp` — posts telemetry embedding user PII.
* :class:`IotSensor` — periodically uploads sensor readings without
  any transport security.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.netproto.http import HttpRequest
from repro.netproto.tls import TlsHandshake, TlsServer, TrustStore
from repro.netsim.packet import Packet
from repro.workloads.pii import UserProfile


@dataclasses.dataclass
class AppVerdict:
    """What the app itself decided about a connection."""

    proceeded: bool
    reason: str = ""


class BrowserApp:
    """Validates chains against the device trust store before use."""

    def __init__(self, trust_store: TrustStore, owner: str = "alice") -> None:
        self.trust_store = trust_store
        self.owner = owner
        self.connections_refused = 0

    def connect(self, handshake: TlsHandshake, now: float) -> AppVerdict:
        result = self.trust_store.validate_chain(
            list(handshake.presented_chain), handshake.sni, now=now
        )
        if not result.valid:
            self.connections_refused += 1
            return AppVerdict(False, f"app refused: {result.failures}")
        return AppVerdict(True, "validated")


class CarelessApp:
    """Accepts any certificate (the widespread [23] failure mode)."""

    def __init__(self, owner: str = "alice") -> None:
        self.owner = owner

    def connect(self, handshake: TlsHandshake, now: float) -> AppVerdict:
        return AppVerdict(True, "app skipped validation")


class LeakyApp:
    """Posts analytics bodies embedding the user's PII."""

    def __init__(self, user: UserProfile,
                 analytics_host: str = "analytics.example") -> None:
        self.user = user
        self.analytics_host = analytics_host

    def telemetry_packet(self, rng: np.random.Generator,
                         src: str = "10.10.0.2") -> Packet:
        pii = self.user.pii_values()
        leak_type = sorted(pii)[int(rng.integers(len(pii)))]
        body = b"event=open&" + pii[leak_type]
        request = HttpRequest("POST", self.analytics_host, "/collect",
                              body=body)
        packet = Packet(
            src=src, dst="203.0.113.80", dst_port=80,
            owner=self.user.user_id, payload=request,
            size=request.size_bytes,
        )
        packet.metadata["ground_truth_leak"] = leak_type
        return packet


class IotSensor:
    """A camera/sensor uploading readings in the clear (§2.3)."""

    def __init__(self, sensor_id: str, owner: str,
                 upload_interval: float = 30.0) -> None:
        self.sensor_id = sensor_id
        self.owner = owner
        self.upload_interval = upload_interval
        self.uploads = 0

    def reading_packet(self, rng: np.random.Generator,
                       src: str = "10.10.0.9") -> Packet:
        self.uploads += 1
        reading = (f"sensor={self.sensor_id}&frame={self.uploads}"
                   f"&lat={rng.uniform(-90, 90):.4f}"
                   f"&lon={rng.uniform(-180, 180):.4f}").encode()
        request = HttpRequest("POST", "iot-hub.example", "/ingest",
                              body=reading)
        return Packet(
            src=src, dst="203.0.113.90", dst_port=80, owner=self.owner,
            payload=request, size=request.size_bytes,
        )


def handshake_for(server: TlsServer, sni: str = "") -> TlsHandshake:
    """Convenience wrapper: the handshake a client sees from ``server``."""
    return server.respond(sni or server.hostname)
