"""On-device cost model: battery and CPU (§3.2 "Why not on devices?").

"Network functionality implemented on mobile devices can consume
scarce resources such as battery life, CPU, memory, and wireless
bandwidth, and lead to worse network performance than doing nothing at
all."

The model uses radio/CPU energy constants in the range measured by the
smartphone-energy literature (Huang et al., MobiSys'12-era numbers),
parameterised so the benches can sweep them:

* WiFi radio: ~0.1 µJ/byte transferred (amortised, active state)
* Cellular radio: ~0.6 µJ/byte plus tail-time overhead
* CPU: ~1 J per second of active processing
* Deep packet inspection on-device: ~2 µs CPU per payload byte
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError

RADIO_WIFI = "wifi"
RADIO_CELL = "cell"


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Per-device energy constants."""

    battery_joules: float = 4.2 * 3600 * 3.0     # ~3 Ah at 4.2 V ≈ 45 kJ
    wifi_joules_per_byte: float = 0.1e-6
    cell_joules_per_byte: float = 0.6e-6
    cell_tail_joules_per_wake: float = 0.5
    cpu_joules_per_second: float = 1.0
    dpi_cpu_seconds_per_byte: float = 2e-6

    def __post_init__(self) -> None:
        if self.battery_joules <= 0:
            raise ConfigurationError("battery capacity must be positive")

    def radio_energy(self, nbytes: int, radio: str = RADIO_WIFI,
                     wakes: int = 0) -> float:
        """Joules to move ``nbytes`` over the given radio."""
        if radio == RADIO_WIFI:
            return nbytes * self.wifi_joules_per_byte
        if radio == RADIO_CELL:
            return (nbytes * self.cell_joules_per_byte
                    + wakes * self.cell_tail_joules_per_wake)
        raise ConfigurationError(f"unknown radio {radio!r}")

    def inspection_energy(self, nbytes: int) -> float:
        """Joules of CPU to deep-inspect ``nbytes`` on the device."""
        return (nbytes * self.dpi_cpu_seconds_per_byte
                * self.cpu_joules_per_second)

    def battery_fraction(self, joules: float) -> float:
        """Fraction of a full battery consumed by ``joules``."""
        return joules / self.battery_joules


@dataclasses.dataclass
class DeviceCostReport:
    """Accumulated device-side costs for one scenario."""

    radio_bytes: int = 0
    inspected_bytes: int = 0
    radio_joules: float = 0.0
    cpu_joules: float = 0.0

    @property
    def total_joules(self) -> float:
        return self.radio_joules + self.cpu_joules


def on_device_enforcement_cost(
    traffic_bytes: int,
    model: EnergyModel | None = None,
    radio: str = RADIO_WIFI,
    inspect_fraction: float = 1.0,
) -> DeviceCostReport:
    """Cost of running PVN-equivalent inspection on the device itself.

    The device both moves the traffic *and* burns CPU inspecting
    ``inspect_fraction`` of it.
    """
    model = model or EnergyModel()
    if not 0.0 <= inspect_fraction <= 1.0:
        raise ConfigurationError("inspect_fraction must be in [0,1]")
    inspected = int(traffic_bytes * inspect_fraction)
    return DeviceCostReport(
        radio_bytes=traffic_bytes,
        inspected_bytes=inspected,
        radio_joules=model.radio_energy(traffic_bytes, radio),
        cpu_joules=model.inspection_energy(inspected),
    )


def in_network_enforcement_cost(
    traffic_bytes: int,
    model: EnergyModel | None = None,
    radio: str = RADIO_WIFI,
) -> DeviceCostReport:
    """Device-side cost when the PVN does the inspection in-network:
    the device only pays to move its own traffic."""
    model = model or EnergyModel()
    return DeviceCostReport(
        radio_bytes=traffic_bytes,
        inspected_bytes=0,
        radio_joules=model.radio_energy(traffic_bytes, radio),
        cpu_joules=0.0,
    )


def cloud_tunnel_enforcement_cost(
    traffic_bytes: int,
    model: EnergyModel | None = None,
    radio: str = RADIO_WIFI,
    encap_overhead: float = 0.05,
) -> DeviceCostReport:
    """Device-side cost of the VPN-to-cloud alternative: the same
    traffic plus tunnel encapsulation overhead crosses the radio."""
    model = model or EnergyModel()
    if encap_overhead < 0:
        raise ConfigurationError("encap overhead must be >= 0")
    moved = int(traffic_bytes * (1.0 + encap_overhead))
    return DeviceCostReport(
        radio_bytes=moved,
        inspected_bytes=0,
        radio_joules=model.radio_energy(moved, radio),
        cpu_joules=0.0,
    )
