"""Adversary scenario kit.

Bundles the attack machinery scattered through the substrates into the
named adversaries the experiments run against:

* :func:`mitm_scenario` — a network-position attacker intercepting TLS;
* :func:`dns_forgery_scenario` — a resolver forging targeted mappings;
* :func:`shaping_isp` / :func:`injecting_isp` / :func:`lazy_isp` /
  :func:`inflating_isp` — dishonest-provider profiles for E9;
* :class:`Eavesdropper` — a passive on-path observer recording payload
  bytes (ground truth for what actually leaked).
"""

from __future__ import annotations

import dataclasses

from repro.core.provider import DishonestyProfile
from repro.netproto.dns import ForgingResolver, Zone
from repro.netproto.tls import CertificateAuthority, MitmInterceptor
from repro.netsim.packet import Packet


@dataclasses.dataclass
class MitmScenario:
    """An interceptor plus the CA it forges with."""

    interceptor: MitmInterceptor
    rogue_ca: CertificateAuthority


def mitm_scenario(now: float, name: str = "mitm-box") -> MitmScenario:
    """A §2.1-style unauthorized TLS interceptor."""
    rogue_ca = CertificateAuthority("RogueCA", key=b"rogue:" + name.encode())
    return MitmScenario(
        interceptor=MitmInterceptor(name, rogue_ca, now=now),
        rogue_ca=rogue_ca,
    )


def dns_forgery_scenario(
    zones: list[Zone],
    targets: dict[str, str],
    name: str = "evil-resolver",
) -> ForgingResolver:
    """An ISP resolver forging mappings for ``targets``."""
    return ForgingResolver(name, zones, forged=dict(targets))


# -- dishonest-provider profiles (E9) ----------------------------------------

def shaping_isp(video_bps: float = 1.5e6) -> DishonestyProfile:
    """Covert Binge On: throttles video without disclosure."""
    return DishonestyProfile(shape_video_to_bps=video_bps)


def injecting_isp() -> DishonestyProfile:
    """Injects content into HTTP bodies (ad injection, tracking headers)."""
    return DishonestyProfile(modify_content=True)


def lazy_isp(skipped: frozenset[str] = frozenset({"pii_detector"})
             ) -> DishonestyProfile:
    """Charges for middleboxes it never actually runs."""
    return DishonestyProfile(skip_services=skipped)


def inflating_isp(extra_rtt: float = 0.120) -> DishonestyProfile:
    """Routes PVN traffic on a grossly inflated path."""
    return DishonestyProfile(inflate_path_by=extra_rtt)


def config_tampering_isp() -> DishonestyProfile:
    """Installs a different configuration than requested (cannot attest)."""
    return DishonestyProfile(tamper_config=True)


ALL_DISHONEST_PROFILES: tuple[tuple[str, DishonestyProfile], ...] = (
    ("shaping", shaping_isp()),
    ("injecting", injecting_isp()),
    ("lazy", lazy_isp()),
    ("inflating", inflating_isp()),
    ("tampering", config_tampering_isp()),
)


class Eavesdropper:
    """A passive observer on some network segment.

    Records every payload byte it sees; experiments ask it whether a
    given secret ever crossed its vantage point.
    """

    def __init__(self, name: str = "eavesdropper") -> None:
        self.name = name
        self.observed: list[bytes] = []

    def observe(self, packet: Packet) -> None:
        payload = packet.payload
        if payload is None:
            return
        if isinstance(payload, bytes):
            self.observed.append(payload)
            return
        body = getattr(payload, "body", None)
        if isinstance(body, bytes):
            self.observed.append(body)
        path = getattr(payload, "path", None)
        if isinstance(path, str):
            self.observed.append(path.encode())

    def saw(self, secret: bytes) -> bool:
        return any(secret in blob for blob in self.observed)

    @property
    def bytes_observed(self) -> int:
        return sum(len(blob) for blob in self.observed)
