"""Open-loop Poisson population workloads for the hybrid engine.

Earlier experiments drove churn with *scripted batches*: a Python loop
deciding, per device, when to attach and what to send.  At 10^6
devices that loop IS the bottleneck, and its draws depend on visit
order — poison for shard determinism.  This module instead *compiles*
the whole population's event schedule up front with vectorized keyed
randomness:

* Every draw is a pure function of ``(seed, tag, device, k)`` via a
  splitmix64 finalizer over ``uint64`` arrays — no per-device
  generator objects, no order dependence.  The same device produces
  the same attach time, flow arrivals, migrations, and flow contents
  no matter which shard simulates it or which mode replays it; that
  is the invariant behind both fluid/packet digest parity and the
  shards-1 == shards-2 merge gate.
* Arrival processes are open-loop Poisson: per-device exponential
  inter-arrival chains of bounded depth ``K`` (events past the
  truncation or the horizon are dropped — the tail probability is
  negligible at the configured depths and identical everywhere).
* Schedules are flattened, bucketed by engine tick, and sorted by
  ``(tick, device, k)``; :meth:`PopulationWorkload.tick_events` is a
  pair of ``searchsorted`` slices per tick.

Flow *contents* (size, kind, PII leaks, cross-shard destination) are
derived lazily per flow from the same keyed hash, so the 10^6-device
sweep never materializes specs for flows that a shard doesn't own.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.netsim.fluid import PII_TYPES, HybridFlow
from repro.netsim.randomness import derive_seed

_MASK = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15
_WEYL = 0xD1B54A32D192ED03

#: Flow mix: (kind, weight, mean packets, device-rate cap multiplier).
#: Sizes are MTU-sized packets: api ~30KB exchanges, web ~300KB pages,
#: video ~3.75MB segments, iot ~9KB telemetry bursts.
FLOW_KINDS = (
    ("api", 0.40, 20, 1.0),
    ("web", 0.30, 200, 1.0),
    ("video", 0.15, 2500, 1.0),
    ("iot", 0.15, 6, 0.032),
)

#: Hard per-flow size cap as a multiple of the kind's mean (keeps the
#: packet-mode baseline's event count bounded).
_SIZE_CAP_MULTIPLE = 8


def _mix(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a ``uint64`` array."""
    z = (x + np.uint64(_GOLDEN))
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def _mix_int(x: int) -> int:
    """Scalar splitmix64 finalizer (python ints, mod 2^64)."""
    z = (x + _GOLDEN) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return z ^ (z >> 31)


def _u01(bits: np.ndarray) -> np.ndarray:
    """Map 64-bit words to uniform floats in [0, 1)."""
    return (bits >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


@dataclasses.dataclass(frozen=True)
class PopulationSpec:
    """Shape of the simulated population (rates are per device)."""

    devices: int = 1000
    cells: int = 16
    horizon: float = 30.0
    attach_ramp: float = 5.0          # attach times ~ U[0, ramp)
    flows_per_device_s: float = 0.05  # Poisson flow arrivals after attach
    detach_rate: float = 0.0          # exp(rate) lifetime after attach
    migrate_rate: float = 0.004       # Poisson cell migrations
    audit_rate: float = 0.002         # Poisson auditor probes
    cross_fraction: float = 0.05      # flows targeting another device
    leak_probability: float = 0.08    # flows that emit PII packets
    https_fraction: float = 0.6
    third_party_fraction: float = 0.3
    device_rate_bps: float = 2_000_000.0
    max_chain: int = 0                # 0 = auto Poisson truncation depth

    def chain_depth(self, rate: float) -> int:
        """Truncation depth K for a per-device Poisson chain."""
        if self.max_chain:
            return self.max_chain
        lam = rate * self.horizon
        return max(2, int(math.ceil(lam * 2.5 + 3.0)))


@dataclasses.dataclass
class TickBatch:
    """One tick's population events, in the engine's apply order."""

    attach_devices: np.ndarray
    attach_cells: np.ndarray
    flows: list
    migrates: list[tuple[int, int, int]]
    probes: list[tuple[int, int]]
    detaches: list[tuple[int, int]]


class PopulationWorkload:
    """Compiled per-tick event schedule for one shard of a population.

    ``shard_index``/``shard_count`` partition devices by
    ``device % shard_count``; every schedule and every flow attribute
    is keyed per device, so repartitioning never changes what any
    device does.
    """

    def __init__(self, spec: PopulationSpec, seed: int, tick: float,
                 shard_index: int = 0, shard_count: int = 1) -> None:
        if not 0 <= shard_index < shard_count:
            raise ValueError("shard_index must be in [0, shard_count)")
        self.spec = spec
        self.seed = int(seed)
        self.tick = float(tick)
        self.shard_index = int(shard_index)
        self.shard_count = int(shard_count)
        self.ticks_total = max(1, int(round(spec.horizon / tick)))
        self._flow_base = derive_seed(self.seed, "pop:flow-attrs")
        self._compile()

    # -- keyed randomness --------------------------------------------------

    def _bits(self, tag: str, idx: np.ndarray) -> np.ndarray:
        base = np.uint64(derive_seed(self.seed, f"pop:{tag}"))
        return _mix(idx.astype(np.uint64) * np.uint64(_WEYL) + base)

    def _uniform(self, tag: str, idx: np.ndarray) -> np.ndarray:
        return _u01(self._bits(tag, idx))

    def _exponential(self, tag: str, idx: np.ndarray,
                     rate: float) -> np.ndarray:
        return -np.log1p(-self._uniform(tag, idx)) / rate

    # -- schedule compilation ----------------------------------------------

    def _chain(self, tag: str, start: np.ndarray, rate: float,
               depth: int) -> np.ndarray:
        """Per-device Poisson arrival chains from ``start`` (N x K)."""
        n = len(start)
        gaps = np.empty((n, depth), dtype=np.float64)
        idx = np.arange(n, dtype=np.uint64)
        for k in range(depth):
            gaps[:, k] = self._exponential(f"{tag}:{k}", idx, rate)
        return start[:, None] + np.cumsum(gaps, axis=1)

    def _compile(self) -> None:
        spec = self.spec
        n = spec.devices
        idx = np.arange(n, dtype=np.uint64)
        mine = (np.arange(n, dtype=np.int64) % self.shard_count
                == self.shard_index)

        attach_t = self._uniform("attach", idx) * spec.attach_ramp
        self.cells = (self._bits("cell", idx)
                      % np.uint64(max(1, spec.cells))).astype(np.int64)
        if spec.detach_rate > 0:
            detach_t = attach_t + self._exponential(
                "detach", idx, spec.detach_rate)
        else:
            detach_t = np.full(n, np.inf)
        self.attach_t = attach_t
        self.detach_t = detach_t

        live = attach_t < spec.horizon
        self._attaches = self._bucket_events(
            attach_t, np.zeros(n, dtype=np.int64), live & mine)
        self._detaches = self._bucket_events(
            detach_t, np.zeros(n, dtype=np.int64),
            (detach_t < spec.horizon) & mine)

        self._flows = self._bucket_chain(
            "flows", attach_t, detach_t, spec.flows_per_device_s, mine)
        self._migrates = self._bucket_chain(
            "migrates", attach_t, detach_t, spec.migrate_rate, mine)
        self._probes = self._bucket_chain(
            "probes", attach_t, detach_t, spec.audit_rate, mine)
        self._compile_flow_attrs()

    def _bucket_chain(self, tag, attach_t, detach_t, rate, mine):
        if rate <= 0:
            empty = np.zeros(0, dtype=np.int64)
            return (empty, empty.copy(), empty.copy())
        depth = self.spec.chain_depth(rate)
        times = self._chain(tag, attach_t, rate, depth)
        valid = ((times < self.spec.horizon)
                 & (times < detach_t[:, None]) & mine[:, None])
        devices, ks = np.nonzero(valid)
        return self._sort_bucketed(times[valid], devices.astype(np.int64),
                                   ks.astype(np.int64))

    def _bucket_events(self, times, ks, valid):
        devices = np.nonzero(valid)[0].astype(np.int64)
        return self._sort_bucketed(times[valid], devices,
                                   ks[valid].astype(np.int64))

    def _sort_bucketed(self, times, devices, ks):
        ticks = np.minimum((times / self.tick).astype(np.int64),
                           self.ticks_total - 1)
        order = np.lexsort((ks, devices, ticks))
        return (ticks[order], devices[order], ks[order])

    @staticmethod
    def _slice(bucketed, index):
        ticks, devices, ks = bucketed
        lo, hi = np.searchsorted(ticks, [index, index + 1])
        return devices[lo:hi], ks[lo:hi]

    # -- per-flow attributes (vectorized, keyed) ---------------------------

    def _compile_flow_attrs(self) -> None:
        """Bulk-derive every scheduled flow's attributes as arrays.

        The draw schedule is FIXED (seven keyed draws per flow, in
        order: kind, size, https, third-party, leak gate, cross gate,
        destination) so the whole table vectorizes; the variable-length
        leak details continue the same hash chain lazily, only for the
        (rare) leaky flows.  :meth:`flow_spec` is the scalar reference
        for the identical derivation — the tests assert equality.
        """
        spec = self.spec
        _, devices, ks = self._flows
        n = len(devices)
        key = (devices.astype(np.uint64) * np.uint64(_GOLDEN)
               + ks.astype(np.uint64) * np.uint64(_WEYL))
        h = _mix(key ^ np.uint64(self._flow_base))
        draws = []
        for _ in range(7):
            h = _mix(h)
            draws.append(h)
        us = [_u01(d) for d in draws[:6]]
        weights = np.cumsum([w for _, w, _, _ in FLOW_KINDS])
        means = np.array([m for _, _, m, _ in FLOW_KINDS], dtype=np.int64)
        mults = np.array([m for _, _, _, m in FLOW_KINDS])
        kind_idx = np.minimum(
            np.searchsorted(weights, us[0], side="right"),
            len(FLOW_KINDS) - 1)
        mean = means[kind_idx]
        n_packets = 1 + (mean * -np.log1p(-us[1])).astype(np.int64)
        self._n_packets = np.minimum(n_packets,
                                     mean * _SIZE_CAP_MULTIPLE + 1)
        self._kind_idx = kind_idx
        self._cap = spec.device_rate_bps * mults[kind_idx]
        self._https = us[2] < spec.https_fraction
        self._third_party = us[3] < spec.third_party_fraction
        self._leaky = us[4] < spec.leak_probability
        self._dst = np.where(
            us[5] < spec.cross_fraction,
            (draws[6] % np.uint64(max(1, spec.devices))).astype(np.int64),
            np.int64(-1)) if n else np.zeros(0, dtype=np.int64)
        self._leak_seed = draws[6]

    def _leak_details(self, h: int,
                      n_packets: int) -> tuple[tuple, tuple]:
        """Leak positions/types: lazy continuation of the flow's chain."""
        def draw() -> int:
            nonlocal h
            h = _mix_int(h)
            return h

        n_leaks = 1 + draw() % 3
        positions = sorted({draw() % n_packets for _ in range(n_leaks)})
        types = tuple(PII_TYPES[draw() % len(PII_TYPES)] for _ in positions)
        return tuple(positions), types

    def _flow_at(self, position: int) -> HybridFlow:
        """Materialize the flow at one schedule position."""
        _, devices, ks = self._flows
        n_packets = int(self._n_packets[position])
        leak_packets: tuple[int, ...] = ()
        leak_types: tuple[str, ...] = ()
        if self._leaky[position]:
            leak_packets, leak_types = self._leak_details(
                int(self._leak_seed[position]), n_packets)
        third_party = bool(self._third_party[position])
        return HybridFlow(
            device=int(devices[position]), seq=int(ks[position]),
            n_packets=n_packets, cap_bps=float(self._cap[position]),
            kind=FLOW_KINDS[self._kind_idx[position]][0],
            https=bool(self._https[position]), third_party=third_party,
            leak_packets=leak_packets, leak_types=leak_types,
            dst_device=int(self._dst[position]),
            host="tracker.example.net" if third_party
                 else "app.example.com",
        )

    def flow_spec(self, device: int, k: int) -> HybridFlow:
        """Scalar reference: one flow's spec from ``(seed, device, k)``.

        Must match :meth:`_compile_flow_attrs` draw for draw — the
        property tests cross-check the two paths.
        """
        spec = self.spec
        h = _mix_int(((device * _GOLDEN + k * _WEYL) & _MASK)
                     ^ self._flow_base)
        draws = []
        for _ in range(7):
            h = _mix_int(h)
            draws.append(h)
        us = [(d >> 11) * (2.0 ** -53) for d in draws[:6]]
        acc = 0.0
        kind, mean, mult = FLOW_KINDS[-1][0], FLOW_KINDS[-1][2], \
            FLOW_KINDS[-1][3]
        for name, weight, kind_mean, kind_mult in FLOW_KINDS:
            acc += weight
            if us[0] < acc:
                kind, mean, mult = name, kind_mean, kind_mult
                break
        n_packets = 1 + int(mean * -math.log1p(-us[1]))
        n_packets = min(n_packets, mean * _SIZE_CAP_MULTIPLE + 1)
        https = us[2] < spec.https_fraction
        third_party = us[3] < spec.third_party_fraction
        leak_packets: tuple[int, ...] = ()
        leak_types: tuple[str, ...] = ()
        if us[4] < spec.leak_probability:
            leak_packets, leak_types = self._leak_details(
                draws[6], n_packets)
        dst_device = (draws[6] % max(1, spec.devices)
                      if us[5] < spec.cross_fraction else -1)
        return HybridFlow(
            device=int(device), seq=int(k), n_packets=int(n_packets),
            cap_bps=spec.device_rate_bps * mult, kind=kind, https=https,
            third_party=third_party, leak_packets=leak_packets,
            leak_types=leak_types, dst_device=int(dst_device),
            host="tracker.example.net" if third_party
                 else "app.example.com",
        )

    # -- the engine-facing surface -----------------------------------------

    def tick_events(self, index: int) -> TickBatch:
        """All population events landing in tick ``index``."""
        attach_devices, _ = self._slice(self._attaches, index)
        flow_lo, flow_hi = np.searchsorted(self._flows[0],
                                           [index, index + 1])
        migrate_devices, migrate_ks = self._slice(self._migrates, index)
        probe_devices, probe_ks = self._slice(self._probes, index)
        detach_devices, detach_ks = self._slice(self._detaches, index)
        cells = self.spec.cells
        return TickBatch(
            attach_devices=attach_devices,
            attach_cells=self.cells[attach_devices],
            flows=[self._flow_at(position)
                   for position in range(flow_lo, flow_hi)],
            migrates=[
                (int(d), int(_mix_int(self._flow_base ^ (d * _WEYL + k))
                             % max(1, cells)), int(k))
                for d, k in zip(migrate_devices.tolist(),
                                migrate_ks.tolist())],
            probes=list(zip(probe_devices.tolist(), probe_ks.tolist())),
            detaches=list(zip(detach_devices.tolist(),
                              detach_ks.tolist())),
        )

    def counts(self) -> dict[str, int]:
        """Scheduled event totals for this shard (diagnostics/tests)."""
        return {
            "attaches": len(self._attaches[0]),
            "flows": len(self._flows[0]),
            "migrates": len(self._migrates[0]),
            "probes": len(self._probes[0]),
            "detaches": len(self._detaches[0]),
        }
