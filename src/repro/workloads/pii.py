"""Synthetic PII corpus with ground truth.

The PII experiments (E5) need labelled traffic: requests that *do*
leak personal information and requests that don't, so detection and
blocking rates can be computed exactly.  Real traces (ReCon's dataset)
are not redistributable; synthesis with ground truth preserves the
property the experiment measures — whether the in-network detector
finds what is actually there.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class UserProfile:
    """One synthetic user's personal information."""

    user_id: str
    email: str
    phone: str
    ssn: str
    latitude: float
    longitude: float
    password: str
    ad_id: str

    def pii_values(self) -> dict[str, bytes]:
        return {
            "email": self.email.encode(),
            "phone": self.phone.encode(),
            "ssn": self.ssn.encode(),
            "location": (
                f"lat={self.latitude:.4f}&lon={self.longitude:.4f}".encode()
            ),
            "password": f"password={self.password}".encode(),
            "device_id": f"ad_id={self.ad_id}".encode(),
        }


def synth_user(rng: np.random.Generator, user_id: str = "") -> UserProfile:
    """Generate one user whose PII matches the detector's pattern space."""
    number = rng.integers(0, 10**9)
    user_id = user_id or f"user{number}"
    return UserProfile(
        user_id=user_id,
        email=f"{user_id}@mail.example.com",
        phone=(f"{rng.integers(200, 999)}-{rng.integers(200, 999)}"
               f"-{rng.integers(1000, 9999)}"),
        ssn=(f"{rng.integers(100, 899)}-{rng.integers(10, 99)}"
             f"-{rng.integers(1000, 9999)}"),
        latitude=float(rng.uniform(-90, 90)),
        longitude=float(rng.uniform(-180, 180)),
        password="".join(
            rng.choice(list("abcdefghjkmnpqrstuvwxyz23456789"), size=10)
        ),
        ad_id="-".join(
            "".join(rng.choice(list("ABCDEF0123456789"), size=4))
            for _ in range(4)
        ),
    )


@dataclasses.dataclass(frozen=True)
class LabelledRequest:
    """One HTTP request body + its ground-truth leak labels."""

    host: str
    body: bytes
    https: bool
    leaked_types: tuple[str, ...]     # empty = clean
    to_third_party: bool

    @property
    def leaks(self) -> bool:
        return bool(self.leaked_types)


THIRD_PARTY_HOSTS = ("ads.example", "analytics.example", "cdn.tracker.example")
FIRST_PARTY_HOSTS = ("app.example.com", "api.example.com", "sync.example.com")

CLEAN_BODIES = (
    b"action=refresh&screen=home",
    b"query=weather+boston&units=metric",
    b"article=1234&position=0.7",
    b"version=2.1&locale=en_US",
)


def synth_request_stream(
    user: UserProfile,
    rng: np.random.Generator,
    n_requests: int = 200,
    leak_probability: float = 0.3,
    https_fraction: float = 0.4,
) -> list[LabelledRequest]:
    """A labelled stream of requests, a fraction of which leak PII.

    Leaking requests embed one to three of the user's PII values in an
    otherwise ordinary form body; the paper's motivating observation is
    that much of this goes to third parties and/or travels unencrypted.
    """
    pii = user.pii_values()
    pii_types = sorted(pii)
    requests: list[LabelledRequest] = []
    for _ in range(n_requests):
        https = bool(rng.random() < https_fraction)
        if rng.random() < leak_probability:
            count = int(rng.integers(1, 4))
            chosen = list(
                rng.choice(pii_types, size=min(count, len(pii_types)),
                           replace=False)
            )
            body = b"&".join(
                [CLEAN_BODIES[int(rng.integers(len(CLEAN_BODIES)))]]
                + [pii[t] for t in chosen]
            )
            third_party = bool(rng.random() < 0.6)
            host = (THIRD_PARTY_HOSTS if third_party
                    else FIRST_PARTY_HOSTS)[int(rng.integers(3))]
            requests.append(LabelledRequest(
                host=host, body=body, https=https,
                leaked_types=tuple(sorted(chosen)),
                to_third_party=third_party,
            ))
        else:
            host = FIRST_PARTY_HOSTS[int(rng.integers(3))]
            body = CLEAN_BODIES[int(rng.integers(len(CLEAN_BODIES)))]
            requests.append(LabelledRequest(
                host=host, body=body, https=https,
                leaked_types=(), to_third_party=False,
            ))
    return requests


@dataclasses.dataclass
class DetectionScore:
    """Detector performance against ground truth."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    true_negatives: int = 0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0


def score_detection(
    labelled: list[LabelledRequest], flagged: list[bool]
) -> DetectionScore:
    """Compare detector flags against ground truth, request-level."""
    score = DetectionScore()
    for request, was_flagged in zip(labelled, flagged):
        if request.leaks and was_flagged:
            score.true_positives += 1
        elif request.leaks and not was_flagged:
            score.false_negatives += 1
        elif not request.leaks and was_flagged:
            score.false_positives += 1
        else:
            score.true_negatives += 1
    return score
