#!/usr/bin/env python3
"""PVNC playground: author, validate, compile, and price a config.

Shows the §3.1 toolchain in isolation: the user-readable DSL, the
validator's error reporting, the compiled deployment program, and what
two different providers would quote for it.

    python examples/pvnc_playground.py
"""

from repro.core.discovery import DiscoveryClient, DiscoveryService, PricingPolicy
from repro.core.discovery.messages import DeploymentAck
from repro.core.pvnc import compile_pvnc, parse_pvnc, render_pvnc
from repro.errors import ConfigurationError
from repro.units import format_size, format_time

MY_PVNC = '''
# Everything a privacy-focused commuter wants.
pvnc "commuter" for bob
module tls_validator mode=block
module tracker_blocker
module pii_detector mode=block
module compressor
module tcp_proxy reuse=yes

class https: tls_validator -> forward
class web_text: tracker_blocker -> pii_detector -> compressor -> forward
class video_image: tcp_proxy -> forward
default: forward

require tls_validator pii_detector
prefer compressor
budget 4.0
max-latency 1 ms
'''

BROKEN_PVNC = '''
pvnc "oops" for bob
module tls_validator
class https: tls_validator -> quantum_firewall -> forward
require transcoder
'''


def main() -> None:
    print("=== Parsing and compiling a valid PVNC ===")
    pvnc = parse_pvnc(MY_PVNC)
    compiled = compile_pvnc(pvnc)
    print(f"name: {pvnc.name} (user {pvnc.user})")
    print(f"digest: {pvnc.digest().hex()[:16]}…")
    print(f"services deployed: {', '.join(compiled.deployment_services)}")
    print(f"estimated: {compiled.estimate.containers} containers, "
          f"{format_size(compiled.estimate.memory_bytes)}, "
          f"worst-case chain delay {format_time(compiled.per_packet_delay)}")
    print("per-class chains:")
    for traffic_class, pipeline in compiled.chain_layout:
        chain = " -> ".join(pipeline) or "(direct)"
        print(f"  {traffic_class:12s} {chain} "
              f"-> {compiled.terminal_for(traffic_class)}")

    print("\n=== Round-tripping through the DSL ===")
    again = parse_pvnc(render_pvnc(pvnc))
    print(f"render -> parse preserves the digest: "
          f"{again.digest() == pvnc.digest()}")

    print("\n=== The validator catching a broken config ===")
    try:
        parse_pvnc(BROKEN_PVNC)
    except ConfigurationError as exc:
        print(f"rejected: {exc}")

    print("\n=== What two providers would quote ===")
    client = DiscoveryClient("bob:mac")
    for name, multiplier in (("isp-budget", 1.0), ("isp-premium", 2.5)):
        service = DiscoveryService(
            provider=name,
            supported_services=compiled.deployment_services,
            pricing=PricingPolicy(load_multiplier=multiplier),
            deploy=lambda request: DeploymentAck("bob/x", "10.200.5.0/24"),
        )
        offer = service.handle_dm(
            client.make_dm(pvnc, compiled.estimate), now=0.0
        )
        quote = ", ".join(f"{svc}={price}" for svc, price in offer.prices
                          if price > 0)
        print(f"  {name}: total {offer.total_price:.2f}  ({quote})")
        affordable = offer.total_price <= pvnc.constraints.max_price
        print(f"    within the {pvnc.constraints.max_price} budget: "
              f"{affordable}")


if __name__ == "__main__":
    main()
