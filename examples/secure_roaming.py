#!/usr/bin/env python3
"""Secure roaming: one PVNC, three very different access networks.

The paper's core pitch — "the illusion of a personal home network
wherever the device roams" — played out across:

1. an honest PVN-supporting ISP (everything just works),
2. a dishonest ISP that covertly throttles video and skips the PII
   module it was paid for (caught by the auditor, blacklisted after
   repeated offences, billing dispute filed),
3. an airport network with no PVN support at all (the device probes
   remote PVN locations and falls back to selective tunneling).

    python examples/secure_roaming.py
"""

from repro.core import AccessProvider, DishonestyProfile, PvnSession, default_pvnc
from repro.core.auditor import file_dispute
from repro.core.tunneling import (
    EndpointCandidate,
    RedirectRule,
    SelectiveRedirector,
    needs_tls_interception,
    select_endpoint,
)
from repro.netsim import Packet


def roam_honest() -> None:
    print("=== Stop 1: home ISP (honest, PVN-supporting) ===")
    session = PvnSession.build(seed=1)
    outcome = session.connect(default_pvnc())
    print(f"deployed: {outcome.deployed}, "
          f"services: {len(session.device.connection.services)}, "
          f"price: {outcome.price_paid}")
    print(f"audit: {session.audit() or 'clean'}")
    print(f"reputation: "
          f"{session.device.reputation.score(session.provider.name):.2f}\n")


def roam_dishonest() -> None:
    print("=== Stop 2: discount ISP (covert shaper, skips paid modules) ===")
    cheat = DishonestyProfile(
        shape_video_to_bps=1.5e6,
        skip_services=frozenset({"pii_detector"}),
        modify_content=True,
        inflate_path_by=0.150,
    )
    session = PvnSession.build(seed=2, dishonesty=cheat)
    outcome = session.connect(default_pvnc())
    print(f"deployed: {outcome.deployed} (looks fine at first)")

    for audit_round in range(1, 7):
        violations = session.audit()
        score = session.device.reputation.score(session.provider.name)
        print(f"  audit {audit_round}: violations={violations} "
              f"reputation={score:.2f}")
        if session.device.reputation.blacklisted(session.provider.name):
            print("  -> provider BLACKLISTED")
            break

    dispute = file_dispute(
        session.device.ledger, session.provider.name,
        session.device.connection.deployment_id,
        amount_paid=session.device.connection.price_paid,
    )
    print(f"billing dispute: {dispute.summary}\n")


def roam_unsupported() -> None:
    print("=== Stop 3: airport WiFi (no PVN support) ===")
    session = PvnSession.build(seed=3, supports_pvn=False)
    outcome = session.connect(default_pvnc())
    print(f"deployed: {outcome.deployed} — {outcome.reason}")

    # §3.3 "Coping with unavailability": probe remote PVN locations.
    selection = select_endpoint([
        EndpointCandidate("next-hop-as", probe=lambda: 0.018, price=1.0),
        EndpointCandidate("cloud-vm", probe=lambda: 0.045, price=0.5),
        EndpointCandidate("home-network", probe=lambda: 0.080, price=0.0),
    ])
    print(f"best remote PVN location: {selection.chosen}")
    for score in selection.scores:
        print(f"  {score.name}: rtt={score.median_rtt * 1e3:.0f}ms "
              f"price={score.price} cost={score.cost:.1f}")

    # Tunnel only what needs trusted execution (Fig. 1(c)).
    redirector = SelectiveRedirector([
        RedirectRule("tls-inspection", needs_tls_interception,
                     selection.chosen),
    ])
    for index in range(20):
        packet = Packet(src="10.9.0.2", dst="198.51.100.10", dst_port=443,
                        owner="alice", flow_id=index)
        if index % 5 == 0:
            packet.metadata["needs_inspection"] = True
        redirector.route(packet)
    print(f"selective tunnel: {redirector.redirected}/20 flows redirected "
          f"({redirector.redirect_fraction:.0%}); the rest stay local")

    # A second provider appearing in the zone rescues full PVN service.
    rescue = AccessProvider("isp-rescue", sim=session.sim, seed=3)
    rescue.attach_device(session.device.node_name)
    session.add_provider(rescue)
    outcome = session.connect(default_pvnc())
    print(f"after isp-rescue appears: deployed={outcome.deployed} "
          f"via {session.device.connection.provider.name}")


def main() -> None:
    roam_honest()
    roam_dishonest()
    roam_unsupported()


if __name__ == "__main__":
    main()
