#!/usr/bin/env python3
"""Video optimizer: split TCP, transcoding, and per-flow video policy.

The §2.2 performance story as a user would live it:

1. a bulk download over a lossy wireless link, direct vs through the
   PVN's split-TCP proxy (the proxy recovers last-mile losses locally);
2. an image-heavy page through the transcoder (bytes saved on the
   constrained link);
3. the evening's two video streams under three policies — none,
   carrier Binge On, and the user's own per-flow PVNC policy.

    python examples/video_optimizer.py
"""

import numpy as np

from repro.middleboxes import SplitTcpProxy, Transcoder
from repro.netproto.http import CONTENT_IMAGE, HttpResponse
from repro.netsim import Packet, PathCharacteristics
from repro.netsim.flows import stream_video
from repro.netsim.queueing import TokenBucket
from repro.nfv import ProcessingContext


def split_tcp_demo() -> None:
    print("=== 1. Split-TCP proxy on a lossy wireless link ===")
    upstream = PathCharacteristics(rtt=0.080, loss_rate=0.0001,
                                   bandwidth_bps=1e9)
    proxy = SplitTcpProxy()
    print(f"{'last-mile loss':>15s} {'direct':>9s} {'split':>9s} "
          f"{'speedup':>8s}")
    for loss in (0.001, 0.01, 0.03):
        downstream = PathCharacteristics(rtt=0.025, loss_rate=loss,
                                         bandwidth_bps=40e6)
        direct = np.mean([
            SplitTcpProxy.direct_transfer_time(
                4_000_000, upstream, downstream, np.random.default_rng(s)
            ).duration for s in range(8)
        ])
        split = np.mean([
            proxy.transfer_time(
                4_000_000, upstream, downstream, np.random.default_rng(s)
            ).duration for s in range(8)
        ])
        print(f"{loss:>14.1%} {direct:>8.2f}s {split:>8.2f}s "
              f"{direct / split:>7.2f}x")


def transcoder_demo() -> None:
    print("\n=== 2. In-network transcoding of an image-heavy page ===")
    transcoder = Transcoder(quality="medium")
    context = ProcessingContext(now=0.0, owner="alice")
    rng = np.random.default_rng(1)
    for _ in range(12):
        body = bytes(rng.integers(0, 256, size=int(
            rng.integers(80_000, 400_000)), dtype=np.uint8))
        packet = Packet(
            src="198.51.100.20", dst="10.10.0.2", owner="alice",
            size=len(body) + 100,
            payload=HttpResponse(body=body, content_type=CONTENT_IMAGE),
        )
        transcoder.process(packet, context)
    print(f"  {transcoder.bytes_in / 1e6:.1f} MB in -> "
          f"{transcoder.bytes_out / 1e6:.1f} MB over the wireless link "
          f"({transcoder.bytes_saved / 1e6:.1f} MB saved)")


def video_policy_demo() -> None:
    print("\n=== 3. Tonight's two streams under three policies ===")
    link = 20e6
    shaper = TokenBucket(rate_bps=1_500_000, burst_bytes=16_000)
    shaped = 1_500_000.0  # enforced by the bucket; see E4 for the proof

    def show(policy, movie, background, quota_free_background=False,
             quota_free_all=False):
        quota = 0
        if not quota_free_all:
            quota += movie.bytes_charged_to_quota
        if not (quota_free_background or quota_free_all):
            quota += background.bytes_charged_to_quota
        print(f"  {policy:22s} movie={movie.chosen_label:5s} "
              f"background={background.chosen_label:5s} "
              f"quota={quota / 1e6:6.1f} MB")

    # No policy: both full rate, both billed.
    show("no policy",
         stream_video(90 * 60, link),
         stream_video(90 * 60, link))
    # Binge On: both shaped to 1.5 Mbps, both free.
    show("binge-on (blanket)",
         stream_video(90 * 60, shaped, zero_rated=True),
         stream_video(90 * 60, shaped, zero_rated=True),
         quota_free_all=True)
    # PVN per-flow: the movie opts out of shaping (billed, HD); the
    # background stream stays shaped and zero-rated.
    show("pvn (per-flow PVNC)",
         stream_video(90 * 60, link),
         stream_video(90 * 60, shaped, zero_rated=True),
         quota_free_background=True)
    print("  -> the PVN gives the user the choice Binge On removes "
          "(§2.2): HD where it matters, zero-rating where it doesn't")


def main() -> None:
    split_tcp_demo()
    transcoder_demo()
    video_policy_demo()


if __name__ == "__main__":
    main()
