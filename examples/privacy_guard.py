#!/usr/bin/env python3
"""Privacy guard: leaky apps, IoT sensors, trackers, and the PVN Store.

The §2.3 scenario end to end: the user's apps leak PII to analytics
hosts, an IoT camera uploads location in the clear, and trackers follow
every page view.  The PVN deploys a scrubbing PII detector, a
store-bought tracker blocker, and — for encrypted flows it cannot
inspect in the access network — selective tunneling to a trusted
enclave (Fig. 1(c)).  An eavesdropper past the PVN shows what actually
escaped.

    python examples/privacy_guard.py
"""

import numpy as np

from repro.core.store import PvnStore, SigningKey
from repro.middleboxes import PiiDetector, TrackerBlocker
from repro.netproto.http import HttpRequest
from repro.netsim import Packet
from repro.nfv import (
    Capability,
    ChainHop,
    Container,
    ProcessingContext,
    Sandbox,
    ServiceChain,
)
from repro.workloads import Eavesdropper, IotSensor, LeakyApp, synth_user


def build_store() -> PvnStore:
    """A PVN Store with a third-party tracker blocker published in it."""
    store = PvnStore(SigningKey("pvn-store", b"store-root-key"))
    acme = SigningKey("acme-privacy", b"acme-key")
    store.register_developer(acme)
    store.publish(
        "acme_tracker_blocker", "2.1", acme,
        factory=lambda: TrackerBlocker(name="acme_tracker_blocker"),
        price=0.99,
        description="Blocks 4 tracker networks; updated weekly.",
        capabilities=Capability.OBSERVE | Capability.BLOCK,
    )
    return store


def build_chain(store: PvnStore) -> ServiceChain:
    """The privacy chain: store blocker -> PII scrubber."""
    factory, capabilities, price = store.install("acme_tracker_blocker",
                                                 budget=5.0)
    print(f"installed acme_tracker_blocker from the PVN Store "
          f"(price {price}, signatures verified)")

    def running(middlebox, caps):
        container = Container(middlebox, owner="alice")
        container.start_immediately(now=0.0)
        return ChainHop(container,
                        Sandbox(middlebox, owner="alice", capabilities=caps))

    blocker = factory()
    scrubber = PiiDetector(mode="scrub", tunnel_encrypted_to="enclave")
    return ServiceChain("privacy", [
        running(blocker, capabilities),
        running(scrubber, Capability.all()),
    ])


def main() -> None:
    rng = np.random.default_rng(7)
    user = synth_user(rng, "alice")
    store = build_store()
    chain = build_chain(store)
    eve = Eavesdropper("isp-upstream")

    leaky_app = LeakyApp(user)
    camera = IotSensor("doorcam", owner="alice")

    tracked = blocked = scrubbed = tunneled = 0
    traffic = []
    for _ in range(30):
        traffic.append(leaky_app.telemetry_packet(rng))
    for _ in range(10):
        traffic.append(camera.reading_packet(rng))
    for i in range(10):
        traffic.append(Packet(
            src="10.10.0.2", dst="203.0.113.99", dst_port=80, owner="alice",
            payload=HttpRequest("GET", "pixel.ads.example", f"/t?page={i}"),
        ))
    for i in range(5):  # encrypted banking flows: uninspectable here
        packet = Packet(
            src="10.10.0.2", dst="198.51.100.5", dst_port=443, owner="alice",
            payload=HttpRequest("POST", "bank.example.com",
                                body=b"acct=check", https=True),
        )
        traffic.append(packet)

    context = ProcessingContext(now=0.0, owner="alice")
    for packet in traffic:
        result = chain.process(packet, context)
        if result.terminal_kind.value == "drop":
            blocked += 1
            continue
        if result.terminal_kind.value == "tunnel":
            tunneled += 1
            continue
        eve.observe(packet)  # whatever survives reaches the wide area

    scrubber = chain.hops[1].container.middlebox
    print(f"\ntraffic: {len(traffic)} packets "
          f"(30 leaky app, 10 IoT, 10 tracker, 5 encrypted)")
    print(f"  blocked at tracker/analytics hosts: {blocked}")
    print(f"  scrubbed leaks: {scrubber.leaks_scrubbed}")
    print(f"  tunneled to enclave (encrypted, Fig. 1c): {tunneled}")

    print("\nwhat the eavesdropper saw of the user's PII:")
    for pii_type, value in user.pii_values().items():
        exposed = eve.saw(value)
        print(f"  {pii_type:10s}: {'EXPOSED' if exposed else 'protected'}")
    assert not any(eve.saw(v) for v in user.pii_values().values())
    print("\nall PII protected; "
          f"store revenue: {store.revenue}, chain added delay: "
          f"{chain.per_packet_delay * 1e6:.0f}us/packet")


if __name__ == "__main__":
    main()
