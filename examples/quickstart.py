#!/usr/bin/env python3
"""Quickstart: bring up a PVN, push traffic through it, audit it.

Runs the full lifecycle of the paper's §3.1 in ~30 lines of user code:
DHCP attach with PVN discovery, negotiation, deployment, the Fig. 1(a)
data path, and the trust-but-verify audit loop.

    python examples/quickstart.py
"""

from repro import PvnSession, default_pvnc
from repro.netproto import CertificateAuthority, MitmInterceptor
from repro.netproto.http import HttpRequest
from repro.netsim import Packet


def main() -> None:
    # 1. Build the world: one PVN-supporting access network, one device.
    session = PvnSession.build(seed=42)

    # 2. Connect with the canonical Fig. 1(a) configuration.
    pvnc = default_pvnc()
    outcome = session.connect(pvnc)
    connection = session.device.connection
    print(f"deployed: {outcome.deployed} ({outcome.deployment_id})")
    print(f"  services: {', '.join(connection.services)}")
    print(f"  price paid: {connection.price_paid}")
    print(f"  PVN address: {connection.device_ip}")
    print(f"  attestation verified: {connection.attestation_verified}")

    # 3. A leaky HTTP request gets scrubbed in-network.
    leaky = Packet(
        src=connection.device_ip, dst="198.51.100.9", dst_port=80,
        owner="alice",
        payload=HttpRequest("POST", "analytics.example",
                            body=b"event=open&email=alice@example.com"),
    )
    result = session.send(leaky)
    print(f"\nleaky request -> {result.action} "
          f"(class={result.traffic_class})")
    print(f"  body after PVN: {leaky.payload.body!r}")

    # 4. A man-in-the-middle handshake gets blocked.
    mitm = MitmInterceptor("coffee-shop-box",
                           CertificateAuthority("EvilCA", b"evil"),
                           now=session.sim.now)
    forged = mitm.intercept(
        session.tls_servers["bank.example.com"].respond("bank.example.com")
    )
    attacked = Packet(src=connection.device_ip, dst="198.51.100.5",
                      dst_port=443, owner="alice", payload=forged)
    result = session.send(attacked)
    print(f"\nMITM handshake -> {result.action}")
    print(f"  reason: {attacked.drop_reason}")

    # 5. Trust, but verify: audit the provider.
    violations = session.audit()
    print(f"\naudit violations: {violations or 'none (honest provider)'}")
    print(f"provider reputation: "
          f"{session.device.reputation.score(session.provider.name):.2f}")


if __name__ == "__main__":
    main()
