"""E7 bench — §4 DNS validation against a forging ISP resolver."""

from repro.experiments import exp7_dns


def test_bench_e7_dns(run_once):
    result = run_once(exp7_dns.run, seed=0)
    # Without the PVN, every lookup of a forged name is poisoned.
    assert result.metric("poisoned_none") > 100
    # With the PVN, no poisoned mapping survives; forgeries are
    # corrected (substituted with the validated answer).
    assert result.metric("poisoned_pvn") == 0
    assert result.metric("corrected_pvn") > 0
    assert result.metric("forged_names") > 0
