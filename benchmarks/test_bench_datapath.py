"""Benchmarks of the compiled fast path: flow cache + pipelines.

Two families:

* **Flow lookup** — an ingress switch with one owner-scoped PVN rule
  per subscriber, at 10/100/1000 installed PVNs.  The linear path
  (cache disabled) scans the table per packet; the cached path is an
  exact-match dict hit plus a pre-compiled closure.  The acceptance
  bar from the datapath refactor: >= 3x throughput at 1000 PVNs.
* **Chain execution** — a compiled three-hop service chain with a
  pooled context, at the same PVN scales, to catch regressions in the
  pipeline compiler itself.

These complement ``test_bench_micro.py`` (single-lookup latency) by
measuring sustained packets/sec with steady-state caches.
"""

import time

import pytest

from repro.netsim import Packet, Simulator
from repro.nfv import ChainHop, Container, Middlebox, ServiceChain
from repro.sdn import Drop, FlowRule, Match, SdnSwitch

PVN_COUNTS = (10, 100, 1000)
FLOWS = 64
PACKETS = 2048


def build_switch(n_rules, cached):
    # cached=False is the uncached *baseline*: both cache tiers off so
    # every packet pays the full linear classification (the megaflow
    # tier alone would otherwise absorb the scan and fake the bar).
    switch = SdnSwitch(Simulator(), "ingress")
    switch.flow_cache.enabled = cached
    switch.megaflow_cache.enabled = cached
    for i in range(n_rules):
        switch.table.install(FlowRule(
            match=Match(owner=f"user{i}"),
            actions=(Drop(reason="bench"),),
            pvn_id=f"user{i}/pvn",
        ))
    return switch


def packet_schedule(n_rules):
    return [
        Packet(src="10.0.0.1", dst="198.51.100.5", dst_port=443,
               owner=f"user{((i % FLOWS) * n_rules) // FLOWS % n_rules}")
        for i in range(PACKETS)
    ]


def replay_pps(switch, packets):
    process = switch.process
    start = time.perf_counter()
    for packet in packets:
        process(packet)
    elapsed = time.perf_counter() - start
    return len(packets) / elapsed if elapsed > 0 else float("inf")


@pytest.mark.parametrize("n_rules", PVN_COUNTS)
def test_bench_flow_lookup_cached(benchmark, n_rules):
    switch = build_switch(n_rules, cached=True)
    packets = packet_schedule(n_rules)
    replay_pps(switch, packets)            # warm the cache
    benchmark.pedantic(replay_pps, args=(switch, packets),
                       rounds=3, iterations=1)
    assert switch.flow_cache.hit_rate > 0.9


@pytest.mark.parametrize("n_rules", PVN_COUNTS)
def test_bench_flow_lookup_linear(benchmark, n_rules):
    switch = build_switch(n_rules, cached=False)
    packets = packet_schedule(n_rules)
    benchmark.pedantic(replay_pps, args=(switch, packets),
                       rounds=3, iterations=1)
    assert switch.packets_received == 3 * PACKETS


def test_flow_cache_speedup_at_1000_pvns():
    """The refactor's acceptance bar: >= 3x at 1000 installed PVNs."""
    packets = packet_schedule(1000)
    linear = build_switch(1000, cached=False)
    cached = build_switch(1000, cached=True)
    linear_pps = max(replay_pps(linear, packets) for _ in range(3))
    cached_pps = max(replay_pps(cached, packets) for _ in range(3))
    assert cached_pps >= 3 * linear_pps, (
        f"flow cache speedup {cached_pps / linear_pps:.2f}x below the "
        f"3x bar ({cached_pps:,.0f} vs {linear_pps:,.0f} pkts/s)"
    )


def test_cached_throughput_flat_in_pvn_count():
    """Cached pkts/s must not degrade with table size (O(1) lookup)."""
    rates = {}
    for n_rules in (10, 1000):
        switch = build_switch(n_rules, cached=True)
        packets = packet_schedule(n_rules)
        rates[n_rules] = max(replay_pps(switch, packets) for _ in range(3))
    # Generous bound: 100x more rules may cost at most 2x throughput
    # (noise allowance); the linear path degrades ~20x here.
    assert rates[1000] >= 0.5 * rates[10], rates


@pytest.mark.parametrize("n_rules", PVN_COUNTS)
def test_bench_chain_execution(benchmark, n_rules):
    """Compiled 3-hop chain throughput via the pooled executor."""
    hops = []
    for name in ("mb_a", "mb_b", "mb_c"):
        container = Container(Middlebox(name), owner="alice")
        container.start_immediately(now=0.0)
        hops.append(ChainHop(container))
    chain = ServiceChain("bench", hops)
    executor = chain.as_executor()
    packets = packet_schedule(n_rules)

    def run():
        for packet in packets:
            executor(packet, "bench")
        return chain.packets_in

    processed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert processed >= PACKETS
    assert chain.packets_dropped == 0
