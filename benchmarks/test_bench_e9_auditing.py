"""E9 bench — §3.1/§3.3 auditing: every cheater caught, honest clean."""

from repro.experiments import exp9_auditing


def test_bench_e9_auditing(run_once):
    result = run_once(exp9_auditing.run, seed=0)
    # Zero false positives against the honest provider.
    assert result.metric("false_positive_rate_honest") == 0.0
    # Every dishonest profile is caught by at least one mechanism.
    assert result.metric("all_cheaters_caught") == 1.0
    # Single-axis cheaters are flagged in every audit round.
    for profile in ("shaping", "injecting", "lazy", "inflating"):
        assert result.metric(f"detection_rate_{profile}") == 1.0
    # The egregious multi-axis cheater is blacklisted within 3 rounds.
    assert result.metric("blacklist_rounds_egregious") <= 3
