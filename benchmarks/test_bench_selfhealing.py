"""Self-healing benches (E20, DESIGN.md §12).

The ISSUE-7 acceptance bar, asserted on one full chaos-soak replay:

* after two seeded host crashes the reconciler restores **100 %** of
  deployments — every auditor probe traverses the user's full declared
  chain, zero policy-bypass packets;
* partition and heartbeat loss cause **zero** false evacuations;
* the reported p99 repair time is bounded;
* under the re-attach flash crowd, admission control protects goodput
  by at least **2x** over the unprotected run while critical recovery
  traffic is never shed.
"""

from repro.experiments import exp20_selfhealing

#: Repair p99 must stay within a handful of reconcile intervals of the
#: crash (detection ~0.35 s + one budgeted evacuation wave).
REPAIR_P99_BOUND_S = 2.0


def test_bench_e20_selfhealing(run_once):
    result = run_once(exp20_selfhealing.run)
    m = result.metrics

    # Everyone deployed, everyone restored, nobody slipped the chain.
    assert m["deploy_nacks"] == 0.0, m
    assert m["restored_fraction"] == 1.0, m
    assert m["policy_bypass_packets"] == 0.0, m
    assert m["missing_deployments"] == 0.0, m

    # Both crashed hosts were drained through journaled evacuations;
    # lost container state came back from the replicator.
    assert m["evacuations"] > 0.0, m
    assert m["replica_restores"] > 0.0, m
    assert m["degraded"] == 0.0, m

    # The partition/slow-host signals never triggered an evacuation.
    assert m["partition_deferrals"] >= 1.0, m
    assert m["false_evacuations"] == 0.0, m

    # Convergence and bounded repair latency.
    assert m["converged"] == 1.0, m
    assert 0.0 < m["repair_p99_s"] < REPAIR_P99_BOUND_S, m

    # Flash-crowd protection: goodput >= 2x unprotected (acceptance
    # bar), with shedding doing real work and critical traffic immune.
    assert m["goodput_ratio"] >= 2.0, m
    assert m["goodput_protected"] > m["goodput_unprotected"], m
    assert m["crowd_shed"] > 0.0, m
    assert m["critical_served_rate"] == 1.0, m
