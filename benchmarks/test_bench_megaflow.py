"""Benchmarks of the megaflow tier + batched execution (E21).

Runs the E21 scenario once — churning open-loop flows through the
linear, microflow-only, microflow+megaflow, and megaflow+batched
datapaths — and asserts the acceptance bars from the fast-path
refactor:

* the megaflow tier cuts full classifications >= 10x vs the
  microflow-only datapath at 1000 installed PVNs (under churn the
  exact-match tier cannot help, the wildcard tier collapses each
  subscriber onto one entry),
* batched pipeline execution is >= 2x packets/sec over per-packet
  :meth:`Pipeline.run` at batch size 32,
* every configuration's equivalence digest — winner match statistics,
  table misses, conservation counters — is byte-identical to the
  uncached linear scan.

Wall-clock throughput rows vary run to run; only the shape is
asserted, per the conftest convention.
"""

from repro.experiments.exp21_megaflow import run as run_e21

RULE_COUNTS = (100, 1000)


def test_bench_megaflow_fast_path(run_once):
    result = run_once(run_e21, rule_counts=RULE_COUNTS, repeats=3)
    m = result.metrics

    for n_rules in RULE_COUNTS:
        assert m[f"digest_match_at_{n_rules}"] == 1.0, (
            f"megaflow/batch datapaths diverged from the linear scan "
            f"at {n_rules} rules"
        )

    cut = m["classification_cut_at_1000"]
    assert cut >= 10.0, (
        f"megaflow classification cut {cut:.1f}x below the 10x bar"
    )

    speedup = m["batch_speedup_at_32"]
    assert speedup >= 2.0, (
        f"batched execution speedup {speedup:.2f}x below the 2x bar"
    )

    # The point of the wildcard tier: churning flows must not pay the
    # linear scan, so megaflow throughput at 1000 PVNs should beat the
    # microflow-only path decisively (it is ~6x in practice; assert a
    # noise-tolerant 2x).
    assert m["micro_mega_pps_at_1000"] >= 2.0 * m["micro_pps_at_1000"], (
        "megaflow tier did not outperform microflow-only under churn: "
        f"{m['micro_mega_pps_at_1000']:,.0f} vs "
        f"{m['micro_pps_at_1000']:,.0f} pkts/s"
    )
