"""Benchmarks of the megaflow tier + batched execution (E21).

Runs the E21 scenario once — churning open-loop flows through the
linear, microflow-only, microflow+megaflow, and megaflow+batched
datapaths — and asserts the acceptance bars from the fast-path
refactor:

* the megaflow tier cuts full classifications >= 10x vs the
  microflow-only datapath at 1000 installed PVNs (under churn the
  exact-match tier cannot help, the wildcard tier collapses each
  subscriber onto one entry),
* batched pipeline execution is >= 2x packets/sec over per-packet
  :meth:`Pipeline.run` at batch size 32,
* every configuration's equivalence digest — winner match statistics,
  table misses, conservation counters — is byte-identical to the
  uncached linear scan.

Wall-clock throughput rows vary run to run; only the shape is
asserted, per the conftest convention.

``BENCH_datapath.json`` in the repo root records one dev-box run of
the same sweep (alongside ``BENCH_control_plane.json``) so the perf
trajectory is tracked in-repo: deterministic counters (scan counts,
classification cut, digests) must reproduce the recorded values
exactly; wall-clock pkts/s rows are only sanity-checked against the
recorded order of magnitude.
"""

import json
import pathlib

from repro.experiments.exp21_megaflow import run as run_e21

RULE_COUNTS = (100, 1000)

BASELINE_PATH = (pathlib.Path(__file__).resolve().parent.parent
                 / "BENCH_datapath.json")


def test_bench_megaflow_fast_path(run_once):
    result = run_once(run_e21, rule_counts=RULE_COUNTS, repeats=3)
    m = result.metrics

    for n_rules in RULE_COUNTS:
        assert m[f"digest_match_at_{n_rules}"] == 1.0, (
            f"megaflow/batch datapaths diverged from the linear scan "
            f"at {n_rules} rules"
        )

    cut = m["classification_cut_at_1000"]
    assert cut >= 10.0, (
        f"megaflow classification cut {cut:.1f}x below the 10x bar"
    )

    speedup = m["batch_speedup_at_32"]
    assert speedup >= 2.0, (
        f"batched execution speedup {speedup:.2f}x below the 2x bar"
    )

    # The point of the wildcard tier: churning flows must not pay the
    # linear scan, so megaflow throughput at 1000 PVNs should beat the
    # microflow-only path decisively (it is ~6x in practice; assert a
    # noise-tolerant 2x).
    assert m["micro_mega_pps_at_1000"] >= 2.0 * m["micro_pps_at_1000"], (
        "megaflow tier did not outperform microflow-only under churn: "
        f"{m['micro_mega_pps_at_1000']:,.0f} vs "
        f"{m['micro_pps_at_1000']:,.0f} pkts/s"
    )


def test_bench_megaflow_matches_recorded_baseline():
    """The BENCH_datapath.json perf-trajectory comparison.

    Runs the recorded sweep's parameters and holds the run to the
    recorded file: deterministic counters exactly, wall-clock loosely.
    """
    recorded = json.loads(BASELINE_PATH.read_text())
    params = recorded["params"]
    result = run_e21(seed=params["seed"],
                     rule_counts=tuple(params["rule_counts"]),
                     repeats=params["repeats"],
                     batch_packets=params["batch_packets"])
    m = result.metrics

    for n_rules, row in recorded["classification"].items():
        for config in ("linear", "micro", "micro_mega", "mega_batch"):
            assert m[f"{config}_scans_at_{n_rules}"] == row[f"{config}_scans"], (
                f"{config} full-classification count at {n_rules} rules "
                f"drifted from BENCH_datapath.json"
            )
        assert m[f"classification_cut_at_{n_rules}"] == row["classification_cut"]
        assert m[f"digest_match_at_{n_rules}"] == row["digest_match"]

    # Wall-clock rows: regression fence only — no slower than a third
    # of the recorded dev-box run (CI hosts are slower, never 3x).
    for n_rules, row in recorded["throughput_pps"].items():
        for config, pps in row.items():
            measured = m[f"{config}_pps_at_{n_rules}"]
            assert measured >= pps / 3.0, (
                f"{config} throughput at {n_rules} rules collapsed: "
                f"{measured:,.0f} pkts/s vs recorded {pps:,.0f}"
            )
    assert (m["batch_speedup_at_32"]
            >= recorded["batch_speedup_at_32"] / 3.0)
