"""E8 bench — §4 offloading: the prefetch middle ground."""

from repro.experiments import exp8_prefetch


def test_bench_e8_prefetch(run_once):
    result = run_once(exp8_prefetch.run, seed=0)
    # Latency ordering: on-device < pvn < none.
    assert (result.metric("latency_ms_on_device")
            < result.metric("latency_ms_pvn")
            < result.metric("latency_ms_none"))
    # The PVN prefetcher costs the device nothing extra over no
    # prefetching at all...
    assert result.metric("device_mb_pvn") == result.metric("device_mb_none")
    assert result.metric("energy_j_pvn") == result.metric("energy_j_none")
    # ...while on-device prefetch pays for speculative bytes.
    assert result.metric("device_mb_on_device") > result.metric(
        "device_mb_pvn"
    )
    # And the PVN still recovers most of the latency win.
    saved_by_device = (result.metric("latency_ms_none")
                       - result.metric("latency_ms_on_device"))
    saved_by_pvn = (result.metric("latency_ms_none")
                    - result.metric("latency_ms_pvn"))
    assert saved_by_pvn > 0.5 * saved_by_device
