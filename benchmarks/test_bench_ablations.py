"""Ablation benches — the DESIGN.md §4 design-choice knobs."""

from repro.experiments import ablations


def test_bench_ablation_reuse(run_once):
    result = run_once(ablations.reuse_ablation)
    assert result.metric("containers_reuse") < result.metric(
        "containers_fresh"
    )


def test_bench_ablation_placement(run_once):
    """Greedy stretch-minimising placement vs first-fit (which can
    land the whole chain on a far-away host)."""
    result = run_once(ablations.placement_ablation)
    assert result.metric("greedy_stretch") < result.metric(
        "first_fit_stretch"
    )
    assert result.metric("greedy_stretch") < 1.5


def test_bench_ablation_audit_budget(run_once):
    """More probes per round -> better detection of a stealthy shaper."""
    result = run_once(ablations.audit_budget_ablation, seed=0)
    assert result.metric("detection_rate_probes_5") >= result.metric(
        "detection_rate_probes_1"
    )
    # Even one probe pair catches the 50% shaper sometimes; five pairs
    # catch it in the clear majority of rounds.
    assert result.metric("detection_rate_probes_1") > 0.2
    assert result.metric("detection_rate_probes_5") > 0.5


def test_bench_ablation_wait_for_better(run_once):
    """Waiting past the cheap provider's appearance cuts the price."""
    result = run_once(ablations.wait_for_better_ablation)
    early = result.metric("price_deadline_5")
    late = result.metric("price_deadline_15")
    assert late < early
    assert result.metric("price_deadline_30") == late
