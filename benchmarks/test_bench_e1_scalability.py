"""E1 bench — §3.3 scalability and overhead (30 ms / 45 µs / 6 MB)."""

from repro.experiments import exp1_scalability


def test_bench_e1_scalability(run_once):
    result = run_once(exp1_scalability.run, seed=0)
    # The paper's cited constants surface unchanged.
    assert result.metric("instantiation_ms") == 30.0
    assert result.metric("per_user_memory_mb") == 36.0  # 6 modules x 6 MB
    # "Negligible relative to non-PVN connections": <1% of a 30ms RTT.
    assert result.metric("overhead_fraction_of_rtt") < 0.01
    # Scaling: everything admitted until the memory wall, then a cap.
    assert result.metric("admitted_at_100") == 100
    cap = result.metric("max_subscribers")
    assert result.metric("admitted_at_2000") == cap
    assert 300 < cap < 500  # 2 hosts x 8GB / 36MB per subscriber
