"""E2 bench — §3.2 in-network PVN vs cloud/home tunneling."""

from repro.experiments import exp2_deployment_modes


def test_bench_e2_deployment_modes(run_once):
    result = run_once(exp2_deployment_modes.run, seed=0)
    # The in-network PVN is indistinguishable from direct (<2%).
    assert result.metric("pvn_vs_direct_well") < 1.02
    # Tunnels hurt, ordered home > cloud > direct on both access types.
    assert result.metric("plt_well_vpn_cloud") > 1.2 * result.metric(
        "plt_well_direct"
    )
    assert result.metric("plt_well_vpn_home") > result.metric(
        "plt_well_vpn_cloud"
    )
    # The poorly-connected penalty explodes (the "100s of ms" case).
    assert result.metric("cloud_vs_direct_poor") > 3.0
    assert result.metric("plt_poorly_vpn_cloud") > result.metric(
        "plt_well_vpn_cloud"
    )
