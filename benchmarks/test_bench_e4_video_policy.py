"""E4 bench — §2.2 Binge On blanket throttle vs PVN per-flow policy."""

from repro.experiments import exp4_video_policy


def test_bench_e4_video_policy(run_once):
    result = run_once(exp4_video_policy.run, seed=0)
    # The 1.5 Mbps shaper holds (token bucket verified, ±5%).
    assert 1.4 < result.metric("shaped_rate_mbps") < 1.6
    # Binge On: zero quota but no HD at all (the paper's sub-HD claim).
    assert result.metric("binge_on_is_sub_hd") == 1.0
    assert result.metric("quota_mb_binge_on") == 0.0
    # No policy: all HD, all billed.
    assert result.metric("hd_flows_no") == 2
    assert result.metric("quota_mb_no") > 0
    # PVN per-flow: HD where the user wants it, quota below no-policy.
    assert result.metric("hd_flows_pvn") == 1
    assert 0 < result.metric("quota_mb_pvn") < result.metric("quota_mb_no")
