"""E6 bench — §4 TLS: the PVN validator stops what careless apps let in."""

from repro.experiments import exp6_tls


def test_bench_e6_tls(run_once):
    result = run_once(exp6_tls.run, seed=0)
    # Without the PVN, attacks land on validation-skipping apps.
    assert result.metric("compromised_none") > 0.4 * result.metric(
        "attacks_none"
    )
    # With the PVN every attacked handshake is blocked in-network.
    assert result.metric("compromised_pvn") == 0
    assert result.metric("blocked_pvn") == result.metric("attacks_pvn")
    assert result.metric("mitm_caught_by_pvn") == 1.0
