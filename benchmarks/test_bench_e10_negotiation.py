"""E10 bench — §3.1/§3.3 negotiation across provider zones."""

from repro.experiments import exp10_negotiation


def test_bench_e10_negotiation(run_once):
    result = run_once(exp10_negotiation.run, seed=0)
    # Full zone: every price-paying strategy succeeds at full coverage.
    for strategy in ("accept_first", "best_of_zone", "subset_retry"):
        assert result.metric(f"accepted_full_{strategy}") == 1.0
    # Partial zone: the device compromises (required kept, price low).
    assert result.metric("accepted_partial_best_of_zone") == 1.0
    assert result.metric("price_partial_best_of_zone") < result.metric(
        "price_full_best_of_zone"
    )
    # In a mixed zone, shopping around beats taking the first offer.
    assert result.metric("mixed_best_beats_first") == 1.0
    # No PVN support anywhere: every strategy walks away.
    for strategy in ("accept_first", "best_of_zone", "free_only"):
        assert result.metric(f"accepted_no_pvn_{strategy}") == 0.0
    # Subset retry costs an extra round when it fires.
    assert result.metric("rounds_partial_subset_retry") == 2.0
