"""E5 bench — §2.3/§4 PII enforcement: privacy without the costs."""

from repro.experiments import exp5_pii


def test_bench_e5_pii(run_once):
    result = run_once(exp5_pii.run, seed=0)
    # All three enforcement points catch every leaking request...
    assert result.metric("detection_pvn") == 1.0
    assert result.metric("detection_on_device") == 1.0
    assert result.metric("detection_cloud") == 1.0
    assert result.metric("detection_none") == 0.0
    # ...and fully deny the eavesdropper, unlike no enforcement.
    assert result.metric("leaked_values_none") > 0
    assert result.metric("leaked_values_pvn") == 0
    # The PVN's advantage: no device CPU energy, no tunnel latency.
    assert result.metric("energy_j_on_device") > 2 * result.metric(
        "energy_j_pvn"
    )
    assert result.metric("latency_ms_cloud") > 100 * result.metric(
        "latency_ms_pvn"
    )
    assert result.metric("latency_ms_on_device") > result.metric(
        "latency_ms_pvn"
    )
