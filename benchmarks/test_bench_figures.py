"""Benches for the paper's single figure: F1A, F1B, F1C (Fig. 1 a/b/c)."""

from repro.experiments import fig1a, fig1b, fig1c


def test_bench_fig1a_interposition(run_once):
    """Fig. 1(a): every class traverses exactly its configured chain."""
    result = run_once(fig1a.run, seed=0)
    assert result.metric("correct_fraction") == 1.0
    # Chain delay stays in the microsecond regime (3 hops x 45us).
    assert result.metric("chain_delay_us") < 200


def test_bench_fig1b_reuse(run_once):
    """Fig. 1(b): reusing the provider's physical TCP proxy saves a
    container (and its 6 MB / 30 ms costs)."""
    result = run_once(fig1b.run, seed=0)
    assert result.metric("containers_saved") >= 1
    assert result.metric("memory_saved_mb") >= 6
    assert result.metric("fresh_containers_with_reuse") < result.metric(
        "fresh_containers_without_reuse"
    )
    # Both embeddings stay close to the direct path.
    assert result.metric("stretch_with_reuse") < 1.5
    assert result.metric("stretch_without_reuse") < 1.5


def test_bench_fig1c_selective_redirection(run_once):
    """Fig. 1(c): the selective penalty scales with the fraction of
    traffic needing trusted execution; full tunneling pays the detour
    on everything."""
    result = run_once(fig1c.run, seed=0)
    full = result.metric("full_tunnel_penalty_ms")
    assert result.metric("selective_penalty_ms_at_0") == 0.0
    # ~10% needy -> ~10% of the full-tunnel penalty (±5 points of share).
    at10 = result.metric("selective_penalty_ms_at_10")
    assert 0.05 * full < at10 < 0.20 * full
    # Monotone in the needy fraction, converging to the full tunnel.
    penalties = [result.metric(f"selective_penalty_ms_at_{f}")
                 for f in (0, 5, 10, 25, 50, 100)]
    assert penalties == sorted(penalties)
    assert abs(penalties[-1] - full) < 1e-6
