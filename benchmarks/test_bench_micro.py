"""Microbenchmarks of the substrate hot paths.

Unlike the experiment benches (single replays), these measure
throughput of the primitives every experiment leans on: the event
loop, flow-table lookup, chain traversal, PII scanning, and the TCP
rounds model.  They exist to catch performance regressions in the
substrates, not to reproduce paper claims.
"""

import numpy as np

from repro.middleboxes import PiiDetector, TrafficClassifier
from repro.netsim import (
    Packet,
    PathCharacteristics,
    Simulator,
    simulate_transfer,
)
from repro.nfv import ChainHop, Container, ProcessingContext, ServiceChain
from repro.sdn import Drop, FlowRule, FlowTable, Match, Output


def test_bench_micro_event_loop(benchmark):
    """Schedule+fire 10k events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i) * 1e-6, lambda: None)
        sim.run()
        return sim.processed_events

    assert benchmark(run) == 10_000


def test_bench_micro_event_loop_with_cancellations(benchmark):
    """10k fired + 25k retracted events (retry timers that never fire):
    tombstone compaction keeps the heap bounded instead of letting
    cancelled entries accumulate."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i) * 1e-6, lambda: None)
        doomed = [sim.schedule(1.0 + float(i) * 1e-6, lambda: None)
                  for i in range(25_000)]
        for event in doomed:
            event.cancel()
        sim.run()
        return sim

    sim = benchmark(run)
    assert sim.processed_events == 10_000
    assert sim.compactions >= 1
    assert sim.pending_events == 0
    assert sim.cancelled_pending == 0


def test_netsim_hot_structures_are_slotted():
    """The per-event allocation guard: Event and Packet carry no
    per-instance ``__dict__`` (reduced allocation, fixed layout)."""
    import pytest

    from repro.netsim.events import Event

    event = Event(time=0.0, priority=1, sequence=0, callback=lambda: None)
    packet = Packet(src="10.0.0.1", dst="8.8.8.8")
    for hot in (event, packet):
        assert not hasattr(hot, "__dict__"), type(hot).__name__
        with pytest.raises(AttributeError):
            hot.not_a_field = 1
    # Slotting must not have broken heap ordering or copy helpers.
    assert Event(0.0, 0, 0, lambda: None) < Event(0.0, 1, 1, lambda: None)
    assert packet.copy().five_tuple() == packet.five_tuple()


def test_bench_micro_flowtable_lookup(benchmark):
    """Lookup against a 500-rule table (worst case: match at the end)."""
    table = FlowTable()
    for i in range(500):
        table.install(FlowRule(
            match=Match(dst_port=i + 1000, owner=f"user{i}"),
            actions=(Drop(),), priority=100,
        ))
    table.install(FlowRule(match=Match(), actions=(Output("gw"),),
                           priority=1))
    packet = Packet(src="10.0.0.1", dst="8.8.8.8", dst_port=7, owner="zz")

    rule = benchmark(table.lookup, packet)
    assert rule is not None
    assert rule.priority == 1


def test_bench_micro_chain_traversal(benchmark):
    """One packet through a 4-hop chain."""
    def running(mb):
        container = Container(mb, owner="alice")
        container.start_immediately(0.0)
        return ChainHop(container)

    chain = ServiceChain("bench", [
        running(TrafficClassifier()) for _ in range(4)
    ])
    context = ProcessingContext(now=0.0, owner="alice")

    def run():
        packet = Packet(src="10.0.0.1", dst="8.8.8.8", owner="alice")
        return chain.process(packet, context)

    result = benchmark(run)
    assert result.packet is not None


def test_bench_micro_pii_scan(benchmark):
    """Pattern scan over a 4 KB body with embedded PII."""
    detector = PiiDetector(mode="detect")
    body = (b"filler=" + b"x" * 4000
            + b"&email=someone@example.com&phone=617-555-0000")

    hits = benchmark(detector.scan, body)
    assert len(hits) == 2


def test_bench_micro_tcp_rounds_model(benchmark):
    """One 1 MB transfer simulation on a lossy path."""
    path = PathCharacteristics(rtt=0.05, loss_rate=0.01, bandwidth_bps=40e6)

    def run():
        return simulate_transfer(1_000_000, path,
                                 rng=np.random.default_rng(1))

    result = benchmark(run)
    assert result.timeline[-1][1] == 1_000_000
