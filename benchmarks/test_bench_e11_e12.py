"""Benches for E11 (harm containment) and E12 (time-to-connect)."""

from repro.experiments import exp11_harm, exp12_setup_time


def test_bench_e11_harm_containment(run_once):
    result = run_once(exp11_harm.run, seed=0)
    # Every §3.3 attack class is contained by its mechanism.
    assert result.metric("all_contained") == 1.0
    assert result.metric("snooped_packets") == 0
    assert result.metric("censored_packets") == 0
    assert result.metric("hog_killed") == 1.0
    # The hog got roughly its budget (50 packets) before the kill.
    assert 40 <= result.metric("hog_survived_packets") <= 50
    # Admission capped the greedy user at 25% of host memory.
    assert result.metric("greedy_containers") == 25


def test_bench_e12_setup_time(run_once):
    result = run_once(exp12_setup_time.run, seed=0)
    # PVN establishment adds a bounded, small join cost: ~3 RTTs + one
    # container instantiation over a plain attach.
    added = result.metric("pvn_added_ms")
    rtt = result.metric("rtt_ms")
    assert added < 4 * rtt + 30 + 1
    assert added > 30  # can't be cheaper than the instantiation
    # Total stays in captive-portal territory (<300 ms at 28 ms RTT).
    assert result.metric("pvn_attach_ms") < 300
    # Independent of module count: 6 services, still one instantiation.
    assert result.metric("services") == 6


def test_bench_e13_mobility(run_once):
    from repro.experiments import exp13_mobility

    result = run_once(exp13_mobility.run, seed=0)
    # Intra-provider handoff is much cheaper than a full roam and
    # keeps every service.
    assert result.metric("handoff_ms") < 0.3 * result.metric("roam_full_ms")
    assert result.metric("handoff_keeps_all_services") == 1.0
    # A full-support roam restores the complete configuration.
    assert result.metric("roam_full_services") == result.metric(
        "services_at_home"
    )
    # A partial-support roam degrades but never loses the required core.
    assert result.metric("required_survive_partial_roam") == 1.0
    assert 0 < result.metric("roam_partial_services") < result.metric(
        "services_at_home"
    )
