"""Benchmark-suite configuration.

Every bench runs its experiment once via ``benchmark.pedantic`` (these
are full scenario replays, not microbenchmarks) and then asserts the
*shape* of the result — who wins, by roughly what factor — per
EXPERIMENTS.md.  Absolute numbers come from the simulator's cost
models and are expected to differ from any physical testbed.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(run_fn, **kwargs):
        return benchmark.pedantic(run_fn, kwargs=kwargs, rounds=1,
                                  iterations=1)

    return _run
