"""The observability layer's acceptance bars (ISSUE 4).

Two claims, asserted against the E16 switch fast path:

* **obs off is free** — with observability disabled (the default),
  throughput is within measurement noise of the PR 3 baseline.  The
  instrumentation sites reduce to one module-global read and a None
  test, and the bar allows generous noise.
* **obs fully on costs <= ~10%** — with spans, metrics, and
  per-middlebox profiling all enabled, the same replay must keep at
  least 90% of the disabled throughput.  The data plane keeps plain
  int counters that fold into the registry only at publish time, and
  untraced packets never synthesize spans, so the enabled path does no
  per-packet observability work either.

Modes are interleaved round-robin so machine drift hits each equally;
best-of-N absorbs transient stalls.  The flow-cache speedup bar from
the datapath refactor (>= 3x at 1000 PVNs) is re-asserted with obs
fully enabled: observability must not eat the fast path's win.
"""

from repro.obs import runtime as obs_runtime

from test_bench_datapath import build_switch, packet_schedule, replay_pps

N_RULES = 256
ROUNDS = 5


def _interleaved_pps():
    """Best-of-N pps for (off, metrics-only, fully-on), interleaved."""
    packets = packet_schedule(N_RULES)
    off = metrics_only = full = 0.0
    for _ in range(ROUNDS):
        obs_runtime.disable()
        off = max(off, replay_pps(build_switch(N_RULES, cached=True),
                                  packets))
        with obs_runtime.enabled(trace_spans=False,
                                 profile_middleboxes=False):
            metrics_only = max(
                metrics_only,
                replay_pps(build_switch(N_RULES, cached=True), packets),
            )
        with obs_runtime.enabled():
            full = max(full, replay_pps(build_switch(N_RULES, cached=True),
                                        packets))
    obs_runtime.disable()
    return off, metrics_only, full


def test_obs_disabled_is_within_noise_of_baseline():
    """Disabled observability must not tax the fast path.

    The PR 3 baseline is this same replay before instrumentation; the
    disabled path differs from it by one module-global read and a None
    test per *publish* call (nothing per packet), so 'within noise' is
    checked two ways: the datapath refactor's own bench bars
    (``test_bench_datapath.py``) still hold with obs off, and turning
    the registry on without spans/profiling — which adds publish-time
    folding only — stays >= 80% of the disabled rate on shared CI
    hardware.  A failure here means per-packet work leaked in.
    """
    off, metrics_only, _ = _interleaved_pps()
    assert metrics_only >= 0.8 * off, (
        f"metrics-only throughput {metrics_only:,.0f} pkts/s fell more "
        f"than noise below disabled {off:,.0f} pkts/s — per-packet "
        "metrics work leaked into the fast path"
    )


def test_obs_fully_enabled_overhead_at_most_10pct():
    """The tentpole bar: spans+metrics+profiling <= ~10% overhead."""
    off, _, full = _interleaved_pps()
    assert full >= 0.9 * off, (
        f"fully-enabled throughput {full:,.0f} pkts/s is more than 10% "
        f"below disabled {off:,.0f} pkts/s "
        f"({100 * (off - full) / off:.1f}% overhead)"
    )


def test_flow_cache_speedup_survives_obs():
    """The datapath refactor's 3x bar must hold with obs fully on."""
    packets = packet_schedule(1000)
    with obs_runtime.enabled():
        linear = build_switch(1000, cached=False)
        cached = build_switch(1000, cached=True)
        linear_pps = max(replay_pps(linear, packets) for _ in range(3))
        cached_pps = max(replay_pps(cached, packets) for _ in range(3))
    assert cached_pps >= 3 * linear_pps, (
        f"with obs enabled, flow cache speedup "
        f"{cached_pps / linear_pps:.2f}x fell below the 3x bar"
    )


def test_closed_loop_machinery_keeps_10pct_bar():
    """PR 9 re-assertion of the PR 4 bar: the SLO engine, alert rules,
    and flight recorder actively ticking must not push fully-on obs
    past ~10% overhead.

    All three are tick-granular (nothing per packet), so the replay
    interleaves one full control-loop tick — SLO record/roll, burn-rate
    + anomaly evaluation, ring-buffer capture of metric deltas — per
    replay round and still holds the same bar.
    """
    from repro.obs.slo import SloSpec

    packets = packet_schedule(N_RULES)
    off = loop = 0.0
    for round_no in range(ROUNDS):
        obs_runtime.disable()
        off = max(off, replay_pps(build_switch(N_RULES, cached=True),
                                  packets))
        with obs_runtime.enabled():
            obs = obs_runtime.current()
            obs.slo.register(SloSpec(name="bench_availability",
                                     objective=0.999))
            obs.alerts.burn_rate(obs.slo, "bench_availability")
            obs.alerts.anomaly(
                "bench_anomaly",
                lambda: obs.metrics.value("repro_slo_events",
                                          slo="bench_availability",
                                          result="good"))
            switch = build_switch(N_RULES, cached=True)
            loop = max(loop, replay_pps(switch, packets))
            switch.publish_counters(float(round_no))
            obs.slo.record("bench_availability",
                           good=switch.packets_total)
            obs.recorder.note("bench", float(round_no), round=round_no)
            obs.recorder.capture_metrics(obs.metrics, float(round_no),
                                         prefixes=("repro_",))
            obs.slo.tick(float(round_no))
            obs.alerts.tick(float(round_no))
    obs_runtime.disable()
    assert loop >= 0.9 * off, (
        f"closed-loop obs throughput {loop:,.0f} pkts/s is more than "
        f"10% below disabled {off:,.0f} pkts/s"
    )


def test_e22_closed_loop_bars():
    """E22 acceptance: the telemetry loop reproduces experiment-fed
    autoscaling decision-for-decision, the injected latency regression
    drives the burn-rate alert through FIRING -> RESOLVED, and the
    incident bundle carries its evidence."""
    from repro.experiments.exp22_closed_loop import run as run_e22

    result = run_e22(seed=0)
    m = result.metrics

    # Telemetry-fed report_load must reproduce the experiment-fed
    # world's autoscaling decisions (digest over migrate/scale events).
    assert m["parity_digest_match"] == 1.0, (
        "telemetry-driven autoscaling diverged from experiment-fed rates"
    )
    assert m["parity_events_tel"] == m["parity_events_ref"]
    assert m["parity_migrations"] > 0.0, (
        "parity phase produced no autoscaling activity; digest match "
        "is vacuous"
    )

    # The injected regression must fire and then resolve the burn-rate
    # alert, freezing at least one evidence-carrying incident bundle.
    assert m["incident_fired_at"] > 0.0
    assert m["incident_resolved_at"] > m["incident_fired_at"]
    assert m["incident_bundles"] >= 1.0
    assert m["bundle_records"] > 0.0
    assert m["bundle_spans"] > 0.0, (
        "incident bundle froze without causal spans"
    )

    # The availability SLO (orders of magnitude from its threshold)
    # must stay quiet: alerting discriminates, it does not flap.
    assert m["availability_alert_fired"] == 0.0

    # The loop actually defends the SLO: violations drain to zero and
    # admission pressure shed attach load while the incident was open.
    assert m["violations_final"] == 0.0
    assert m["violations_peak"] > 0.0
    assert m["shed_per_tick_incident"] > m["shed_per_tick_calm"]
    assert m["critical_shed"] == 0.0, (
        "admission pressure shed DETACH/critical work"
    )
