"""Record BENCH_population.json: the full-scale E23 numbers.

Run from the repo root on a quiet machine:

    PYTHONPATH=src python benchmarks/record_population.py

Phases (mirroring the acceptance criteria of ROADMAP item 1):

* parity at 10^4 devices — fluid vs packet policy digests must match
  exactly and completion times must agree;
* speedup at 10^5 devices — fluid must clear >=50x device-seconds/s
  over the pure-packet pipeline on identical churn;
* fluid-only sweep to 10^6 devices;
* the sharded digest gate — ``--shards 2`` == ``--shards 1`` with
  cross-shard traffic exchanged through the runner's round queues.

The smoke-sized bench bar lives in ``test_bench_population.py``; this
script records the dev-box trajectory the bars are calibrated against.
"""

import datetime
import json
import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.exp23_population import (  # noqa: E402
    parity_check,
    speedup_check,
    sweep_point,
)
from repro.experiments.runner import run_sharded  # noqa: E402

OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_population.json"


def main() -> int:
    parity = parity_check(10_000, 10.0, seed=0)
    speedup = speedup_check(100_000, 8.0, seed=0)

    sweep = {}
    for devices in (10_000, 100_000, 1_000_000):
        point = sweep_point(devices, 10.0, seed=0)
        sweep[str(devices)] = {
            "wall_seconds": round(point["wall_seconds"], 3),
            "device_seconds_per_sec": round(
                point["device_seconds_per_sec"], 1),
            "flows_opened": point["counters"]["flows_opened"],
            "policy_packets": point["counters"]["policy_packets"],
            "pii_violations": point["pii_violations"],
        }

    shard_digest = {}
    for shards in (1, 2):
        result = run_sharded("E23", seed=0, shards=shards)
        note = [n for n in result.notes if n.startswith("policy digest")][0]
        shard_digest[str(shards)] = note.split()[-1]

    document = {
        "experiment": "E23",
        "recorded": datetime.date.today().isoformat(),
        "host_note": (
            f"single-process numbers; os.cpu_count()=={os.cpu_count()} "
            "container. Wall-clock rows vary run to run; the bench "
            "suite asserts ratios and shape, not absolutes."
        ),
        "parity_10k": {
            "devices": 10_000,
            "digests_match": parity["digests_match"],
            "digest": parity["fluid"]["digest"],
            "completions_compared": parity["completions_compared"],
            "max_completion_dt_seconds": parity["max_completion_dt"],
            "pii_violations": parity["fluid"]["pii_violations"],
        },
        "speedup_100k": {
            "devices": 100_000,
            "horizon_seconds": 8.0,
            "fluid_wall_seconds": round(
                speedup["fluid"]["wall_seconds"], 3),
            "packet_wall_seconds": round(
                speedup["packet"]["wall_seconds"], 3),
            "fluid_device_seconds_per_sec": round(
                speedup["fluid"]["device_seconds_per_sec"], 1),
            "packet_device_seconds_per_sec": round(
                speedup["packet"]["device_seconds_per_sec"], 1),
            "ratio": round(speedup["speedup"], 1),
            "packet_events": speedup["packet"]["counters"][
                "packet_events"],
            "counts_match": speedup["counts_match"],
        },
        "sweep_fluid": sweep,
        "sharded_digest": {
            "digests": shard_digest,
            "shards_equal": len(set(shard_digest.values())) == 1,
        },
    }
    OUT.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")
    print(json.dumps(document["speedup_100k"], indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
