"""Population-scale benches (E23, DESIGN.md §15).

The acceptance bar from ROADMAP item 1: the hybrid fluid/packet
engine must simulate >= 50x more device-seconds per wall-second than
the pure-packet pipeline over identical churn, while keeping the
policy-ledger digest byte-identical.  At the full 10^5-device scale
the dev-box gap is ~100x (see ``BENCH_population.json``); the smoke
scale here measures ~200x because packet mode degrades with per-flow
packet counts, not population, so 50x is the regression fence.

Parity is asserted at *zero* tolerance: both modes share the same
packet-quantized per-tick progress arithmetic, so completion times
are exactly equal, not merely close.
"""

from repro.experiments import exp23_population

SPEEDUP_BAR = 50.0


def test_bench_e23_population(run_once):
    result = run_once(exp23_population.run, seed=0)
    assert result.metrics["parity_digests_match"] == 1.0
    assert result.metrics["parity_max_completion_dt"] == 0.0
    assert result.metrics["fluid_vs_packet_speedup"] >= SPEEDUP_BAR
    # The fluid taps must actually reach the optimizer.
    assert result.metrics["telemetry_cells_reported"] > 0
    assert result.metrics["telemetry_total_pps"] > 0


def test_speedup_bar_at_smoke_scale():
    """ISSUE 10 acceptance, smoke-sized: >= 50x device-seconds/s."""
    check = exp23_population.speedup_check(10_000, 6.0, seed=0)
    assert check["counts_match"], "policy counts diverged between modes"
    assert check["speedup"] >= SPEEDUP_BAR, (
        f"fluid/packet speedup {check['speedup']:.1f}x is below the "
        f"{SPEEDUP_BAR:.0f}x bar "
        f"({check['fluid']['device_seconds_per_sec']:,.0f} vs "
        f"{check['packet']['device_seconds_per_sec']:,.0f} "
        f"device-seconds/s)"
    )


def test_fluid_cost_scales_with_churn_not_population():
    """10x devices at fixed per-device churn must cost ~10x, never
    the O(packets) blowup: throughput in device-seconds/s holds."""
    small = exp23_population.sweep_point(5_000, 8.0, seed=0)
    large = exp23_population.sweep_point(50_000, 8.0, seed=0)
    assert large["counters"]["packet_events"] == 0
    assert (large["device_seconds_per_sec"]
            >= small["device_seconds_per_sec"] / 3.0)
