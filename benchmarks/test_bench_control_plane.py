"""Control-plane scaling benches (E18, DESIGN.md §9).

The acceptance bar from the control-plane refactor: at 10k-device
occupancy, the optimized attach path (compile cache + embedding index
+ incremental admission) must deliver >= 5x the marginal attach
throughput of the uncached baseline.  The measured gap is asymptotic
(hundreds of x at 10k on the dev box) because the baseline pays
per-attach recompiles and O(containers) host rescans; 5x is the
regression fence, not the expectation.

``BENCH_control_plane.json`` in the repo root records one dev-box run
of the 1k/5k/10k sweep plus the shard speedup, seeding the perf
trajectory.
"""

from repro.experiments import exp18_control_plane


def test_bench_e18_control_plane(run_once):
    result = run_once(exp18_control_plane.run,
                      device_counts=(250, 1000), measure_batch=50,
                      repeats=1)
    for devices in (250, 1000):
        assert result.metrics[f"speedup_at_{devices}"] >= 5.0
        assert result.metrics[f"compile_cache_hit_rate_at_{devices}"] > 0.9
    # The gap must widen with occupancy (the baseline is the one that
    # degrades): asymptotic, not constant-factor.
    assert (result.metrics["speedup_at_1000"]
            > result.metrics["speedup_at_250"])


def test_attach_speedup_bar_at_10k_devices():
    """ISSUE 5 acceptance: >= 5x attach throughput at 10k devices."""
    result = exp18_control_plane.run(device_counts=(10_000,),
                                     measure_batch=50, repeats=1)
    speedup = result.metrics["speedup_at_10000"]
    assert speedup >= 5.0, (
        f"control-plane speedup {speedup:.1f}x at 10k devices is below "
        f"the 5x bar "
        f"({result.metrics['attach_per_sec_cached_at_10000']:,.0f} vs "
        f"{result.metrics['attach_per_sec_base_at_10000']:,.0f} attach/s)"
    )
    assert result.metrics["compile_cache_hit_rate_at_10000"] > 0.99


def test_cached_attach_throughput_flat_in_occupancy():
    """Optimized marginal attach cost must not grow with N."""
    result = exp18_control_plane.run(device_counts=(250, 10_000),
                                     measure_batch=50, repeats=2)
    small = result.metrics["attach_per_sec_cached_at_250"]
    large = result.metrics["attach_per_sec_cached_at_10000"]
    # Generous noise allowance: 40x more devices may cost at most 3x
    # throughput; the baseline degrades ~26x over the same range.
    assert large >= small / 3.0, result.metrics
