"""E3 bench — §2.2 split-TCP wins and the mixed-results crossover."""

from repro.experiments import exp3_split_tcp


def test_bench_e3_split_tcp(run_once):
    result = run_once(exp3_split_tcp.run, seed=0)
    # Bulk transfers: splitting wins, and the win grows with loss.
    assert result.metric("speedup_bulk_loss_0.001") > 1.2
    assert result.metric("speedup_bulk_loss_0.01") > 2.0
    assert (result.metric("speedup_bulk_loss_0.05")
            > result.metric("speedup_bulk_loss_0.001"))
    # The Xu et al. caveat: a cold proxy on a clean path for a small
    # object is a net loss — direct wins somewhere in the sweep.
    assert result.metric("small_clean_crossover") == 1.0
    assert result.metric("speedup_small-cold_loss_0.0001") < 1.0
    # But even the cold proxy wins once the last mile is lossy enough.
    assert result.metric("speedup_small-cold_loss_0.05") > 1.0
