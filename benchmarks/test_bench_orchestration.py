"""Orchestration benches (E19, DESIGN.md §10).

The ISSUE-6 acceptance bar: optimized placement must *strictly
dominate* first-fit on at least one (load, SLO-violation, cost) sweep
point — lower cost without losing on SLO violations — and the
load-driven autoscaler must actually recover the flash crowd (the
pre-autoscale violation count falls to the post-autoscale one).

A second bench holds the online heuristic to the reference solver's
optimum on a small instance: within ``HEURISTIC_COST_BOUND`` (the same
fence the differential suite asserts over hundreds of random
instances).
"""

from repro.core.deployment.orchestrator import (
    HEURISTIC_COST_BOUND,
    CostModel,
    PlacementOptimizer,
    SharedMiddleboxPool,
    reference_solve,
)
from repro.experiments import exp19_orchestration
from repro.netsim import attach_device, build_access_network
from repro.nfv import NfvHost
from repro.nfv.hypervisor import HostCapacity
from repro.nfv.placement import PlacementRequest


def test_bench_e19_orchestration(run_once):
    result = run_once(exp19_orchestration.run)
    users_swept = [users for users, _ in
                   ((60, 0), (180, 0), (300, 0))]

    # Strict dominance on at least one sweep point (acceptance bar).
    assert result.metrics["dominated_points"] >= 1.0, result.metrics

    # At the highest load point first-fit is saturated (NACKs) while
    # the optimized mode both serves everyone and costs less.
    high = users_swept[-1]
    assert (result.metrics[f"slo_violation_rate_opt_at_{high}"]
            < result.metrics[f"slo_violation_rate_ff_at_{high}"])
    assert (result.metrics[f"cost_opt_at_{high}"]
            < result.metrics[f"cost_ff_at_{high}"])
    assert result.metrics[f"nacks_opt_at_{high}"] == 0.0

    # The autoscaler earned its keep: the flash crowd produced
    # pre-autoscale violations, rebalancing (real make-before-break
    # migrations) cleared them.
    for users in users_swept:
        pre = result.metrics[f"slo_violations_opt_preautoscale_at_{users}"]
        post = result.metrics[f"slo_violation_rate_opt_at_{users}"] * users
        assert pre > 0.0, "flash crowd never went hot"
        assert post < pre, (users, pre, post)
        assert result.metrics[f"autoscale_migrations_at_{users}"] > 0.0

    # Sharing is real: far fewer instances than users.
    assert result.metrics[f"shared_instances_at_{high}"] < high / 4


def test_bench_heuristic_vs_reference_gap(run_once):
    """The online heuristic lands within HEURISTIC_COST_BOUND of the
    branch-and-bound optimum on a <=6-host instance."""
    topo = build_access_network()
    attach_device(topo, "dev_a")
    hosts = {
        n: NfvHost(n, HostCapacity(memory_bytes=60_000_000, cpu_cores=2.0))
        for n in topo.nodes_of_kind("nfv")
    }
    requests = tuple(
        PlacementRequest(f"svc{i}", allow_physical_reuse=(i % 2 == 0))
        for i in range(4)
    )
    pool = SharedMiddleboxPool(max_members=4)
    model = CostModel()
    optimizer = PlacementOptimizer(topo, hosts, model=model, pool=pool)

    def measure():
        plan = optimizer.place(requests, "dev_a", "gw")
        reference = reference_solve(topo, hosts, requests, "dev_a", "gw",
                                    model=model, pool=pool)
        return plan, reference

    plan, reference = run_once(measure)
    assert reference is not None
    heuristic_cost = optimizer.plan_cost(requests, "dev_a", "gw", plan)
    assert heuristic_cost <= HEURISTIC_COST_BOUND * reference.cost + 1e-9, (
        heuristic_cost, reference.cost,
    )
